//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`lock()` returns the guard directly). A poisoned lock — a thread
//! panicked while holding it — just hands out the inner data, matching
//! parking_lot's behaviour of not tracking poisoning at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex that never reports poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader–writer lock that never reports poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
