//! Offline vendored stand-in for `proptest`.
//!
//! The crates-io mirror is unreachable in this environment, so this
//! crate implements the API subset the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`, range/tuple/`Just`
//! strategies, `any`, `prop::collection::{vec, btree_set}`,
//! `prop::option::of`, `prop_oneof!`, `proptest!` with an optional
//! `#![proptest_config(...)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Semantics: each test runs `ProptestConfig::cases` deterministic
//! random cases (seeded from the test name, so failures reproduce).
//! There is **no shrinking** — a failing case reports its index and
//! message but not a minimized input. That trades debugging convenience
//! for zero dependencies; the generators here are small enough that raw
//! failing cases stay readable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;

/// Deterministic test-case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary label (the test name).
    #[must_use]
    pub fn deterministic(label: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in label.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failed property assertion inside a `proptest!` body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wrap a failure message.
    #[must_use]
    pub fn new(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// A configuration running `default_cases` cases unless the
    /// `PROPTEST_CASES` environment variable overrides the count —
    /// mirroring the real crate's env handling so CI can run a quick
    /// smoke slice by default and the full campaign on demand.
    #[must_use]
    pub fn with_cases_env(default_cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(default_cases),
        }
    }
}

/// Parse the `PROPTEST_CASES` environment variable, if set and valid.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(256),
        }
    }
}

/// A value generator. Unlike the real crate there is no value tree or
/// shrinking: a strategy is just a deterministic function of the rng.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Mapped<O>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        Mapped(Arc::new(move |rng| f(self.gen_value(rng))))
    }
}

/// A boxed, clonable strategy produced by combinators.
pub struct Mapped<V>(Arc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for Mapped<V> {
    fn clone(&self) -> Self {
        Mapped(Arc::clone(&self.0))
    }
}

impl<V> Strategy for Mapped<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                ((u128::from(rng.next_u64()) % span) as i128 + self.start as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                ((u128::from(rng.next_u64()) % span) as i128 + lo as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical full-range generator, for [`any`].
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The full-range strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary + 'static>() -> Mapped<T> {
    Mapped(Arc::new(T::arbitrary))
}

/// Combinator plumbing used by the exported macros.
pub mod strategy {
    use super::{Mapped, Strategy, TestRng};
    use std::sync::Arc;

    /// Erase a strategy's concrete type.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Mapped<S::Value> {
        Mapped(Arc::new(move |rng: &mut TestRng| s.gen_value(rng)))
    }

    /// Choose uniformly among the given strategies each case.
    pub fn one_of<V: 'static>(options: Vec<Mapped<V>>) -> Mapped<V> {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Mapped(Arc::new(move |rng: &mut TestRng| {
            let i = rng.below(options.len());
            options[i].gen_value(rng)
        }))
    }
}

/// The `prop::` namespace (`prop::collection`, `prop::option`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Mapped, Strategy, TestRng};
        use std::collections::BTreeSet;
        use std::ops::Range;
        use std::sync::Arc;

        /// A vector of `size.start..size.end` elements.
        pub fn vec<S>(elem: S, size: Range<usize>) -> Mapped<Vec<S::Value>>
        where
            S: Strategy + 'static,
        {
            Mapped(Arc::new(move |rng: &mut TestRng| {
                let n = size.clone().gen_value(rng);
                (0..n).map(|_| elem.gen_value(rng)).collect()
            }))
        }

        /// A set of `size.start..size.end` distinct elements. If the
        /// element domain is too small the set may come out smaller —
        /// generation gives up after a bounded number of duplicate draws.
        pub fn btree_set<S>(elem: S, size: Range<usize>) -> Mapped<BTreeSet<S::Value>>
        where
            S: Strategy + 'static,
            S::Value: Ord,
        {
            Mapped(Arc::new(move |rng: &mut TestRng| {
                let n = size.clone().gen_value(rng);
                let mut out = BTreeSet::new();
                let mut attempts = 0;
                while out.len() < n && attempts < n * 20 + 100 {
                    out.insert(elem.gen_value(rng));
                    attempts += 1;
                }
                out
            }))
        }
    }

    /// Optional-value strategies.
    pub mod option {
        use crate::{Mapped, Strategy, TestRng};
        use std::sync::Arc;

        /// `None` about a quarter of the time, `Some(inner)` otherwise.
        pub fn of<S>(inner: S) -> Mapped<Option<S::Value>>
        where
            S: Strategy + 'static,
        {
            Mapped(Arc::new(move |rng: &mut TestRng| {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(inner.gen_value(rng))
                }
            }))
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Choose uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: {:?} != {:?}: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Define property tests. Mirrors the real macro's shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))] // optional
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::gen_value(&($strat), &mut rng); )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body; ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 1u8..=4, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f out of range: {f}");
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u32..5, any::<bool>()), 2..6),
            o in prop::option::of(0usize..3),
            tag in prop_oneof![Just("a"), Just("b")],
            mapped in (0u64..10).prop_map(|n| n * 2),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|(n, _)| *n < 5));
            if let Some(x) = o { prop_assert!(x < 3); }
            prop_assert!(tag == "a" || tag == "b");
            prop_assert_eq!(mapped % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_is_respected(s in prop::collection::btree_set(0u32..100, 1..6)) {
            prop_assert!(!s.is_empty());
        }
    }

    #[test]
    fn deterministic_per_label() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
