//! Offline vendored stand-in for the `rand` crate (0.9 API surface).
//!
//! The crates-io mirror is unreachable in this environment, so the
//! workspace vendors the small API subset it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! methods `random`/`random_range`, and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` here is xoshiro256** seeded via SplitMix64 — deterministic,
//! fast, and statistically strong enough for simulation workloads. It
//! does **not** reproduce the upstream `StdRng` (ChaCha12) stream, so
//! seed-derived scenarios differ numerically from runs made with the
//! real crate; all recorded experiment outputs in this repository were
//! produced with this generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Random number generator trait: the `rand 0.9` method names.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` (see [`Standard`] impls).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

/// Types that can be drawn uniformly from the generator's raw bits.
pub trait Standard: Sized {
    /// Draw a value from `rng`.
    fn from_rng<G: Rng + ?Sized>(rng: &mut G) -> Self;
}

impl Standard for f64 {
    fn from_rng<G: Rng + ?Sized>(rng: &mut G) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_rng<G: Rng + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn from_rng<G: Rng + ?Sized>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniform values can be drawn for. One blanket [`SampleRange`]
/// impl per range shape hangs off this trait so that integer-literal
/// ranges drive type inference exactly like the real crate's.
pub trait SampleUniform: Sized {
    /// Draw uniformly from the half-open interval `[lo, hi)`.
    fn sample_half_open<G: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self;
    /// Draw uniformly from the closed interval `[lo, hi]`.
    fn sample_closed<G: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_half_open<G: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                ((u128::from(rng.next_u64()) % span) as i128 + lo as i128) as $t
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_closed<G: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                ((u128::from(rng.next_u64()) % span) as i128 + lo as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<G: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self {
        lo + f64::from_rng(rng) * (hi - lo)
    }
    fn sample_closed<G: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self {
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw a value in the range from `rng`.
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T {
        T::sample_closed(*self.start(), *self.end(), rng)
    }
}

/// Seedable generators (the subset of the real trait the workspace uses).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice utilities.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<G: Rng + ?Sized>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: Rng + ?Sized>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.random_range(0..=3);
            assert!(y <= 3);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let g = rng.random_range(2.0..4.0);
            assert!((2.0..4.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
