//! Offline vendored stand-in for `crossbeam`.
//!
//! Implements the two modules this workspace uses — [`channel`] and
//! [`deque`] — over `std::sync` primitives. Semantics match the real
//! crate for the subset exercised here: clonable MPMC channel
//! endpoints with disconnect detection, and an injector/worker/stealer
//! deque family for work-stealing loops. The implementations favour
//! simplicity over the real crate's lock-free performance; the hot
//! paths that matter in this repository (the model checker) move whole
//! chunks of work per operation, so a mutex per queue is not a
//! bottleneck.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! MPMC channels with the crossbeam API.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half. Clonable; the channel disconnects when every
    /// sender is dropped.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half. Clonable; sends fail once every receiver is
    /// dropped.
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// An unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    /// A "bounded" channel. The capacity is accepted for API
    /// compatibility but not enforced: sends never block. Every bounded
    /// channel in this workspace is a single-use reply slot, for which
    /// the distinction is unobservable.
    #[must_use]
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Wake blocked receivers so they observe the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, failing if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.0.queue.lock().expect("channel lock");
            q.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.0.senders.load(Ordering::SeqCst) == 0
        }

        /// Is the queue currently empty? (Racy by nature, like the real
        /// crossbeam API: a send may land right after the check.)
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.0.queue.lock().expect("channel lock").is_empty()
        }

        /// Messages currently queued. (Racy by nature, like the real
        /// crossbeam API — a load-signal, not a synchronization point;
        /// the reactor's admission controller reads it as backlog
        /// depth.)
        #[must_use]
        pub fn len(&self) -> usize {
            self.0.queue.lock().expect("channel lock").len()
        }

        /// Dequeue, blocking until a message or disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).expect("channel wait");
            }
        }

        /// Dequeue, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .0
                    .ready
                    .wait_timeout(q, deadline - now)
                    .expect("channel wait");
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.disconnected() {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().expect("channel lock");
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }
}

pub mod deque {
    //! Work-distribution queues with the crossbeam-deque API shape.
    //!
    //! [`Injector`] is a global FIFO every worker can push to and steal
    //! from; [`Worker`] is a per-thread LIFO queue whose [`Stealer`]
    //! handles let other threads take work from the opposite end.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// Nothing to steal.
        Empty,
        /// One stolen task.
        Success(T),
        /// Transient contention; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// A global FIFO injector queue.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector.
        #[must_use]
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Push a task onto the global queue.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("injector lock").push_back(task);
        }

        /// Steal one task from the front of the global queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector lock").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Is the queue currently empty?
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector lock").is_empty()
        }
    }

    /// A per-thread deque: the owner pushes and pops LIFO at the back,
    /// stealers take FIFO from the front.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    /// A handle for stealing from some worker's deque.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Self::new_lifo()
        }
    }

    impl<T> Worker<T> {
        /// An empty LIFO worker deque.
        #[must_use]
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// A stealer handle onto this deque.
        #[must_use]
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// Push a task (owner side, back).
        pub fn push(&self, task: T) {
            self.queue.lock().expect("worker lock").push_back(task);
        }

        /// Pop a task (owner side, back — LIFO).
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("worker lock").pop_back()
        }

        /// Is the deque currently empty?
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker lock").is_empty()
        }
    }

    impl<T> Stealer<T> {
        /// Steal one task from the front (opposite the owner's end).
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("stealer lock").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use super::deque::{Injector, Steal, Worker};
    use std::time::Duration;

    #[test]
    fn channel_mpmc_roundtrip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        drop(tx);
        drop(tx2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn channel_timeout_then_delivery() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        let handle = std::thread::spawn(move || tx.send(7).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        handle.join().unwrap();
    }

    #[test]
    fn deque_owner_lifo_stealer_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        assert_eq!(inj.steal(), Steal::Success("a"));
        assert!(!inj.is_empty());
        assert_eq!(inj.steal(), Steal::Success("b"));
        assert_eq!(inj.steal(), Steal::Empty);
    }
}
