//! Offline vendored stand-in for the `rand_distr` crate.
//!
//! The crates-io mirror is unreachable in this environment, so the
//! workspace vendors the three distributions the workload generator
//! needs, built directly on the vendored [`rand`] shim:
//!
//! * [`Zipf`] — power-law ranks over populations of millions of keys,
//!   sampled in O(1) by Hörmann & Derflinger's rejection-inversion
//!   (the same algorithm as upstream `rand_distr` and Apache Commons'
//!   `RejectionInversionZipfSampler`). No per-key tables, so a
//!   10-million-key population costs three floats of state.
//! * [`Exp`] — exponential inter-arrival gaps by inversion, the
//!   building block of an open-loop Poisson arrival process.
//! * [`Poisson`] — Knuth's product-of-uniforms counter, fine for the
//!   small-λ event counts the tests pin.
//!
//! Everything is deterministic per seed: each distribution consumes
//! the generator stream in a fixed order, so a fixed-seed `StdRng`
//! reproduces the same arrival schedule and key sequence on every run
//! and every platform (strict IEEE-754 double arithmetic only).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;

/// A distribution that can be sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draw one value from `rng`.
    fn sample<G: Rng + ?Sized>(&self, rng: &mut G) -> T;
}

// ---------------------------------------------------------------------------
// Zipf

/// Zipf-distributed ranks in `1..=n`: `P(k) ∝ 1 / k^s`.
///
/// `s = 0` degenerates to the uniform distribution over ranks; larger
/// `s` concentrates mass on the smallest ranks (rank 1 is the hottest
/// key). Sampling is rejection-inversion over the integral bound
/// `H(x) = ∫ x^{-s} dx`, which needs no setup proportional to `n`.
#[derive(Clone, Copy, Debug)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    accept_s: f64,
}

impl Zipf {
    /// A Zipf distribution over ranks `1..=n` with exponent `s >= 0`.
    ///
    /// # Panics
    /// If `n == 0` or `s` is negative or non-finite.
    #[must_use]
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n > 0, "Zipf population must be non-empty");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be >= 0");
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(n as f64 + 0.5, s);
        let accept_s = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Zipf { n, s, h_x1, h_n, accept_s }
    }

    /// The population size `n`.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent `s`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.s
    }
}

/// `H(x) = ∫_1^x t^{-s} dt + 1`: `ln(x)` at `s = 1`, else
/// `(x^{1-s} - 1) / (1 - s)`, both shifted so `H` is monotone over the
/// sampling interval.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    if (s - 1.0).abs() < 1e-12 {
        log_x
    } else {
        ((1.0 - s) * log_x).exp_m1() / (1.0 - s)
    }
}

/// The density bound `h(x) = x^{-s}`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-12 {
        x.exp()
    } else {
        let t = (x * (1.0 - s)).max(-1.0);
        (t.ln_1p() / (1.0 - s)).exp()
    }
}

impl Distribution<u64> for Zipf {
    fn sample<G: Rng + ?Sized>(&self, rng: &mut G) -> u64 {
        loop {
            let u: f64 = rng.random::<f64>();
            let u = self.h_n + u * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let k = ((x + 0.5) as u64).clamp(1, self.n);
            // Accept in the flat region near k, or by the exact
            // rejection test against the density bound.
            let kf = k as f64;
            if kf - x <= self.accept_s
                || u >= h_integral(kf + 0.5, self.s) - h(kf, self.s)
            {
                return k;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Exp

/// Exponentially distributed non-negative reals with rate `lambda`
/// (mean `1 / lambda`): the inter-arrival gap of a Poisson process.
#[derive(Clone, Copy, Debug)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// An exponential distribution with rate `lambda > 0`.
    ///
    /// # Panics
    /// If `lambda` is not a positive finite number.
    #[must_use]
    pub fn new(lambda: f64) -> Exp {
        assert!(lambda > 0.0 && lambda.is_finite(), "Exp rate must be positive");
        Exp { lambda }
    }
}

impl Distribution<f64> for Exp {
    fn sample<G: Rng + ?Sized>(&self, rng: &mut G) -> f64 {
        // Inversion: -ln(1 - U) / λ. `1 - U` is in (0, 1], so ln is
        // finite; U itself could be exactly 0.
        let u: f64 = rng.random::<f64>();
        -(1.0 - u).ln() / self.lambda
    }
}

// ---------------------------------------------------------------------------
// Poisson

/// Poisson-distributed event counts with mean `lambda`.
///
/// Knuth's product-of-uniforms method: O(λ) per sample, which is fine
/// for the small means the workload tests use (λ ≤ 30 or so). The
/// open-loop generator itself never draws counts — it draws [`Exp`]
/// gaps — so this stays off the hot path.
#[derive(Clone, Copy, Debug)]
pub struct Poisson {
    exp_neg_lambda: f64,
}

impl Poisson {
    /// A Poisson distribution with mean `lambda > 0`.
    ///
    /// # Panics
    /// If `lambda` is not a positive finite number.
    #[must_use]
    pub fn new(lambda: f64) -> Poisson {
        assert!(lambda > 0.0 && lambda.is_finite(), "Poisson mean must be positive");
        Poisson { exp_neg_lambda: (-lambda).exp() }
    }
}

impl Distribution<u64> for Poisson {
    fn sample<G: Rng + ?Sized>(&self, rng: &mut G) -> u64 {
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.random::<f64>();
            if p <= self.exp_neg_lambda {
                return k;
            }
            k += 1;
        }
    }
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::{Distribution, Exp, Poisson, Zipf};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Zipf rank frequencies track the analytic mass `k^{-s} / H_{n,s}`
    /// at a fixed seed: check the head ranks within a few percent.
    #[test]
    fn zipf_head_frequencies_match_analytic_mass() {
        let n = 1_000_000u64;
        for &s in &[0.8, 0.99, 1.0, 1.2] {
            let zipf = Zipf::new(n, s);
            let mut rng = StdRng::seed_from_u64(0xD15C);
            let draws = 200_000usize;
            let mut head = [0u64; 8];
            for _ in 0..draws {
                let k = zipf.sample(&mut rng);
                assert!((1..=n).contains(&k));
                if k <= 8 {
                    head[(k - 1) as usize] += 1;
                }
            }
            // Generalized harmonic number H_{n,s} by the integral
            // approximation plus the exact head: good to << 1% here.
            let mut h_ns = 0.0f64;
            for k in 1..=1000u64 {
                h_ns += (k as f64).powf(-s);
            }
            h_ns += if (s - 1.0).abs() < 1e-9 {
                (n as f64 / 1000.0).ln()
            } else {
                ((n as f64).powf(1.0 - s) - 1000f64.powf(1.0 - s)) / (1.0 - s)
            };
            for (i, &count) in head.iter().enumerate() {
                let k = (i + 1) as f64;
                let expect = k.powf(-s) / h_ns * draws as f64;
                let got = count as f64;
                assert!(
                    (got - expect).abs() < 0.08 * expect + 30.0,
                    "s={s}: rank {k} frequency {got} vs analytic {expect}"
                );
            }
        }
    }

    /// s = 0 must be uniform over ranks: the hottest rank carries no
    /// extra mass.
    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let zipf = Zipf::new(1000, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let draws = 100_000usize;
        let mut first_decile = 0u64;
        for _ in 0..draws {
            if zipf.sample(&mut rng) <= 100 {
                first_decile += 1;
            }
        }
        let frac = first_decile as f64 / draws as f64;
        assert!((frac - 0.1).abs() < 0.01, "first decile carried {frac}");
    }

    /// Exponential gaps have the right mean and variance (both 1/λ and
    /// 1/λ² analytically) at a fixed seed.
    #[test]
    fn exp_mean_and_variance_match() {
        let lambda = 4.0;
        let exp = Exp::new(lambda);
        let mut rng = StdRng::seed_from_u64(99);
        let draws = 200_000usize;
        let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
        for _ in 0..draws {
            let x = exp.sample(&mut rng);
            assert!(x >= 0.0);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / draws as f64;
        let var = sum_sq / draws as f64 - mean * mean;
        assert!((mean - 0.25).abs() < 0.005, "mean {mean}");
        assert!((var - 0.0625).abs() < 0.005, "variance {var}");
    }

    /// Poisson counts have mean ≈ variance ≈ λ at a fixed seed.
    #[test]
    fn poisson_mean_and_variance_match() {
        let lambda = 12.0;
        let poisson = Poisson::new(lambda);
        let mut rng = StdRng::seed_from_u64(3);
        let draws = 50_000usize;
        let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
        for _ in 0..draws {
            let k = poisson.sample(&mut rng) as f64;
            sum += k;
            sum_sq += k * k;
        }
        let mean = sum / draws as f64;
        let var = sum_sq / draws as f64 - mean * mean;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
        assert!((var - lambda).abs() < 0.35, "variance {var}");
    }

    /// Same seed, same stream: the samplers are deterministic.
    #[test]
    fn samplers_are_deterministic_per_seed() {
        let zipf = Zipf::new(1 << 22, 0.99);
        let exp = Exp::new(100.0);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
            assert!((exp.sample(&mut a) - exp.sample(&mut b)).abs() == 0.0);
        }
    }
}
