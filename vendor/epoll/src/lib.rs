//! Minimal safe wrapper over the Linux `epoll` readiness API.
//!
//! The workspace vendors its dependencies (the crates-io mirror is
//! unreachable here), and the runtime crates `forbid(unsafe_code)` —
//! so the one place raw syscalls are allowed is this shim. It binds
//! `epoll_create1`/`epoll_ctl`/`epoll_wait` directly via `extern "C"`
//! declarations (the symbols live in libc, which std already links;
//! no external crate is needed) and exposes a safe, minimal API:
//! create an instance, register file descriptors with an interest mask
//! and a caller-chosen `u64` token, and wait for readiness.
//!
//! Level-triggered only — that is all the `acp-net` socket runtime
//! uses, and level-triggered readiness composes naturally with its
//! "drain until `WouldBlock`" handlers.
//!
//! On non-Linux targets a degraded portable fallback is compiled
//! instead: `wait` sleeps briefly and reports every registered
//! descriptor as ready. Correct nonblocking callers treat spurious
//! readiness as a no-op (`read`/`write` return `WouldBlock`), so the
//! fallback is slow but sound. The real runtime targets Linux.

#![warn(missing_docs)]

use std::io;

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`). Always reported; no need to register.
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (`EPOLLHUP`). Always reported; no need to register.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

/// One readiness notification: the event mask that fired and the
/// caller's registration token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Bitwise OR of the `EPOLL*` conditions that are ready.
    pub events: u32,
    /// The `u64` the descriptor was registered with.
    pub token: u64,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::Event;
    use std::io;
    use std::os::unix::io::RawFd;

    // x86-64's epoll_event is packed (no padding between the u32 mask
    // and the u64 data); other Linux targets use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// An epoll instance (Linux backend).
    #[derive(Debug)]
    pub struct Epoll {
        epfd: RawFd,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes no pointers; a negative
            // return is an error reported through errno.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest,
                data: token,
            };
            let evp = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut ev as *mut EpollEvent
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, evp) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest, token)
        }

        pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest, token)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            const MAX_EVENTS: usize = 64;
            let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let n = loop {
                // SAFETY: `buf` is a valid writable array of MAX_EVENTS
                // entries; the kernel fills at most that many.
                let rc = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms)
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
                // EINTR: retry. (Timeout accounting restarts; callers
                // recompute their deadlines every loop pass anyway.)
            };
            out.clear();
            for e in &buf[..n] {
                // Copy out of the (possibly packed) struct field by
                // field; direct references into packed fields are UB.
                let events = e.events;
                let token = e.data;
                out.push(Event { events, token });
            }
            Ok(n)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: we own this fd and close it exactly once.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, EPOLLIN, EPOLLOUT};
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Degraded portable fallback: report every registered descriptor
    /// as both readable and writable after a short sleep. Sound (but
    /// slow) for nonblocking callers that tolerate spurious readiness.
    #[derive(Debug, Default)]
    pub struct Epoll {
        registered: Mutex<Vec<(RawFd, u32, u64)>>,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            Ok(Epoll::default())
        }

        pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
            self.registered.lock().unwrap().push((fd, interest, token));
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            reg.retain(|(f, _, _)| *f != fd);
            reg.push((fd, interest, token));
            Ok(())
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().retain(|(f, _, _)| *f != fd);
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            let ms = if timeout_ms < 0 { 1 } else { timeout_ms.min(1) };
            std::thread::sleep(Duration::from_millis(ms as u64));
            out.clear();
            for &(_, interest, token) in self.registered.lock().unwrap().iter() {
                out.push(Event {
                    events: interest & (EPOLLIN | EPOLLOUT),
                    token,
                });
            }
            Ok(out.len())
        }
    }
}

/// An epoll instance: register descriptors, then [`Epoll::wait`] for
/// readiness. Dropping it closes the underlying instance.
#[derive(Debug)]
pub struct Epoll {
    inner: sys::Epoll,
}

impl Epoll {
    /// Create a new epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Epoll> {
        Ok(Epoll {
            inner: sys::Epoll::new()?,
        })
    }

    /// Register `fd` with the given interest mask; readiness reports
    /// carry `token` back to the caller.
    pub fn add(&self, fd: std::os::fd::RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.inner.add(fd, interest, token)
    }

    /// Change a registered descriptor's interest mask and/or token.
    pub fn modify(&self, fd: std::os::fd::RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.inner.modify(fd, interest, token)
    }

    /// Remove a descriptor from the interest set. Callers must do this
    /// *before* closing the fd (a closed fd is removed by the kernel,
    /// but the wrapper cannot tell the difference).
    pub fn delete(&self, fd: std::os::fd::RawFd) -> io::Result<()> {
        self.inner.delete(fd)
    }

    /// Block for up to `timeout_ms` milliseconds (`-1` = forever, `0` =
    /// poll) and fill `out` with ready events. Returns the number of
    /// events. `EINTR` is retried internally.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        self.inner.wait(out, timeout_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn readiness_roundtrip_over_loopback() {
        let ep = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        ep.add(listener.as_raw_fd(), EPOLLIN, 1).unwrap();

        let client = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        // The pending connection makes the listener readable.
        let mut accepted = None;
        for _ in 0..100 {
            ep.wait(&mut events, 100).unwrap();
            if events.iter().any(|e| e.token == 1) {
                let (s, _) = listener.accept().unwrap();
                s.set_nonblocking(true).unwrap();
                accepted = Some(s);
                break;
            }
        }
        let mut server = accepted.expect("listener never became readable");
        ep.delete(listener.as_raw_fd()).unwrap();

        // Data in flight makes the accepted socket readable.
        ep.add(server.as_raw_fd(), EPOLLIN, 2).unwrap();
        (&client).write_all(b"ping").unwrap();
        let mut got = Vec::new();
        for _ in 0..100 {
            ep.wait(&mut events, 100).unwrap();
            if events.iter().any(|e| e.token == 2) {
                let mut buf = [0u8; 16];
                match server.read(&mut buf) {
                    Ok(n) => {
                        got.extend_from_slice(&buf[..n]);
                        if got == b"ping" {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("read: {e}"),
                }
            }
        }
        assert_eq!(got, b"ping");

        // Interest can be switched to writable.
        ep.modify(server.as_raw_fd(), EPOLLOUT, 3).unwrap();
        let mut writable = false;
        for _ in 0..100 {
            ep.wait(&mut events, 100).unwrap();
            if events.iter().any(|e| e.token == 3 && e.events & EPOLLOUT != 0) {
                writable = true;
                break;
            }
        }
        assert!(writable, "idle socket should be writable");
    }
}
