//! Offline vendored stand-in for `criterion`.
//!
//! Implements the benchmark-definition API this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `Bencher::iter`/`iter_batched`, `BenchmarkId`, `Throughput`) with a
//! simple wall-clock measurement loop: per benchmark it calibrates an
//! iteration count to a target sample duration, runs `sample_size`
//! samples, and prints min/mean/max like the real crate's `time:`
//! line. There is no statistical outlier analysis, HTML report, or
//! baseline comparison.
//!
//! Environment knobs:
//! - `CRITERION_JSON=<path>`: append one JSON line per benchmark with
//!   the raw numbers (used to record `BENCH_*.json` files).
//! - `CRITERION_SAMPLE_MS`: target milliseconds per sample (default 50).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup outputs are sized (accepted for API compatibility;
/// the stub always runs one setup per routine call).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Optional throughput annotation for a group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }
}

/// Things accepted as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over per-iteration inputs built by `setup`
    /// (setup time is excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

fn target_sample_duration() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50u64);
    Duration::from_millis(ms.max(1))
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} \u{00b5}s", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate per-iteration throughput (reported alongside timing).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Define a benchmark in this group.
    pub fn bench_function<ID, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into_id(), &mut f);
        self
    }

    /// Define a benchmark parameterized by `input`.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.into_id(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibrate: grow the iteration count until one sample reaches
        // the target duration (or the count saturates).
        let target = target_sample_duration();
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= target || iters >= 1 << 20 {
                break;
            }
            // Aim straight for the target from the observed rate, with
            // a 2x floor so calibration terminates quickly.
            let per_iter = b.elapsed.as_secs_f64() / iters as f64;
            let needed = if per_iter > 0.0 {
                (target.as_secs_f64() / per_iter).ceil() as u64
            } else {
                iters * 2
            };
            iters = needed.clamp(iters * 2, 1 << 20);
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
        let min = samples_ns[0];
        let max = *samples_ns.last().expect("samples");
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let median = samples_ns[samples_ns.len() / 2];

        let mut line = format!(
            "{}/{id}  time: [{} {} {}]",
            self.name,
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
        if let Some(Throughput::Bytes(bytes)) = self.throughput {
            let gib = bytes as f64 / mean * 1_000_000_000.0 / (1u64 << 30) as f64;
            line.push_str(&format!("  thrpt: {gib:.3} GiB/s"));
        }
        println!("{line}");

        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    file,
                    "{{\"group\":\"{}\",\"bench\":\"{}\",\"iters_per_sample\":{},\"samples\":{},\"min_ns\":{:.1},\"mean_ns\":{:.1},\"median_ns\":{:.1},\"max_ns\":{:.1}}}",
                    self.name, id, iters, samples_ns.len(), min, mean, median, max
                );
            }
        }
    }

    /// Close the group (printing nothing; exists for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and possibly filters); the
            // stub runs everything unconditionally.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub_selftest");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function(BenchmarkId::new("param", 4), |b| {
            b.iter_batched(|| vec![0u8; 4], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
