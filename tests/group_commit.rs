//! Group-commit batching, end to end: trace byte-identity for batches
//! of one, exact agreement between the sim's batch accounting and the
//! analytic model, crash-safety under windowed batching, and the
//! threaded runtime's deferred batching + ack piggybacking.

mod common;

use common::assert_fully_correct;
use presumed_any::core::cost::{predict_batched, Population};
use presumed_any::obs::json::event_to_json;
use presumed_any::prelude::*;
use std::time::Duration;

fn prany() -> CoordinatorKind {
    CoordinatorKind::PrAny(SelectionPolicy::PaperStrict)
}

const POP: [ProtocolKind; 2] = [ProtocolKind::PrA, ProtocolKind::PrC];

/// A scenario with `n` identical transactions starting at the same sim
/// instant over fixed-latency links.
fn lockstep_scenario(n: u64, batch_window: Option<u64>) -> Scenario {
    let mut s = Scenario::new(prany(), &POP);
    s.network = NetworkConfig::reliable(SimTime::from_micros(200));
    s.batch_window = batch_window;
    for t in 1..=n {
        s.add_txn(TxnId::new(t), SimTime::from_millis(1));
    }
    s
}

// ---------------------------------------------------------------------
// Tentpole: batch-of-one degenerates to today's behavior, byte for byte
// ---------------------------------------------------------------------

#[test]
fn single_txn_trace_is_byte_identical_with_batching_enabled() {
    let plain = run_scenario(&lockstep_scenario(1, None));
    let batched = run_scenario(&lockstep_scenario(1, Some(20)));

    // Same decisions, same sim trace, and — the point — the exact same
    // typed event stream: a batch of one emits no BatchCommit event and
    // changes nothing else.
    assert_eq!(plain.decided, batched.decided);
    let plain_lines: Vec<String> = plain.events.iter().map(event_to_json).collect();
    let batched_lines: Vec<String> = batched.events.iter().map(event_to_json).collect();
    assert_eq!(plain_lines, batched_lines, "event stream must not change");

    // The batching run still accounts: every force was its own batch.
    assert_eq!(batched.group_commit.max_occupancy, 1);
    assert_eq!(
        batched.group_commit.batches,
        batched.group_commit.batched_appends
    );
    // Batching off: the group-commit layer is a transparent passthrough.
    assert_eq!(plain.group_commit.batches, 0);
    assert_eq!(plain.group_commit.batched_appends, 0);
}

// ---------------------------------------------------------------------
// Tentpole: measured batches equal the cost model's prediction exactly
// ---------------------------------------------------------------------

#[test]
fn concurrent_txns_match_batched_cost_model_exactly() {
    for n in [2u64, 4, 8] {
        let out = run_scenario(&lockstep_scenario(n, Some(20)));
        for t in 1..=n {
            assert_eq!(out.decided[&TxnId::new(t)], Outcome::Commit, "txn {t}");
        }
        assert_fully_correct(&out);

        let predicted = predict_batched(
            prany(),
            Outcome::Commit,
            Population::new(0, 1, 1),
            n,
            n, // every slot coalesces all n same-slot forces
        );
        assert_eq!(
            out.group_commit.batches, predicted.physical_forces,
            "physical forces at n={n}"
        );
        assert_eq!(
            out.group_commit.batched_appends, predicted.logical_forces,
            "logical forces at n={n}"
        );
        assert_eq!(out.group_commit.max_occupancy, n, "full slots at n={n}");
    }
}

#[test]
fn batched_events_report_slot_occupancy() {
    let out = run_scenario(&lockstep_scenario(4, Some(20)));
    let occupancies: Vec<u64> = out
        .events
        .iter()
        .filter_map(|e| match e {
            ProtocolEvent::BatchCommit { occupancy, .. } => Some(*occupancy),
            _ => None,
        })
        .collect();
    // Every protocol force slot coalesced all four transactions.
    assert!(!occupancies.is_empty(), "expected BatchCommit events");
    assert!(
        occupancies.iter().all(|&o| o == 4),
        "every slot holds all 4 txns: {occupancies:?}"
    );
    assert_eq!(
        occupancies.len() as u64,
        out.group_commit.batches,
        "batches of one stay silent, full batches all surface"
    );
}

// ---------------------------------------------------------------------
// Windowed batching is accounting-only: crash semantics untouched
// ---------------------------------------------------------------------

#[test]
fn windowed_batching_preserves_crash_recovery() {
    for crash_us in [1_100u64, 1_300, 1_500] {
        let mut s = lockstep_scenario(4, Some(20));
        s.failures = FailureSchedule::single(
            SiteId::new(1),
            SimTime::from_micros(crash_us),
            SimTime::from_micros(crash_us + 900),
        );
        let out = run_scenario(&s);
        assert_fully_correct(&out);
        // Batching accounting never exceeds what was actually forced.
        assert!(out.group_commit.batches <= out.group_commit.batched_appends);
    }
}

// ---------------------------------------------------------------------
// Threaded runtime: deferred batching + ack piggybacking
// ---------------------------------------------------------------------

fn gc_cluster() -> ClusterConfig {
    let mut config = ClusterConfig::new(prany(), &[ProtocolKind::PrA, ProtocolKind::PrC]);
    config.group_commit = true;
    config
}

#[test]
fn group_commit_cluster_commits_atomically_under_concurrency() {
    let mut cluster = Cluster::spawn(&gc_cluster());
    let parts = cluster.participants();
    let n = 12u32;
    let txns: Vec<TxnId> = (0..n).map(|_| cluster.next_txn()).collect();
    for (i, &txn) in txns.iter().enumerate() {
        for &p in &parts {
            cluster.apply(p, txn, format!("key-{i}").as_bytes(), b"v");
        }
    }
    // Fire all commits at once so turns drain several transactions and
    // their forces share batch fsyncs, with acks piggybacked.
    for &txn in &txns {
        cluster.commit_async(txn, &parts);
    }
    cluster.settle(Duration::from_millis(1_500));
    let report = cluster.shutdown();

    assert!(check_atomicity(&report.history).is_empty());
    assert_eq!(report.coordinator_table_size, 0);
    for s in report
        .sites
        .iter()
        .filter(|s| s.site != Cluster::COORDINATOR)
    {
        assert_eq!(s.committed.len(), n as usize, "site {}", s.site);
    }
    // Deferred batching: every logical force was absorbed into a batch,
    // and the physical syncs serving them never exceed the requests.
    assert_eq!(report.group_commit.batched_appends, report.logical_forces);
    assert!(report.group_commit.batches > 0);
    assert!(
        report.physical_syncs <= report.logical_forces,
        "batching must not add syncs: {} > {}",
        report.physical_syncs,
        report.logical_forces
    );
}

#[test]
fn group_commit_cluster_survives_participant_crash() {
    let mut cluster = Cluster::spawn(&gc_cluster());
    let parts = cluster.participants();
    let txn = cluster.next_txn();
    for &p in &parts {
        cluster.apply(p, txn, b"x", b"1");
    }
    cluster.commit_async(txn, &parts);
    cluster.crash(parts[1], Duration::from_millis(300));
    cluster.settle(Duration::from_millis(2_500));
    let report = cluster.shutdown();
    let v = check_atomicity(&report.history);
    assert!(v.is_empty(), "{v:?}");
    let datasets: Vec<_> = report
        .sites
        .iter()
        .filter(|s| s.site != Cluster::COORDINATOR)
        .map(|s| s.committed.clone())
        .collect();
    assert_eq!(datasets[0], datasets[1], "data diverged");
}

#[test]
fn batching_disabled_reports_no_batches() {
    let mut cluster = Cluster::spawn(&ClusterConfig::new(prany(), &POP));
    let parts = cluster.participants();
    let txn = cluster.next_txn();
    for &p in &parts {
        cluster.apply(p, txn, b"k", b"v");
    }
    assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
    let report = cluster.shutdown();
    assert!(check_atomicity(&report.history).is_empty());
    assert_eq!(report.group_commit.batches, 0);
    assert_eq!(report.group_commit.batched_appends, 0);
    // Passthrough: every logical force was its own physical sync.
    assert_eq!(report.logical_forces, report.physical_syncs);
}
