//! Storage-engine properties: the data-level face of atomicity.
//!
//! Model-based property tests drive the site engine with random
//! transaction batches and crashes and compare the committed state
//! against a trivial reference model.

use acp_engine::{RecoveredOutcome, SiteEngine};
use acp_wal::MemLog;
use presumed_any::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

type Model = BTreeMap<Vec<u8>, Vec<u8>>;

/// One generated transaction: keys it writes (with values) and whether
/// it commits.
#[derive(Clone, Debug)]
struct GenTxn {
    writes: Vec<(u8, u8)>, // (key byte, value byte)
    commit: bool,
}

fn arb_txn() -> impl Strategy<Value = GenTxn> {
    (
        prop::collection::vec((0u8..12, any::<u8>()), 1..5),
        any::<bool>(),
    )
        .prop_map(|(writes, commit)| GenTxn { writes, commit })
}

/// Run transactions *sequentially* (each resolved before the next
/// starts, so locks never conflict) and mirror them in the model.
fn run_sequential(engine: &mut SiteEngine<MemLog>, txns: &[GenTxn]) -> Model {
    let mut model = Model::new();
    for (i, t) in txns.iter().enumerate() {
        let txn = TxnId::new(i as u64 + 1);
        engine.begin(txn);
        for (k, v) in &t.writes {
            engine
                .put(txn, &[*k], &[*v])
                .expect("no conflicts sequentially");
        }
        engine.prepare(txn).expect("prepare");
        let outcome = if t.commit {
            Outcome::Commit
        } else {
            Outcome::Abort
        };
        engine.resolve(txn, outcome).expect("resolve");
        if t.commit {
            for (k, v) in &t.writes {
                model.insert(vec![*k], vec![*v]);
            }
        }
    }
    model
}

fn engine_state(engine: &SiteEngine<MemLog>) -> Model {
    engine
        .store()
        .iter()
        .map(|(k, v)| (k.to_vec(), v.to_vec()))
        .collect()
}

proptest! {
    /// Committed-state equivalence with the reference model.
    #[test]
    fn sequential_batches_match_model(txns in prop::collection::vec(arb_txn(), 0..20)) {
        let mut engine = SiteEngine::new(MemLog::new());
        let model = run_sequential(&mut engine, &txns);
        prop_assert_eq!(engine_state(&engine), model);
        prop_assert_eq!(engine.locked_keys(), 0, "strict 2PL released everything");
    }

    /// Crash + redo recovery reproduces exactly the committed state,
    /// provided the protocol layer re-supplies the decisions (redo
    /// markers for the tail may have been lost with the buffer).
    #[test]
    fn crash_recovery_matches_model(txns in prop::collection::vec(arb_txn(), 1..20)) {
        let mut engine = SiteEngine::new(MemLog::new());
        let model = run_sequential(&mut engine, &txns);

        let mut outcomes = BTreeMap::new();
        for (i, t) in txns.iter().enumerate() {
            let outcome = if t.commit { Outcome::Commit } else { Outcome::Abort };
            outcomes.insert(TxnId::new(i as u64 + 1), RecoveredOutcome::Decided(outcome));
        }

        engine.crash();
        prop_assert!(engine.store().is_empty(), "volatile store cleared");
        engine.recover(&outcomes).expect("recover");
        prop_assert_eq!(engine_state(&engine), model);
    }

    /// A second crash + recovery (with the markers now re-logged) is
    /// idempotent.
    #[test]
    fn recovery_is_idempotent(txns in prop::collection::vec(arb_txn(), 1..15)) {
        let mut engine = SiteEngine::new(MemLog::new());
        let model = run_sequential(&mut engine, &txns);
        let mut outcomes = BTreeMap::new();
        for (i, t) in txns.iter().enumerate() {
            let outcome = if t.commit { Outcome::Commit } else { Outcome::Abort };
            outcomes.insert(TxnId::new(i as u64 + 1), RecoveredOutcome::Decided(outcome));
        }
        engine.crash();
        engine.recover(&outcomes).expect("first recovery");
        // Force the re-written markers durable, then crash again; this
        // time recovery needs no protocol help.
        let probe = TxnId::new(9_999);
        engine.begin(probe);
        engine.put(probe, b"probe", b"x").expect("probe put");
        engine.prepare(probe).expect("probe prepare forces the log");
        engine.crash();
        engine.recover(&BTreeMap::new()).expect("second recovery");
        prop_assert_eq!(engine_state(&engine), model);
    }

    /// In-doubt transactions keep their keys locked across recovery and
    /// resolve to either outcome without corrupting other data.
    #[test]
    fn in_doubt_transactions_block_then_resolve(
        committed in prop::collection::vec(arb_txn(), 1..8),
        doubt_commits in any::<bool>(),
    ) {
        let mut engine = SiteEngine::new(MemLog::new());
        let model = run_sequential(&mut engine, &committed);

        // One more transaction reaches prepared and then the site dies.
        let doubt = TxnId::new(500);
        engine.begin(doubt);
        engine.put(doubt, b"doubt-key", b"pending").expect("put");
        engine.prepare(doubt).expect("prepare");
        engine.crash();

        let mut outcomes = BTreeMap::new();
        for (i, t) in committed.iter().enumerate() {
            let outcome = if t.commit { Outcome::Commit } else { Outcome::Abort };
            outcomes.insert(TxnId::new(i as u64 + 1), RecoveredOutcome::Decided(outcome));
        }
        outcomes.insert(doubt, RecoveredOutcome::InDoubt);
        engine.recover(&outcomes).expect("recover");

        prop_assert!(engine.is_prepared(doubt), "re-staged in doubt");
        // Its key is blocked for everyone else.
        let intruder = TxnId::new(501);
        engine.begin(intruder);
        prop_assert!(engine.get(intruder, b"doubt-key").is_err());
        engine.abort_active(intruder).expect("cleanup");

        // The protocol layer finally resolves it.
        let outcome = if doubt_commits { Outcome::Commit } else { Outcome::Abort };
        engine.resolve(doubt, outcome).expect("resolve");
        let mut expected = model;
        if doubt_commits {
            expected.insert(b"doubt-key".to_vec(), b"pending".to_vec());
        }
        prop_assert_eq!(engine_state(&engine), expected);
        prop_assert_eq!(engine.locked_keys(), 0);
    }
}

#[test]
fn concurrent_conflicting_writers_one_survives() {
    let mut engine = SiteEngine::new(MemLog::new());
    let (a, b) = (TxnId::new(1), TxnId::new(2));
    engine.begin(a);
    engine.begin(b);
    engine.put(a, b"k", b"a").unwrap();
    assert!(engine.put(b, b"k", b"b").is_err(), "no-wait 2PL rejects");
    engine.abort_active(b).unwrap();
    engine.prepare(a).unwrap();
    engine.resolve(a, Outcome::Commit).unwrap();
    assert_eq!(engine.committed_get(b"k"), Some(b"a".as_slice()));
}

#[test]
fn readers_do_not_block_readers() {
    let mut engine = SiteEngine::new(MemLog::new());
    // Seed data.
    let w = TxnId::new(1);
    engine.begin(w);
    engine.put(w, b"k", b"v").unwrap();
    engine.prepare(w).unwrap();
    engine.resolve(w, Outcome::Commit).unwrap();

    let (r1, r2) = (TxnId::new(2), TxnId::new(3));
    engine.begin(r1);
    engine.begin(r2);
    assert_eq!(
        engine.get(r1, b"k").unwrap().as_deref(),
        Some(b"v".as_slice())
    );
    assert_eq!(
        engine.get(r2, b"k").unwrap().as_deref(),
        Some(b"v".as_slice())
    );
    // But a writer is blocked while they hold shared locks.
    let w2 = TxnId::new(4);
    engine.begin(w2);
    assert!(engine.put(w2, b"k", b"x").is_err());
}
