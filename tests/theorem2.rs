//! Experiment E6 — Theorem 2: "It is impossible to achieve operational
//! correctness if the coordinator is using C2PC and distributed
//! transactions execute at both PrA and PrC participants."
//!
//! C2PC fixes U2PC's atomicity bug by never forgetting until *all*
//! participants acknowledge — but PrC participants never acknowledge
//! commits and PrA participants never acknowledge aborts, so terminated
//! transactions pile up forever: the protocol table and the
//! un-garbage-collectable log grow linearly with the workload, while
//! PrAny stays flat.

mod common;

use common::*;
use presumed_any::prelude::*;

/// Run `n` all-yes transactions over [PrA, PrC] and return
/// (table size, pinned-log txns, retained log records, retained bytes).
fn run_n(kind: CoordinatorKind, n: usize, abort_all: bool) -> (usize, usize, usize, u64) {
    let mut s = Scenario::new(kind, &[ProtocolKind::PrA, ProtocolKind::PrC]);
    for i in 0..n {
        let txn = TxnId::new(i as u64 + 1);
        let at = SimTime::from_millis(1 + 5 * i as u64);
        s.add_txn(txn, at);
        if abort_all {
            s.txns.last_mut().expect("spec").abort_at = Some(at + SimTime::from_micros(250));
        }
    }
    let out = run_scenario(&s);
    assert!(
        check_atomicity(&out.history).is_empty(),
        "C2PC stays atomic"
    );
    (
        out.coordinator_table_size,
        out.final_state
            .log_pinned
            .iter()
            .filter(|(site, _)| *site == coord())
            .count(),
        out.coordinator_log_retained,
        out.coordinator_log_retained_bytes,
    )
}

#[test]
fn c2pc_commits_are_remembered_forever() {
    for n in [5, 10, 20] {
        let (table, pinned, _, _) = run_n(CoordinatorKind::C2pc(ProtocolKind::PrN), n, false);
        // Every committed transaction waits for the PrC participant's
        // commit-ack that will never come.
        assert_eq!(table, n, "n={n}");
        assert_eq!(pinned, n, "n={n}");
    }
}

#[test]
fn c2pc_aborts_are_remembered_forever() {
    for n in [5, 10] {
        let (table, pinned, _, _) = run_n(CoordinatorKind::C2pc(ProtocolKind::PrC), n, true);
        // Aborts wait for the PrA participant's abort-ack.
        assert_eq!(table, n, "n={n}");
        assert_eq!(pinned, n, "n={n}");
    }
}

#[test]
fn c2pc_log_grows_linearly_prany_stays_flat() {
    let (_, _, c2pc_10, c2pc_bytes_10) = run_n(CoordinatorKind::C2pc(ProtocolKind::PrN), 10, false);
    let (_, _, c2pc_40, c2pc_bytes_40) = run_n(CoordinatorKind::C2pc(ProtocolKind::PrN), 40, false);
    assert!(
        c2pc_40 >= 4 * c2pc_10 - 4,
        "retained records must scale: {c2pc_10} -> {c2pc_40}"
    );
    assert!(c2pc_bytes_40 > 3 * c2pc_bytes_10);

    let kind = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
    let (table_10, pinned_10, prany_10, _) = run_n(kind, 10, false);
    let (table_40, pinned_40, prany_40, _) = run_n(kind, 40, false);
    assert_eq!(table_10, 0);
    assert_eq!(table_40, 0);
    assert_eq!(pinned_10, 0);
    assert_eq!(pinned_40, 0);
    // PrAny's retained log does not scale with the workload (at most the
    // unforced tail of the last transaction).
    assert!(prany_10 <= 1 && prany_40 <= 1, "{prany_10} {prany_40}");
}

#[test]
fn operational_checker_flags_c2pc_and_passes_prany() {
    let mut s = Scenario::new(
        CoordinatorKind::C2pc(ProtocolKind::PrN),
        &[ProtocolKind::PrA, ProtocolKind::PrC],
    );
    s.add_txn(TxnId::new(1), SimTime::from_millis(1));
    let out = run_scenario(&s);
    let violations = check_operational(&out.history, &out.final_state);
    assert!(
        !violations.is_empty(),
        "Definition 1 requirements 2/3 must fail for C2PC"
    );

    let mut s = Scenario::new(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &[ProtocolKind::PrA, ProtocolKind::PrC],
    );
    s.add_txn(TxnId::new(1), SimTime::from_millis(1));
    let out = run_scenario(&s);
    assert!(check_operational(&out.history, &out.final_state).is_empty());
}

#[test]
fn c2pc_homogeneous_population_is_fine() {
    // The impossibility needs *both* PrA and PrC participants; over a
    // homogeneous PrN population C2PC behaves like PrN and forgets.
    let mut s = Scenario::new(
        CoordinatorKind::C2pc(ProtocolKind::PrN),
        &[ProtocolKind::PrN; 2],
    );
    s.add_txn(TxnId::new(1), SimTime::from_millis(1));
    let out = run_scenario(&s);
    assert_eq!(out.coordinator_table_size, 0);
    assert!(check_operational(&out.history, &out.final_state).is_empty());
}

#[test]
fn c2pc_survives_coordinator_crash_without_presuming() {
    // The half of §3 that *works*: after a crash the C2PC coordinator
    // answers inquiries from its force-logged decisions, so atomicity
    // holds even though it can never forget.
    let mut s = Scenario::new(
        CoordinatorKind::C2pc(ProtocolKind::PrN),
        &[ProtocolKind::PrA, ProtocolKind::PrC],
    );
    s.add_txn(TxnId::new(1), SimTime::from_millis(1));
    s.failures = FailureSchedule::single(
        SiteId::new(0),
        SimTime::from_micros(1_700),
        SimTime::from_millis(100),
    );
    let out = run_scenario(&s);
    assert!(check_atomicity(&out.history).is_empty());
    // Both participants enforced the same outcome.
    let outcomes: Vec<Outcome> = out.enforced.values().copied().collect();
    assert!(outcomes.windows(2).all(|w| w[0] == w[1]), "{outcomes:?}");
}
