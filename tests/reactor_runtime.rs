//! End-to-end tests of the reactor runtime (experiment E13): one event
//! loop driving every site over the same sans-IO engines as the
//! threaded backend, with cross-backend trace and cost parity checks.

use presumed_any::net::{NetDelays, ReactorReport};
use presumed_any::obs::{event_to_json, parse_flat_json, Counter, JsonValue};
use presumed_any::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn mixed_reactor() -> ReactorConfig {
    ReactorConfig::new(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &[ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC],
    )
}

/// Delays so large that any timer firing in a clean run is a bug; the
/// protocol must make progress purely on message flow.
fn glacial() -> NetDelays {
    NetDelays {
        vote_timeout: Duration::from_secs(60),
        ack_resend: Duration::from_secs(60),
        inquiry_retry: Duration::from_secs(60),
        apply_retry: Duration::from_secs(60),
        paxos_completion: Duration::from_secs(60),
    }
}

#[test]
fn reactor_commit_applies_data_at_all_participants() {
    let mut cluster = ReactorCluster::spawn(&mixed_reactor());
    let parts = cluster.participants();
    let txn = cluster.next_txn();
    for &p in &parts {
        cluster.apply(p, txn, b"balance", b"100");
    }
    let outcome = cluster.commit(txn, &parts).expect("decision");
    assert_eq!(outcome, Outcome::Commit);
    cluster.settle(Duration::from_millis(300));
    let report = cluster.shutdown();
    assert!(check_atomicity(&report.cluster.history).is_empty());
    for s in &report.cluster.sites {
        if s.site != ReactorCluster::COORDINATOR {
            assert_eq!(
                s.committed.get(b"balance".as_slice()).map(Vec::as_slice),
                Some(b"100".as_slice()),
                "site {}",
                s.site
            );
        }
    }
    assert_eq!(report.cluster.coordinator_table_size, 0);
}

#[test]
fn reactor_no_vote_aborts_the_whole_transaction() {
    let mut cluster = ReactorCluster::spawn(&mixed_reactor());
    let txn = cluster.next_txn();
    let parts = cluster.participants();
    for &p in &parts {
        cluster.apply(p, txn, b"k", b"v");
    }
    cluster.set_intent(parts[0], txn, Vote::No);
    let outcome = cluster.commit(txn, &parts).expect("decision");
    assert_eq!(outcome, Outcome::Abort);
    cluster.settle(Duration::from_millis(300));
    let report = cluster.shutdown();
    assert!(check_atomicity(&report.cluster.history).is_empty());
    for s in &report.cluster.sites {
        assert!(s.committed.is_empty(), "no data may commit at {}", s.site);
    }
}

// ---------------------------------------------------------------------------
// Cross-backend trace parity

/// Per-site event lines with the wall-clock fields (`at_us`,
/// `since_decision_us`) masked out. Per-site subsequences are totally
/// ordered in both backends; the global interleaving across sites is
/// scheduling noise and is not compared.
fn masked_site_traces(events: &[ProtocolEvent]) -> BTreeMap<u64, Vec<String>> {
    let mut by_site: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for ev in events {
        let mut map = parse_flat_json(&event_to_json(ev)).expect("trace dialect");
        map.remove("at_us");
        map.remove("since_decision_us");
        let site = map["site"].as_u64().expect("site field");
        let line = map
            .iter()
            .map(|(k, v)| match v {
                JsonValue::Num(n) => format!("\"{k}\":{n}"),
                JsonValue::Str(s) => format!("\"{k}\":{s:?}"),
            })
            .collect::<Vec<_>>()
            .join(",");
        by_site.entry(site).or_default().push(format!("{{{line}}}"));
    }
    by_site
}

/// One clean transaction over a single participant (a total causal
/// order, so even thread scheduling cannot reorder events) must produce
/// the same trace, byte for byte modulo timestamps, on both backends.
#[test]
fn clean_trace_is_byte_identical_across_backends() {
    let kind = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
    let protos = [ProtocolKind::PrA];

    let threaded = {
        let sink = Arc::new(VecSink::new());
        let mut cluster =
            Cluster::spawn_with_sink(&ClusterConfig::new(kind, &protos), Arc::clone(&sink) as _);
        let txn = cluster.next_txn();
        let parts = cluster.participants();
        cluster.apply(parts[0], txn, b"k", b"v");
        assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
        cluster.settle(Duration::from_millis(300));
        let _ = cluster.shutdown();
        masked_site_traces(&sink.snapshot())
    };

    let reactor = {
        let sink = Arc::new(VecSink::new());
        let mut cluster =
            ReactorCluster::spawn_with_sink(&ReactorConfig::new(kind, &protos), Arc::clone(&sink) as _);
        let txn = cluster.next_txn();
        let parts = cluster.participants();
        cluster.apply(parts[0], txn, b"k", b"v");
        assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
        cluster.settle(Duration::from_millis(300));
        let _ = cluster.shutdown();
        masked_site_traces(&sink.snapshot())
    };

    assert_eq!(
        threaded.keys().collect::<Vec<_>>(),
        reactor.keys().collect::<Vec<_>>(),
        "same sites traced"
    );
    for (site, lines) in &threaded {
        assert_eq!(
            lines, &reactor[site],
            "site {site}: trace diverged between backends"
        );
    }
}

/// The adaptive group-commit window must not change a single
/// transaction's trace: a batch of one forces immediately, so the
/// windowed run is indistinguishable from the unwindowed one.
#[test]
fn adaptive_window_keeps_single_txn_traces_identical() {
    let kind = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
    let protos = [ProtocolKind::PrA];
    let run = |window: Duration| {
        let sink = Arc::new(VecSink::new());
        let mut config = ReactorConfig::new(kind, &protos);
        config.cluster.group_commit = true;
        config.commit_window = window;
        config.adaptive_window = true;
        let mut cluster = ReactorCluster::spawn_with_sink(&config, Arc::clone(&sink) as _);
        let txn = cluster.next_txn();
        let parts = cluster.participants();
        cluster.apply(parts[0], txn, b"k", b"v");
        assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
        cluster.settle(Duration::from_millis(300));
        let report = cluster.shutdown();
        (masked_site_traces(&sink.snapshot()), report)
    };

    let (unwindowed, _) = run(Duration::ZERO);
    let (windowed, report) = run(Duration::from_millis(20));
    assert_eq!(
        unwindowed, windowed,
        "adaptive window changed a single-transaction trace"
    );
    assert!(
        report.stats.adaptive_forces > 0,
        "single-record batches should take the adaptive fast path, got {:?}",
        report.stats
    );
}

// ---------------------------------------------------------------------------
// Cross-backend cost parity (satellite of the sharded-table change: the
// sharded coordinator path must count exactly what the threaded,
// mutex-per-table path counts)

#[test]
fn cost_counters_match_across_backends() {
    let kind = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
    let protos = [ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC];
    const TXNS: u64 = 10;

    let threaded = {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = Arc::new(CountingSink::new(Arc::clone(&registry)));
        let mut config = ClusterConfig::new(kind, &protos);
        config.delays = glacial();
        let mut cluster = Cluster::spawn_with_sink(&config, sink as _);
        let parts = cluster.participants();
        for i in 0..TXNS {
            let txn = cluster.next_txn();
            for &p in &parts {
                cluster.apply(p, txn, format!("k{i}").as_bytes(), b"v");
            }
            assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
        }
        cluster.settle(Duration::from_millis(300));
        let _ = cluster.shutdown();
        registry
    };

    let reactor = {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = Arc::new(CountingSink::new(Arc::clone(&registry)));
        let mut config = ReactorConfig::new(kind, &protos);
        config.cluster.delays = glacial();
        let mut cluster = ReactorCluster::spawn_with_sink(&config, sink as _);
        let parts = cluster.participants();
        for i in 0..TXNS {
            let txn = cluster.next_txn();
            for &p in &parts {
                cluster.apply(p, txn, format!("k{i}").as_bytes(), b"v");
            }
            assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
        }
        cluster.settle(Duration::from_millis(300));
        let _ = cluster.shutdown();
        registry
    };

    for proto in ProtoLabel::ALL {
        for counter in Counter::ALL {
            if counter == Counter::GcLatencyUsSum {
                continue; // wall-clock latency: backend-dependent by nature
            }
            assert_eq!(
                threaded.get(proto, counter),
                reactor.get(proto, counter),
                "{proto:?}/{counter:?} diverged between backends"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Concurrency, timers and crashes

#[test]
fn reactor_sustains_hundreds_of_concurrent_transactions() {
    let mut config = mixed_reactor();
    config.cluster.group_commit = true;
    config.cluster.delays = glacial();
    let mut cluster = ReactorCluster::spawn(&config);
    let parts = cluster.participants();

    const N: usize = 256;
    let mut pending = Vec::with_capacity(N);
    for i in 0..N {
        let txn = cluster.next_txn();
        for &p in &parts {
            cluster.apply(p, txn, format!("key-{i}").as_bytes(), b"v");
        }
        pending.push((txn, cluster.commit_async(txn, &parts)));
    }
    for (txn, rx) in pending {
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(30)).ok(),
            Some(Outcome::Commit),
            "txn {txn}"
        );
    }
    cluster.settle(Duration::from_millis(300));
    let report = cluster.shutdown();
    assert!(check_atomicity(&report.cluster.history).is_empty());
    assert_eq!(report.cluster.coordinator_table_size, 0);
    assert_eq!(report.stats.decisions_delivered, N as u64);
    assert!(
        report.stats.max_inflight > 32,
        "expected genuinely concurrent transactions, max in-flight was {}",
        report.stats.max_inflight
    );
    // One fsync per site per tick: far fewer physical syncs than the
    // logical forces the engines requested.
    assert!(
        report.cluster.physical_syncs < report.cluster.logical_forces,
        "batching should amortize forces: {} physical vs {} logical",
        report.cluster.physical_syncs,
        report.cluster.logical_forces
    );
    for s in report
        .cluster
        .sites
        .iter()
        .filter(|s| s.site != ReactorCluster::COORDINATOR)
    {
        assert_eq!(s.committed.len(), N, "site {}", s.site);
    }
}

/// Satellite: timers are cancelled when the decision arrives. Under
/// glacial delays no timer may ever fire in a clean run — every armed
/// vote-timeout / ack-resend / inquiry timer must be retired by
/// protocol progress instead.
#[test]
fn decided_transactions_cancel_their_timers() {
    let mut config = mixed_reactor();
    config.cluster.delays = glacial();
    let mut cluster = ReactorCluster::spawn(&config);
    let parts = cluster.participants();
    for i in 0..5u32 {
        let txn = cluster.next_txn();
        for &p in &parts {
            cluster.apply(p, txn, format!("k{i}").as_bytes(), b"v");
        }
        assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
    }
    cluster.settle(Duration::from_millis(200));
    let report = cluster.shutdown();
    assert_eq!(report.stats.timers_fired, 0, "clean run fired a timer");
    assert!(
        report.stats.timers_cancelled > 0,
        "decisions should retire pending timers, got {:?}",
        report.stats
    );
}

/// Satellite: a crash during a pending timer fires nothing after
/// recovery — the wheel sweeps the site's entries with its volatile
/// state.
#[test]
fn crash_with_pending_timers_fires_nothing_stale() {
    let mut config = mixed_reactor();
    config.cluster.delays = glacial();
    let mut cluster = ReactorCluster::spawn(&config);
    let parts = cluster.participants();
    let txn = cluster.next_txn();
    for &p in &parts {
        cluster.apply(p, txn, b"k", b"v");
    }
    // Begin commit processing so vote-timeout and inquiry timers arm,
    // then crash a participant while they are pending.
    let rx = cluster.commit_async(txn, &parts);
    std::thread::sleep(Duration::from_millis(5));
    cluster.crash(parts[1], Duration::from_millis(100));
    cluster.settle(Duration::from_millis(500));
    drop(rx);
    let report = cluster.shutdown();
    // Whatever the protocol outcome, no stale timer fired: glacial
    // delays mean any firing would have to be a pre-crash timer
    // surviving the sweep.
    assert_eq!(
        report.stats.timers_fired, 0,
        "a timer armed before the crash fired after it: {:?}",
        report.stats
    );
    assert!(check_atomicity(&report.cluster.history).is_empty());
}

#[test]
fn reactor_participant_crash_during_commit_still_atomic() {
    let mut cluster = ReactorCluster::spawn(&mixed_reactor());
    let parts = cluster.participants();
    let txn = cluster.next_txn();
    for &p in &parts {
        cluster.apply(p, txn, b"x", b"1");
    }
    let _ = cluster.commit_async(txn, &parts);
    cluster.crash(parts[2], Duration::from_millis(300));
    cluster.settle(Duration::from_millis(2_500));
    let report = cluster.shutdown();
    let v = check_atomicity(&report.cluster.history);
    assert!(v.is_empty(), "{v:?}");
    let datasets: Vec<_> = report
        .cluster
        .sites
        .iter()
        .filter(|s| s.site != ReactorCluster::COORDINATOR)
        .map(|s| s.committed.clone())
        .collect();
    for d in &datasets[1..] {
        assert_eq!(&datasets[0], d, "data diverged");
    }
}

#[test]
fn reactor_coordinator_crash_mid_flight_converges() {
    let mut cluster = ReactorCluster::spawn(&mixed_reactor());
    let parts = cluster.participants();
    let txn = cluster.next_txn();
    for &p in &parts {
        cluster.apply(p, txn, b"k", b"v");
    }
    let _ = cluster.commit_async(txn, &parts);
    cluster.crash(ReactorCluster::COORDINATOR, Duration::from_millis(200));
    cluster.settle(Duration::from_secs(3));
    let report = cluster.shutdown();
    let v = check_atomicity(&report.cluster.history);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn reactor_gateway_commits_alongside_native_sites() {
    let mut config = ReactorConfig::new(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &[ProtocolKind::PrA, ProtocolKind::PrC],
    );
    config.cluster.gateways = vec![1];
    let mut cluster = ReactorCluster::spawn(&config);
    let parts = cluster.participants();
    let txn = cluster.next_txn();
    cluster.apply(parts[0], txn, b"native", b"1");
    cluster.apply(parts[1], txn, b"legacy", b"2");
    assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
    cluster.settle(Duration::from_millis(400));
    let report = cluster.shutdown();
    assert!(check_atomicity(&report.cluster.history).is_empty());
    let gw = report
        .cluster
        .sites
        .iter()
        .find(|s| s.site == parts[1])
        .expect("gateway site");
    assert_eq!(
        gw.committed.get(b"legacy".as_slice()).map(Vec::as_slice),
        Some(b"2".as_slice())
    );
}

// ---------------------------------------------------------------------------
// Live metrics surface

#[test]
fn metrics_timeline_streams_in_run_snapshots() {
    let registry = Arc::new(MetricsRegistry::new());
    let timeline = Arc::new(MetricsTimeline::new());
    let sink = Arc::new(CountingSink::new(Arc::clone(&registry)));
    let mut config = mixed_reactor();
    config.cluster.delays = glacial();
    config.snapshot_every_commits = 1;
    let mut cluster = ReactorCluster::spawn_observed(
        &config,
        sink as _,
        Arc::clone(&registry),
        Arc::clone(&timeline),
    );
    let parts = cluster.participants();
    const TXNS: u64 = 5;
    for i in 0..TXNS {
        let txn = cluster.next_txn();
        for &p in &parts {
            cluster.apply(p, txn, format!("k{i}").as_bytes(), b"v");
        }
        assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
    }
    cluster.settle(Duration::from_millis(200));
    let report: ReactorReport = cluster.shutdown();
    assert_eq!(report.stats.decisions_delivered, TXNS);

    let snaps = timeline.snapshots();
    assert!(
        snaps.len() >= 2,
        "expected in-run snapshots, got {}",
        snaps.len()
    );
    // Snapshots are cumulative and time-ordered: decision and force
    // counts never decrease, timestamps never run backwards.
    for w in snaps.windows(2) {
        assert!(w[0].at_us <= w[1].at_us);
        assert!(w[0].total(Counter::DecisionsReached) <= w[1].total(Counter::DecisionsReached));
        assert!(w[0].total(Counter::ForcedWrites) <= w[1].total(Counter::ForcedWrites));
    }
    // The forces-per-transaction curve is computable from the stream —
    // the final point matches the registry's end state.
    let last = snaps.last().expect("non-empty");
    assert_eq!(
        last.total(Counter::DecisionsReached),
        registry.snapshot(0).total(Counter::DecisionsReached)
    );
}
