//! WAL fault-injection fuzzing: the ROADMAP "Recovery fuzzing" item.
//!
//! A `FaultyLog` holds the exact byte image a `FileLog` would have on
//! disk. These properties mutate that image — torn tails, partial
//! fsyncs, bit flips at arbitrary offsets in the record region — and
//! prove the two claims the recovery procedures of §4.2 rest on:
//!
//! 1. **No corrupted record is ever accepted.** Every record a
//!    post-crash scan returns is byte-for-byte one of the records that
//!    was actually appended (CRC32 framing rejects all damage).
//! 2. **The scan recovers the longest valid prefix.** Survivors are an
//!    exact prefix of the appended sequence, and for a pure torn tail
//!    the prefix length is exactly the number of whole undamaged frames.
//!
//! The default case counts are a CI smoke slice; set `PROPTEST_CASES`
//! (e.g. `PROPTEST_CASES=4096`) to run the full campaign.

use acp_wal::fault::{Fault, FaultyLog};
use acp_wal::scan::analyze;
use acp_wal::{GcTracker, LogRecord, StableLog};
use presumed_any::prelude::*;
use presumed_any::types::{LogPayload, ParticipantEntry};
use proptest::prelude::*;

/// Byte length of the log header preceding the first frame (see
/// `acp_wal::file`): the fuzzer corrupts the *record region*, whose
/// integrity is what the CRC framing claims to protect.
const HEADER_LEN: u64 = 16;

// ---------------------------------------------------------------------
// generators
// ---------------------------------------------------------------------

fn arb_payload() -> impl Strategy<Value = LogPayload> {
    let txn = (0u64..100).prop_map(TxnId::new);
    prop_oneof![
        (txn.clone(), 0u32..8).prop_map(|(txn, c)| LogPayload::Prepared {
            txn,
            coordinator: SiteId::new(c)
        }),
        (txn.clone(), prop_oneof![Just(Outcome::Commit), Just(Outcome::Abort)])
            .prop_map(|(txn, outcome)| LogPayload::PartDecision { txn, outcome }),
        txn.clone().prop_map(|txn| LogPayload::End { txn }),
        txn.clone().prop_map(|txn| LogPayload::PartEnd { txn }),
        (txn.clone(), prop_oneof![Just(Outcome::Commit), Just(Outcome::Abort)]).prop_map(
            |(txn, outcome)| LogPayload::CoordDecision {
                txn,
                outcome,
                participants: vec![
                    ParticipantEntry::new(SiteId::new(1), ProtocolKind::PrN),
                    ParticipantEntry::new(SiteId::new(2), ProtocolKind::PrC),
                ],
            }
        ),
        (txn, prop::collection::vec(any::<u8>(), 0..16)).prop_map(|(txn, key)| {
            LogPayload::Update {
                txn,
                key,
                before: None,
                after: Some(vec![0xAB; 3]),
            }
        }),
    ]
}

/// A log's worth of (payload, forced) appends.
fn arb_appends() -> impl Strategy<Value = Vec<(LogPayload, bool)>> {
    prop::collection::vec((arb_payload(), any::<bool>()), 1..12)
}

/// Legal per-transaction record sequences (each a prefix of a coordinator
/// or participant life cycle), plus an interleaving seed. Unlike
/// [`arb_payload`] soup, these never reuse a txn id across lives, so GC
/// and recovery analysis agree on what "still needed" means.
fn arb_txn_scripts() -> impl Strategy<Value = (Vec<Vec<LogPayload>>, Vec<u8>)> {
    let script = (0u8..5).prop_map(|kind| {
        move |t: u64| -> Vec<LogPayload> {
            let txn = TxnId::new(t);
            let decision = LogPayload::CoordDecision {
                txn,
                outcome: Outcome::Commit,
                participants: vec![],
            };
            let prepared = LogPayload::Prepared {
                txn,
                coordinator: SiteId::new(0),
            };
            let part_dec = LogPayload::PartDecision {
                txn,
                outcome: Outcome::Commit,
            };
            match kind {
                0 => vec![decision],                                     // open coordinator
                1 => vec![decision, LogPayload::End { txn }],            // finished coordinator
                2 => vec![prepared],                                     // in doubt
                3 => vec![prepared, part_dec],                           // decided participant
                _ => vec![prepared, part_dec, LogPayload::PartEnd { txn }], // finished
            }
        }
    });
    (
        prop::collection::vec(script, 1..7).prop_map(|makers| {
            makers
                .into_iter()
                .enumerate()
                .map(|(i, mk)| mk(1000 + i as u64))
                .collect::<Vec<_>>()
        }),
        prop::collection::vec(any::<u8>(), 0..24),
    )
}

/// Interleave the scripts, preserving per-transaction order, choosing
/// which script advances next from the seed bytes.
fn interleave(mut scripts: Vec<Vec<LogPayload>>, seed: &[u8]) -> Vec<LogPayload> {
    for s in &mut scripts {
        s.reverse(); // pop from the back = per-txn order
    }
    let mut out = Vec::new();
    let mut si = 0usize;
    while scripts.iter().any(|s| !s.is_empty()) {
        let pick = seed.get(out.len()).copied().unwrap_or(si as u8) as usize;
        let nonempty: Vec<usize> = (0..scripts.len())
            .filter(|&i| !scripts[i].is_empty())
            .collect();
        let idx = nonempty[pick % nonempty.len()];
        out.push(scripts[idx].pop().unwrap());
        si += 1;
    }
    out
}

/// A batch of faults aimed at the record region of the image.
fn arb_faults() -> impl Strategy<Value = Vec<Fault>> {
    let fault = prop_oneof![
        (1u64..200).prop_map(|bytes| Fault::TornTail { bytes }),
        (1u64..80).prop_map(|drop_bytes| Fault::PartialFsync { drop_bytes }),
        (0u64..600, 1u8..=255).prop_map(|(rel, mask)| Fault::BitFlip {
            offset: HEADER_LEN + rel,
            mask,
        }),
    ];
    prop::collection::vec(fault, 1..5)
}

/// Append everything, remembering what the writer believes is durable
/// after the final flush.
fn build(log: &mut FaultyLog, appends: &[(LogPayload, bool)]) -> Vec<LogRecord> {
    for (p, force) in appends {
        log.append(p.clone(), *force).unwrap();
    }
    log.flush().unwrap();
    log.records().unwrap()
}

/// Assert the fuzzer's core invariant: `survivors` is an exact,
/// uncorrupted prefix of `believed`.
fn assert_valid_prefix(survivors: &[LogRecord], believed: &[LogRecord]) {
    assert!(
        survivors.len() <= believed.len(),
        "recovery invented {} record(s)",
        survivors.len() - believed.len()
    );
    for (i, (got, want)) in survivors.iter().zip(believed).enumerate() {
        assert_eq!(
            got, want,
            "record {i} survived recovery with corrupted contents"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(64))]

    /// Claim 1: arbitrary fault batches never smuggle a corrupted
    /// record past the scan.
    #[test]
    fn corruption_is_never_accepted(appends in arb_appends(), faults in arb_faults()) {
        let mut log = FaultyLog::new();
        let believed = build(&mut log, &appends);
        for f in &faults {
            log.inject(*f);
        }
        // Partial fsyncs fire on a force: give them a batch to damage.
        log.append(LogPayload::End { txn: TxnId::new(999) }, true).unwrap();
        let mut believed_plus = believed.clone();
        believed_plus.push(log.records().unwrap().last().unwrap().clone());

        let report = log.crash_and_recover().unwrap();
        let survivors = log.records().unwrap();
        prop_assert_eq!(report.survivors, survivors.len());
        assert_valid_prefix(&survivors, &believed_plus);

        // Recovery is idempotent: crashing again with no new faults
        // must change nothing.
        let again = log.crash_and_recover().unwrap();
        prop_assert_eq!(again.survivors, survivors.len());
        prop_assert_eq!(again.truncated_bytes, 0);
        prop_assert_eq!(log.records().unwrap(), survivors);
    }

    /// Claim 2: a pure torn tail keeps exactly the whole frames before
    /// the cut — the longest valid prefix, no more, no less.
    #[test]
    fn torn_tail_recovers_exact_frame_prefix(appends in arb_appends(), cut in 0u64..400) {
        let mut log = FaultyLog::new();
        let believed = build(&mut log, &appends);

        // Frame boundaries from the believed image.
        let image_len = log.image().len() as u64;
        let cut = cut.min(image_len - HEADER_LEN);
        let survivor_bytes = image_len - cut;
        // Count whole frames that fit in survivor_bytes by replaying
        // the frame sizes (encode is deterministic).
        let mut fit = 0usize;
        let mut pos = HEADER_LEN;
        for rec in &believed {
            let frame = acp_wal::encode::encode_frame(rec).len() as u64;
            if pos + frame <= survivor_bytes {
                fit += 1;
                pos += frame;
            } else {
                break;
            }
        }

        log.inject(Fault::TornTail { bytes: cut });
        let report = log.crash_and_recover().unwrap();
        prop_assert_eq!(report.survivors, fit, "cut={} of {}", cut, image_len);
        assert_valid_prefix(&log.records().unwrap(), &believed);
        prop_assert_eq!(report.lost_durable, believed.len() - fit);
    }

    /// Satellite: GC after a torn tail. The low-water mark a re-scan
    /// derives must never reclaim a record that post-corruption recovery
    /// analysis (in-doubt / open-coordinator detection) still needs.
    #[test]
    fn gc_after_torn_tail_never_reclaims_needed_records(
        scripts_and_seed in arb_txn_scripts(),
        cut in 1u64..300,
    ) {
        let (scripts, seed) = scripts_and_seed;
        let appends: Vec<(LogPayload, bool)> = interleave(scripts, &seed)
            .into_iter()
            .map(|p| (p, true))
            .collect();
        let mut log = FaultyLog::new();
        build(&mut log, &appends);
        log.inject(Fault::TornTail { bytes: cut });
        log.crash_and_recover().unwrap();
        let survivors = log.records().unwrap();

        // Rebuild GC state from what actually survived — the only sound
        // source after corruption.
        let tracker = GcTracker::from_records(&survivors);
        let releasable = tracker.releasable();

        // Every transaction recovery still cares about (in doubt, or an
        // open coordinator decision awaiting acks) must keep all its
        // records at or above the truncation point.
        for (txn, summary) in analyze(&survivors) {
            if summary.in_doubt() || summary.coordinator_open() {
                for r in survivors.iter().filter(|r| r.payload.txn() == txn) {
                    prop_assert!(
                        r.lsn >= releasable,
                        "txn {:?} record at {:?} would be reclaimed (releasable {:?})",
                        txn, r.lsn, releasable
                    );
                }
            }
        }

        // And the advance must actually be applicable to the recovered log.
        log.truncate_prefix(releasable).unwrap();
        let retained = log.records().unwrap();
        prop_assert!(retained.iter().all(|r| r.lsn >= releasable));
    }
}

/// Deterministic regression for the GC-after-torn-tail satellite: a
/// torn End record reopens its transaction, and the pre-crash
/// low-water-mark advance must be refused after recovery.
#[test]
fn stale_pre_crash_releasable_is_refused_after_torn_tail() {
    let decision = |t: u64| LogPayload::CoordDecision {
        txn: TxnId::new(t),
        outcome: Outcome::Commit,
        participants: vec![],
    };
    let end = |t: u64| LogPayload::End { txn: TxnId::new(t) };

    let mut log = FaultyLog::new();
    let mut tracker = GcTracker::new();
    for p in [decision(1), end(1), decision(2), end(2)] {
        let lsn = log.append(p.clone(), true).unwrap();
        tracker.note(lsn, &p);
    }
    // Pre-crash view: both transactions ended, whole log reclaimable.
    let stale_releasable = tracker.releasable();
    assert_eq!(stale_releasable.raw(), 4);

    // Tear off txn 2's End record.
    let end_frame = acp_wal::encode::encode_frame(&log.records().unwrap()[3]);
    log.inject(Fault::TornTail {
        bytes: end_frame.len() as u64,
    });
    let report = log.crash_and_recover().unwrap();
    assert_eq!(report.survivors, 3);

    // The stale advance now points past the recovered tail: refused.
    assert!(log.truncate_prefix(stale_releasable).is_err());

    // The rebuilt tracker pins txn 2's decision record: releasable stops
    // exactly at it, and the record survives the truncation.
    let rebuilt = GcTracker::from_records(&log.records().unwrap());
    assert_eq!(rebuilt.releasable().raw(), 2);
    assert_eq!(rebuilt.pinned(), vec![TxnId::new(2)]);
    log.truncate_prefix(rebuilt.releasable()).unwrap();
    let retained = log.records().unwrap();
    assert_eq!(retained.len(), 1);
    assert_eq!(retained[0].payload, decision(2));
}
