//! Experiment E7 — Theorem 3: "The PrAny protocol satisfies the
//! operational correctness criterion."
//!
//! Randomized campaigns: mixed protocol populations, lossy networks,
//! random crash schedules across many seeds — every run must satisfy
//! all three requirements of Definition 1 and the safe state of
//! Definition 2. The bounded model checker covers the small
//! configurations exhaustively (see `acp-check`); these campaigns cover
//! depth (many transactions, repeated failures) that the checker's
//! bounds cannot.

mod common;

use common::*;
use presumed_any::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn campaign(seed: u64, policy: SelectionPolicy, loss: f64, crashes_per_second: f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_sites = 3 + (seed as usize % 3); // 3..=5 participants
    let protocols = PopulationMix::uniform().sample_n(&mut rng, n_sites);

    let mut s = Scenario::new(CoordinatorKind::PrAny(policy), &protocols);
    s.seed = seed;
    s.network = NetworkConfig::lossy(loss);

    let mix = TxnMix {
        count: 25,
        min_participants: 2,
        max_participants: n_sites.min(4),
        abort_probability: 0.15,
        read_only_probability: 0.10,
        inter_start: SimTime::from_millis(4),
    };
    let plans = mix.generate(&mut rng, &s.participant_sites());
    let horizon = plans.last().expect("plans").start_at + SimTime::from_millis(300);
    for p in &plans {
        let spec = s.add_txn(p.txn, p.start_at);
        spec.participants = p.participants.clone();
        spec.votes = p.votes.clone();
    }

    let all_sites: Vec<SiteId> = std::iter::once(coord())
        .chain(s.participant_sites())
        .collect();
    let plan = FailurePlan {
        crashes_per_second,
        max_outage: SimTime::from_millis(60),
    };
    s.failures = plan.schedule(&mut rng, &all_sites, horizon);

    let out = run_scenario(&s);
    assert_fully_correct(&out);

    // Requirement 1 in data terms: all enforcements of one transaction
    // agree, and match the decision where one exists.
    for plan in &plans {
        let enforced: Vec<Outcome> = out
            .enforced
            .iter()
            .filter(|((_, t), _)| *t == plan.txn)
            .map(|(_, o)| *o)
            .collect();
        assert!(
            enforced.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: split brain on {}: {enforced:?}",
            plan.txn
        );
        if let (Some(&decided), Some(&first)) = (out.decided.get(&plan.txn), enforced.first()) {
            assert_eq!(decided, first, "seed {seed}: {}", plan.txn);
        }
    }
}

#[test]
fn campaign_no_failures() {
    for seed in 0..6 {
        campaign(seed, SelectionPolicy::PaperStrict, 0.0, 0.0);
    }
}

#[test]
fn campaign_lossy_network() {
    for seed in 10..16 {
        campaign(seed, SelectionPolicy::PaperStrict, 0.05, 0.0);
    }
}

#[test]
fn campaign_crashes() {
    for seed in 20..26 {
        campaign(seed, SelectionPolicy::PaperStrict, 0.0, 10.0);
    }
}

#[test]
fn campaign_crashes_and_loss() {
    for seed in 30..36 {
        campaign(seed, SelectionPolicy::PaperStrict, 0.03, 8.0);
    }
}

#[test]
fn campaign_optimized_policy() {
    for seed in 40..46 {
        campaign(seed, SelectionPolicy::Optimized, 0.03, 8.0);
    }
}

#[test]
fn exhaustive_small_configurations_via_model_checker() {
    use presumed_any::types::Vote;
    // Every 2-participant protocol pairing, both with all-yes votes and
    // with one No voter, under the bounded adversary: zero violations.
    for a in ProtocolKind::ALL {
        for b in ProtocolKind::ALL {
            for votes in [vec![], vec![Vote::No]] {
                let mut config = CheckConfig::new(
                    CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
                    &[a, b],
                );
                config.votes = votes.clone();
                let report = check(&config);
                assert!(!report.truncated, "{a}/{b} {votes:?}: {report}");
                assert!(report.clean(), "{a}/{b} {votes:?}: {report}");
            }
        }
    }
}

#[test]
fn safe_state_holds_at_every_forget_point() {
    // A direct Definition 2 check over a failure-heavy run: for every
    // transaction the coordinator forgot, all later inquiries were
    // answered with the decided outcome.
    let mut rng = StdRng::seed_from_u64(99);
    let protocols = PopulationMix::uniform().sample_n(&mut rng, 4);
    let mut s = Scenario::new(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &protocols,
    );
    s.seed = 99;
    let mix = TxnMix {
        count: 30,
        abort_probability: 0.2,
        ..TxnMix::default()
    };
    let plans = mix.generate(&mut rng, &s.participant_sites());
    let horizon = plans.last().expect("plans").start_at + SimTime::from_millis(300);
    for p in &plans {
        let spec = s.add_txn(p.txn, p.start_at);
        spec.participants = p.participants.clone();
        spec.votes = p.votes.clone();
    }
    let all_sites: Vec<SiteId> = std::iter::once(coord())
        .chain(s.participant_sites())
        .collect();
    s.failures = FailurePlan {
        crashes_per_second: 12.0,
        max_outage: SimTime::from_millis(50),
    }
    .schedule(&mut rng, &all_sites, horizon);

    let out = run_scenario(&s);
    let v = check_all_safe_states(&out.history, coord());
    assert!(v.is_empty(), "{v:?}");
    // The run actually exercised post-forget inquiries (otherwise this
    // test proves nothing).
    let presumption_answers = out
        .history
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e,
                ActaEvent::Respond {
                    by_presumption: true,
                    ..
                }
            )
        })
        .count();
    assert!(
        presumption_answers > 0,
        "campaign too tame: no presumption answers exercised"
    );
}
