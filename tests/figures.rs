//! Experiments E1–E4: reproduce the exact message and log-write
//! schedules of the paper's protocol figures.
//!
//! * Figure 2 — basic 2PC / presumed nothing (E1)
//! * Figure 3 — presumed abort (E2)
//! * Figure 4 — presumed commit (E3)
//! * Figure 1 — Presumed Any with a PrA and a PrC participant (E4)
//!
//! Each test runs the full protocol stack under the deterministic
//! simulator and asserts the schedule of forced/non-forced log writes at
//! every site and the message counts per round. The only systematic
//! deviation from the figures — the non-forced end record we write as a
//! GC marker whenever a transaction logged anything — is called out in
//! DESIGN.md and asserted explicitly here.

mod common;

use common::*;
use presumed_any::prelude::*;

const T: TxnId = TxnId(1);

// ---------------------------------------------------------------------
// Figure 2: PrN (E1)
// ---------------------------------------------------------------------

#[test]
fn e1_fig2_prn_commit_schedule() {
    let s = one_txn(
        CoordinatorKind::Single(ProtocolKind::PrN),
        &[ProtocolKind::PrN; 2],
    );
    let out = run_scenario(&s);
    assert_eq!(out.decided[&T], Outcome::Commit);
    assert_fully_correct(&out);

    // Coordinator: "Force Write Decision Record" … "Write non-forced End
    // Record".
    assert_eq!(
        log_tags(&out.trace, coord()),
        vec!["force:commit", "write:end"]
    );
    // Each participant: "Force Write Prepared Record" … "Force Write
    // Decision Record" (+ our GC marker).
    for p in [site(1), site(2)] {
        assert_eq!(
            log_tags(&out.trace, p),
            vec!["force:prepared", "force:part-commit", "write:part-end"],
            "{p}"
        );
    }
    // Four message rounds of two messages each.
    assert_eq!(sent_count(&out.trace, "prepare"), 2);
    assert_eq!(sent_count(&out.trace, "vote"), 2);
    assert_eq!(sent_count(&out.trace, "decision"), 2);
    assert_eq!(sent_count(&out.trace, "ack"), 2);
}

#[test]
fn e1_fig2_prn_abort_schedule() {
    // Site 3 votes No; sites 1 and 2 are the figure's prepared
    // participants receiving the abort.
    let s = one_txn_abort(
        CoordinatorKind::Single(ProtocolKind::PrN),
        &[ProtocolKind::PrN; 3],
        site(3),
    );
    let out = run_scenario(&s);
    assert_eq!(out.decided[&T], Outcome::Abort);
    assert_fully_correct(&out);

    assert_eq!(
        log_tags(&out.trace, coord()),
        vec!["force:abort", "write:end"]
    );
    for p in [site(1), site(2)] {
        assert_eq!(
            log_tags(&out.trace, p),
            vec!["force:prepared", "force:part-abort", "write:part-end"],
            "{p}"
        );
    }
    // The No-voter wrote nothing durable.
    assert!(log_tags(&out.trace, site(3)).is_empty());
    // PrN acks aborts: both prepared participants acknowledged.
    assert_eq!(ack_senders(&out.trace), vec![site(1), site(2)]);
}

// ---------------------------------------------------------------------
// Figure 3: PrA (E2)
// ---------------------------------------------------------------------

#[test]
fn e2_fig3_pra_commit_schedule() {
    let s = one_txn(
        CoordinatorKind::Single(ProtocolKind::PrA),
        &[ProtocolKind::PrA; 2],
    );
    let out = run_scenario(&s);
    assert_eq!(out.decided[&T], Outcome::Commit);
    assert_fully_correct(&out);
    assert_eq!(
        log_tags(&out.trace, coord()),
        vec!["force:commit", "write:end"]
    );
    for p in [site(1), site(2)] {
        assert_eq!(
            log_tags(&out.trace, p),
            vec!["force:prepared", "force:part-commit", "write:part-end"]
        );
    }
    assert_eq!(sent_count(&out.trace, "ack"), 2, "commits are acknowledged");
}

#[test]
fn e2_fig3_pra_abort_schedule() {
    let s = one_txn_abort(
        CoordinatorKind::Single(ProtocolKind::PrA),
        &[ProtocolKind::PrA; 3],
        site(3),
    );
    let out = run_scenario(&s);
    assert_eq!(out.decided[&T], Outcome::Abort);
    assert_fully_correct(&out);

    // "The coordinator of an aborted transaction does not have to write
    // any log records or wait for acknowledgments."
    assert!(log_tags(&out.trace, coord()).is_empty());
    assert_eq!(sent_count(&out.trace, "ack"), 0);
    // Participants write the abort record non-forced.
    for p in [site(1), site(2)] {
        assert_eq!(
            log_tags(&out.trace, p),
            vec!["force:prepared", "write:part-abort", "write:part-end"],
            "{p}"
        );
    }
    assert_eq!(out.coordinator_table_size, 0);
}

// ---------------------------------------------------------------------
// Figure 4: PrC (E3)
// ---------------------------------------------------------------------

#[test]
fn e3_fig4a_prc_commit_schedule() {
    let s = one_txn(
        CoordinatorKind::Single(ProtocolKind::PrC),
        &[ProtocolKind::PrC; 2],
    );
    let out = run_scenario(&s);
    assert_eq!(out.decided[&T], Outcome::Commit);
    assert_fully_correct(&out);

    // "Force Write Initiation Record" … "Force Write Commit Record"
    // (+ our GC marker, which the figure omits).
    assert_eq!(
        log_tags(&out.trace, coord()),
        vec!["force:initiation", "force:commit", "write:end"]
    );
    // Participants: non-forced commit record, no acknowledgment.
    for p in [site(1), site(2)] {
        assert_eq!(
            log_tags(&out.trace, p),
            vec!["force:prepared", "write:part-commit", "write:part-end"]
        );
    }
    assert_eq!(sent_count(&out.trace, "ack"), 0, "PrC commits need no acks");
}

#[test]
fn e3_fig4b_prc_abort_schedule() {
    let s = one_txn_abort(
        CoordinatorKind::Single(ProtocolKind::PrC),
        &[ProtocolKind::PrC; 3],
        site(3),
    );
    let out = run_scenario(&s);
    assert_eq!(out.decided[&T], Outcome::Abort);
    assert_fully_correct(&out);

    // No abort decision record — only the initiation record plus the end
    // record after the acks.
    assert_eq!(
        log_tags(&out.trace, coord()),
        vec!["force:initiation", "write:end"]
    );
    for p in [site(1), site(2)] {
        assert_eq!(
            log_tags(&out.trace, p),
            vec!["force:prepared", "force:part-abort", "write:part-end"]
        );
    }
    assert_eq!(
        ack_senders(&out.trace),
        vec![site(1), site(2)],
        "aborts are acknowledged"
    );
}

// ---------------------------------------------------------------------
// Figure 1: PrAny (E4)
// ---------------------------------------------------------------------

#[test]
fn e4_fig1a_prany_commit_schedule() {
    let s = one_txn(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &[ProtocolKind::PrA, ProtocolKind::PrC],
    );
    let out = run_scenario(&s);
    assert_eq!(out.decided[&T], Outcome::Commit);
    assert_fully_correct(&out);

    assert_eq!(
        log_tags(&out.trace, coord()),
        vec!["force:initiation", "force:commit", "write:end"]
    );
    // PrA participant: forced commit record + ack (left lane of Fig. 1a).
    assert_eq!(
        log_tags(&out.trace, site(1)),
        vec!["force:prepared", "force:part-commit", "write:part-end"]
    );
    // PrC participant: non-forced commit record, no ack (right lane).
    assert_eq!(
        log_tags(&out.trace, site(2)),
        vec!["force:prepared", "write:part-commit", "write:part-end"]
    );
    assert_eq!(
        ack_senders(&out.trace),
        vec![site(1)],
        "only the PrA participant acks"
    );
}

#[test]
fn e4_fig1b_prany_abort_schedule() {
    // A third (PrN) participant votes No so that the PrA and PrC
    // participants are both prepared when the abort arrives, exactly as
    // in Figure 1(b).
    let s = one_txn_abort(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &[ProtocolKind::PrA, ProtocolKind::PrC, ProtocolKind::PrN],
        site(3),
    );
    let out = run_scenario(&s);
    assert_eq!(out.decided[&T], Outcome::Abort);
    assert_fully_correct(&out);

    // No decision record for aborts.
    assert_eq!(
        log_tags(&out.trace, coord()),
        vec!["force:initiation", "write:end"]
    );
    // PrA participant: non-forced abort record, no ack (left lane of
    // Fig. 1b).
    assert_eq!(
        log_tags(&out.trace, site(1)),
        vec!["force:prepared", "write:part-abort", "write:part-end"]
    );
    // PrC participant: forced abort record + ack (right lane).
    assert_eq!(
        log_tags(&out.trace, site(2)),
        vec!["force:prepared", "force:part-abort", "write:part-end"]
    );
    assert_eq!(
        ack_senders(&out.trace),
        vec![site(2)],
        "only the PrC participant acks"
    );
}

#[test]
fn e4_initiation_record_lists_participant_protocols() {
    // §4.1: "The initiation record also includes the protocol used by
    // each participant."
    let s = one_txn(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &[ProtocolKind::PrA, ProtocolKind::PrC],
    );
    let out = run_scenario(&s);
    let initiation = out
        .trace
        .notes_of(coord(), "force:initiation")
        .next()
        .expect("initiation note present");
    // The note detail carries the txn; the protocols were checked in the
    // engine unit tests — here we assert the record was the *first*
    // thing the coordinator did.
    let first_tag = &out.trace.tag_schedule(coord())[0];
    assert_eq!(first_tag, "force:initiation");
    let _ = initiation;
}
