//! End-to-end tests of the threaded actor runtime: real threads, real
//! file-backed WALs, real (wall-clock) timeouts.

use presumed_any::prelude::*;
use std::time::Duration;

fn mixed_cluster() -> ClusterConfig {
    ClusterConfig::new(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &[ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC],
    )
}

#[test]
fn pipeline_of_transactions_commits_atomically() {
    let mut cluster = Cluster::spawn(&mixed_cluster());
    let parts = cluster.participants();
    for i in 0..10u32 {
        let txn = cluster.next_txn();
        for &p in &parts {
            cluster.apply(
                p,
                txn,
                format!("key-{i}").as_bytes(),
                format!("val-{i}").as_bytes(),
            );
        }
        let outcome = cluster.commit(txn, &parts).expect("decision");
        assert_eq!(outcome, Outcome::Commit, "txn {i}");
    }
    cluster.settle(Duration::from_millis(300));
    let report = cluster.shutdown();
    assert!(check_atomicity(&report.history).is_empty());
    assert_eq!(report.coordinator_table_size, 0);
    // All ten keys at every participant.
    for s in report
        .sites
        .iter()
        .filter(|s| s.site != Cluster::COORDINATOR)
    {
        assert_eq!(s.committed.len(), 10, "{}", s.site);
    }
}

#[test]
fn coordinator_crash_mid_flight_converges() {
    let mut cluster = Cluster::spawn(&mixed_cluster());
    let parts = cluster.participants();
    let txn = cluster.next_txn();
    for &p in &parts {
        cluster.apply(p, txn, b"k", b"v");
    }
    cluster.commit_async(txn, &parts);
    cluster.crash(Cluster::COORDINATOR, Duration::from_millis(200));
    cluster.settle(Duration::from_secs(3));
    let report = cluster.shutdown();
    let v = check_atomicity(&report.history);
    assert!(v.is_empty(), "{v:?}");
    // All participant data states agree.
    let states: Vec<_> = report
        .sites
        .iter()
        .filter(|s| s.site != Cluster::COORDINATOR)
        .map(|s| s.committed.clone())
        .collect();
    assert!(states.windows(2).all(|w| w[0] == w[1]), "{states:?}");
    assert_eq!(
        report.coordinator_table_size, 0,
        "recovered coordinator forgot everything"
    );
}

#[test]
fn lock_conflicts_surface_as_no_votes() {
    let mut cluster = Cluster::spawn(&mixed_cluster());
    let parts = cluster.participants();
    // T1 writes a key at participant 1 and stalls (never committed yet);
    // T2 touches the same key there → lock conflict → No vote → abort.
    let t1 = cluster.next_txn();
    cluster.apply(parts[0], t1, b"hot", b"t1");
    let t2 = cluster.next_txn();
    cluster.apply(parts[0], t2, b"hot", b"t2");
    cluster.apply(parts[1], t2, b"cold", b"t2");
    let outcome2 = cluster.commit(t2, &parts).expect("decision");
    assert_eq!(
        outcome2,
        Outcome::Abort,
        "conflicting transaction must abort"
    );
    // T1 can still commit afterwards.
    let outcome1 = cluster.commit(t1, &parts).expect("decision");
    assert_eq!(outcome1, Outcome::Commit);
    cluster.settle(Duration::from_millis(300));
    let report = cluster.shutdown();
    assert!(check_atomicity(&report.history).is_empty());
    for s in report.sites.iter().filter(|s| s.site == parts[0]) {
        assert_eq!(
            s.committed.get(b"hot".as_slice()).map(Vec::as_slice),
            Some(b"t1".as_slice())
        );
    }
}

#[test]
fn u2pc_violation_reproduces_on_real_threads() {
    // Theorem 1 Part I on the wall clock: U2PC/PrN coordinator, PrA+PrC
    // participants, PrC participant crashes through the decision window.
    let config = ClusterConfig::new(
        CoordinatorKind::U2pc(ProtocolKind::PrN),
        &[ProtocolKind::PrA, ProtocolKind::PrC],
    );
    let mut cluster = Cluster::spawn(&config);
    let parts = cluster.participants();
    let txn = cluster.next_txn();
    for &p in &parts {
        cluster.apply(p, txn, b"k", b"v");
    }
    // Crash the PrC participant immediately; the prepare may or may not
    // land first, so retry the experiment a few times — the window is
    // real time now.
    let mut violated = false;
    for attempt in 0..6 {
        let txn = if attempt == 0 {
            txn
        } else {
            let t = cluster.next_txn();
            for &p in &parts {
                cluster.apply(p, t, b"k2", b"v2");
            }
            t
        };
        cluster.commit_async(txn, &parts);
        std::thread::sleep(Duration::from_millis(2));
        cluster.crash(parts[1], Duration::from_millis(600));
        cluster.settle(Duration::from_millis(1_800));
        // Check the shared history so far via a throwaway clone at
        // shutdown… we cannot shut down mid-loop, so only test at end.
        let _ = txn;
        if attempt == 5 {
            break;
        }
    }
    let report = cluster.shutdown();
    if !check_atomicity(&report.history).is_empty() {
        violated = true;
    }
    // The violation is timing-dependent on real threads; the window is
    // wide (the PrC participant's commit record is non-forced, so any
    // crash before its next force loses it), and across 6 attempts it
    // fires with overwhelming probability. If this ever flakes, the deterministic reproductions
    // in theorem1.rs and the model checker remain authoritative.
    assert!(violated, "no violation observed across attempts");
}

#[test]
fn traced_cluster_emits_protocol_events() {
    use std::sync::Arc;

    let sink = Arc::new(VecSink::new());
    let mut cluster =
        Cluster::spawn_with_sink(&mixed_cluster(), Arc::clone(&sink) as Arc<dyn TraceSink>);
    let parts = cluster.participants();
    let txn = cluster.next_txn();
    for &p in &parts {
        cluster.apply(p, txn, b"k", b"v");
    }
    let outcome = cluster.commit(txn, &parts).expect("decision");
    assert_eq!(outcome, Outcome::Commit);
    cluster.settle(Duration::from_millis(300));
    let report = cluster.shutdown();
    assert!(check_atomicity(&report.history).is_empty());

    let events = sink.take();
    // Every voting participant casts exactly one vote, and exactly one
    // commit decision is reached (at the coordinator).
    let votes = events
        .iter()
        .filter(|e| matches!(e, ProtocolEvent::VoteCast { .. }))
        .count();
    assert_eq!(votes, parts.len(), "{events:#?}");
    let decisions: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            ProtocolEvent::DecisionReached { proto, outcome, .. } => Some((proto, outcome)),
            _ => None,
        })
        .collect();
    assert_eq!(decisions.len(), 1, "{events:#?}");
    assert_eq!(*decisions[0].0, ProtoLabel::PrAny);
    // The wire is visible: sends and receives both appear, and
    // something was forced to stable storage on the participant side.
    assert!(events
        .iter()
        .any(|e| matches!(e, ProtocolEvent::MsgSend { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, ProtocolEvent::MsgRecv { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, ProtocolEvent::ForceWrite { .. })));
}
