//! Experiment E5 — Theorem 1: "It is impossible to ensure global
//! atomicity of distributed transactions executed at both PrA and PrC
//! participants with a coordinator using U2PC."
//!
//! Each part of the paper's proof is staged as a concrete failure
//! scenario in the deterministic simulator; the atomicity and
//! safe-state checkers then *detect* the violation the proof predicts.
//! The same scenarios run under PrAny as a control and are clean.
//!
//! Timeline used throughout (reliable 200us links, txn starts at 1ms):
//! prepares arrive ≈1.2ms, votes ≈1.4ms, the decision ≈1.6ms. Crashing
//! a participant at 1.5ms therefore catches it *after voting yes, before
//! receiving the decision* — exactly the window of the proof.

mod common;

use common::*;
use presumed_any::prelude::*;
use presumed_any::types::Payload;

const T: TxnId = TxnId(1);

/// Crash the given participant through the decision window, recovering
/// much later so its recovery inquiry hits a coordinator that has long
/// forgotten the transaction.
fn crash_through_decision(s: &mut Scenario, victim: SiteId) {
    s.failures = FailureSchedule::single(
        victim,
        SimTime::from_micros(1_500),
        SimTime::from_millis(400),
    );
}

/// The wrong-presumption answer the scenario should produce, as seen by
/// the enforcement map.
fn enforcement(out: &ScenarioOutcome, site: SiteId) -> Option<Outcome> {
    out.enforced.get(&(site, T)).copied()
}

#[test]
fn part_i_prn_coordinator_commits_then_presumes_abort() {
    // PrA at site 1, PrC at site 2; U2PC over a PrN base.
    let mut s = one_txn(
        CoordinatorKind::U2pc(ProtocolKind::PrN),
        &[ProtocolKind::PrA, ProtocolKind::PrC],
    );
    crash_through_decision(&mut s, site(2));
    let out = run_scenario(&s);

    assert_eq!(out.decided[&T], Outcome::Commit);
    // The PrA participant committed; the PrC participant, answered by
    // the PrN hidden presumption after the coordinator forgot, aborted.
    assert_eq!(enforcement(&out, site(1)), Some(Outcome::Commit));
    assert_eq!(enforcement(&out, site(2)), Some(Outcome::Abort));

    let violations = check_atomicity(&out.history);
    assert!(!violations.is_empty(), "Theorem 1 Part I must manifest");
    // Definition 2 is violated too: a post-forget inquiry was answered
    // against the decided outcome.
    let unsafe_states = check_all_safe_states(&out.history, coord());
    assert!(!unsafe_states.is_empty());
}

#[test]
fn part_ii_pra_coordinator_commits_then_presumes_abort() {
    let mut s = one_txn(
        CoordinatorKind::U2pc(ProtocolKind::PrA),
        &[ProtocolKind::PrA, ProtocolKind::PrC],
    );
    crash_through_decision(&mut s, site(2));
    let out = run_scenario(&s);

    assert_eq!(out.decided[&T], Outcome::Commit);
    assert_eq!(enforcement(&out, site(1)), Some(Outcome::Commit));
    assert_eq!(enforcement(&out, site(2)), Some(Outcome::Abort));
    assert!(
        !check_atomicity(&out.history).is_empty(),
        "Theorem 1 Part II must manifest"
    );
}

#[test]
fn part_iii_prc_coordinator_aborts_then_presumes_commit() {
    // The paper's §2 motivating example: the coordinator (PrC base)
    // decides abort with both participants prepared; the PrA participant
    // crashes before the abort reaches it; the PrC participant's ack
    // lets the coordinator forget; the PrA participant's inquiry is
    // answered COMMIT by the PrC presumption.
    let mut s = one_txn(
        CoordinatorKind::U2pc(ProtocolKind::PrC),
        &[ProtocolKind::PrA, ProtocolKind::PrC],
    );
    // Both participants force their prepared records and send their
    // votes at ≈1.2ms; the client abort lands at 1.25ms, while the votes
    // are still in flight — so the abort is decided with both prepared.
    s.txns[0].abort_at = Some(SimTime::from_micros(1_250));
    // The PrA participant crashes at 1.3ms, before the abort (sent
    // 1.25ms, due 1.45ms) reaches it.
    s.failures = FailureSchedule::single(
        site(1),
        SimTime::from_micros(1_300),
        SimTime::from_millis(400),
    );
    let out = run_scenario(&s);

    assert_eq!(out.decided[&T], Outcome::Abort);
    assert_eq!(
        enforcement(&out, site(2)),
        Some(Outcome::Abort),
        "PrC participant aborted"
    );
    assert_eq!(
        enforcement(&out, site(1)),
        Some(Outcome::Commit),
        "PrA participant was told to commit by the wrong presumption"
    );
    assert!(
        !check_atomicity(&out.history).is_empty(),
        "Theorem 1 Part III must manifest"
    );
}

#[test]
fn the_wrong_answer_is_a_presumption_answer() {
    // The violation mechanism is precisely a presumption-based response
    // to a post-forget inquiry (not a protocol-table lookup).
    let mut s = one_txn(
        CoordinatorKind::U2pc(ProtocolKind::PrN),
        &[ProtocolKind::PrA, ProtocolKind::PrC],
    );
    crash_through_decision(&mut s, site(2));
    let out = run_scenario(&s);
    let bad_response = out.history.events().iter().find(|e| {
        matches!(
            e,
            ActaEvent::Respond {
                outcome: Outcome::Abort,
                by_presumption: true,
                ..
            }
        )
    });
    assert!(bad_response.is_some(), "{}", out.history);
}

#[test]
fn control_prany_survives_every_part() {
    // Identical failure scenarios, PrAny coordinator: all clean.
    for (victim, abort_at, crash_us) in [
        (site(2), None, 1_500),
        (site(1), Some(SimTime::from_micros(1_250)), 1_300),
    ] {
        let mut s = one_txn(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        s.txns[0].abort_at = abort_at;
        s.failures = FailureSchedule::single(
            victim,
            SimTime::from_micros(crash_us),
            SimTime::from_millis(400),
        );
        let out = run_scenario(&s);
        assert_fully_correct(&out);
        // Every participant enforced the decided outcome.
        let decided = out.decided[&T];
        for p in [site(1), site(2)] {
            assert_eq!(
                enforcement(&out, p),
                Some(decided),
                "{p} under victim {victim}"
            );
        }
    }
}

#[test]
fn violation_rate_sweep_u2pc_vs_prany() {
    // Sweep the crash point across the decision window for every U2PC
    // base: U2PC violates for some crash points; PrAny for none.
    let mut u2pc_violations = 0u32;
    let mut runs = 0u32;
    for base in [ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC] {
        for crash_us in (1_200..2_200).step_by(100) {
            for victim in [site(1), site(2)] {
                runs += 1;
                let mut s = one_txn(
                    CoordinatorKind::U2pc(base),
                    &[ProtocolKind::PrA, ProtocolKind::PrC],
                );
                if base == ProtocolKind::PrC {
                    s.txns[0].abort_at = Some(SimTime::from_micros(1_250));
                }
                s.failures = FailureSchedule::single(
                    victim,
                    SimTime::from_micros(crash_us),
                    SimTime::from_millis(400),
                );
                let out = run_scenario(&s);
                if !check_atomicity(&out.history).is_empty() {
                    u2pc_violations += 1;
                }

                // Control: PrAny, same crash.
                let mut s = one_txn(
                    CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
                    &[ProtocolKind::PrA, ProtocolKind::PrC],
                );
                if base == ProtocolKind::PrC {
                    s.txns[0].abort_at = Some(SimTime::from_micros(1_250));
                }
                s.failures = FailureSchedule::single(
                    victim,
                    SimTime::from_micros(crash_us),
                    SimTime::from_millis(400),
                );
                let out = run_scenario(&s);
                assert!(
                    check_atomicity(&out.history).is_empty(),
                    "PrAny violated at base={base} crash={crash_us}us victim={victim}"
                );
            }
        }
    }
    assert!(
        u2pc_violations > 0,
        "sweep must reproduce Theorem 1 ({runs} runs)"
    );
}

#[test]
fn inquiry_carries_the_inquirers_protocol() {
    // The PrAny fix depends on the inquiry identifying the inquirer's
    // protocol (§4.2). Verify the wire messages carry it.
    let mut s = one_txn(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &[ProtocolKind::PrA, ProtocolKind::PrC],
    );
    crash_through_decision(&mut s, site(2));
    let out = run_scenario(&s);
    let inquiry = out.trace.entries().iter().find_map(|e| match &e.kind {
        presumed_any::sim::TraceKind::Sent(m) => match m.payload {
            Payload::Inquiry { protocol, .. } if m.from == site(2) => Some(protocol),
            _ => None,
        },
        _ => None,
    });
    assert_eq!(inquiry, Some(ProtocolKind::PrC));
}
