//! Golden-trace test for the observability layer's figure rendering.
//!
//! The five paper figures under `results/figures/` are generated from
//! live simulator runs through the `acp-obs` event stream. This test
//! pins them three ways:
//!
//! 1. **Run-to-run determinism** — two consecutive regenerations are
//!    byte-identical.
//! 2. **Thread-count independence** — regenerating at 1, 4 and 7
//!    worker threads produces the same bytes (the PR 1 determinism
//!    guarantee, extended to the event stream: `parallel_map` places
//!    results by index, and every event is emitted inside one
//!    deterministic scenario run).
//! 3. **Checked-in copies are current** — every generated artifact
//!    equals the file committed under `results/figures/`, so the
//!    rendered figures in the repo can never drift from the code
//!    (`scripts/verify.sh` enforces the same property in CI).

use acp_bench::figures::render_paper_figures;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn figures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results/figures")
}

#[test]
fn figure_artifacts_are_byte_stable_across_runs_and_thread_counts() {
    let baseline = render_paper_figures(1).files;
    assert!(!baseline.is_empty());
    for threads in [1, 4, 7] {
        let again = render_paper_figures(threads).files;
        assert_eq!(
            baseline.keys().collect::<Vec<_>>(),
            again.keys().collect::<Vec<_>>(),
            "artifact set changed at {threads} threads"
        );
        for (name, contents) in &baseline {
            assert_eq!(
                contents, &again[name],
                "{name} not byte-stable at {threads} threads"
            );
        }
    }
}

#[test]
fn checked_in_figures_match_regeneration() {
    let generated = render_paper_figures(1).files;
    let dir = figures_dir();
    let mut on_disk: BTreeMap<String, String> = BTreeMap::new();
    for entry in std::fs::read_dir(&dir).expect("results/figures exists — run exp_figures") {
        let entry = entry.expect("dir entry");
        on_disk.insert(
            entry.file_name().to_string_lossy().into_owned(),
            std::fs::read_to_string(entry.path()).expect("read figure"),
        );
    }
    assert_eq!(
        generated.keys().collect::<Vec<_>>(),
        on_disk.keys().collect::<Vec<_>>(),
        "file set differs — rerun `cargo run -p acp-bench --bin exp_figures`"
    );
    for (name, contents) in &generated {
        assert_eq!(
            contents, &on_disk[name],
            "{name} is stale — rerun `cargo run -p acp-bench --bin exp_figures`"
        );
    }
}

#[test]
fn rendered_figures_contain_the_papers_signature_schedules() {
    let files = render_paper_figures(1).files;
    // Figure 3 (PrA): the commit panel forces the decision; the abort
    // panel relies on the presumption — participants write part-abort
    // lazily and the coordinator logs nothing for the abort.
    let f3 = &files["fig3_pra.txt"];
    assert!(f3.contains("force:commit"), "{f3}");
    assert!(f3.contains("write:part-abort"), "{f3}");
    assert!(!f3.contains("force:part-abort"), "{f3}");
    // Figure 4 (PrC): the initiation record is forced before voting.
    let f4 = &files["fig4_prc.txt"];
    assert!(f4.contains("force:initiation"), "{f4}");
    // Figure 1 (PrAny): the PrA participant acks commit (forced
    // part-commit), the PrC one doesn't (lazy part-commit).
    let f1 = &files["fig1_prany.txt"];
    assert!(f1.contains("force:part-commit"), "{f1}");
    assert!(f1.contains("write:part-commit"), "{f1}");
    // Figure 5: the taxonomy tree places this paper's protocol.
    let f5 = &files["fig5_taxonomy.txt"];
    assert!(f5.contains("Presumed Any"), "{f5}");
    assert!(f5.contains("integrate incompatible ACPs"), "{f5}");
}
