//! End-to-end tests of the sharded multi-reactor runtime (experiment
//! E14): N event-loop threads over the same sans-IO engines, with
//! 1-vs-N determinism, trace parity, cost parity, crash semantics and
//! fsync-domain coalescing checks.

use presumed_any::net::{NetDelays, SnapshotCadence};
use presumed_any::obs::{event_to_json, parse_flat_json, Counter, JsonValue};
use presumed_any::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn mixed_multi(reactors: usize) -> MultiReactorConfig {
    MultiReactorConfig::new(
        ReactorConfig::new(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC],
        ),
        reactors,
    )
}

/// Delays so large that any timer firing in a clean run is a bug; the
/// protocol must make progress purely on message flow.
fn glacial() -> NetDelays {
    NetDelays {
        vote_timeout: Duration::from_secs(60),
        ack_resend: Duration::from_secs(60),
        inquiry_retry: Duration::from_secs(60),
        apply_retry: Duration::from_secs(60),
        paxos_completion: Duration::from_secs(60),
    }
}

/// Per-site event lines with the wall-clock fields masked out (same
/// projection as the single-reactor parity tests: per-site
/// subsequences are totally ordered; the cross-site interleaving is
/// scheduling noise).
fn masked_site_traces(events: &[ProtocolEvent]) -> BTreeMap<u64, Vec<String>> {
    let mut by_site: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for ev in events {
        let mut map = parse_flat_json(&event_to_json(ev)).expect("trace dialect");
        map.remove("at_us");
        map.remove("since_decision_us");
        let site = map["site"].as_u64().expect("site field");
        let line = map
            .iter()
            .map(|(k, v)| match v {
                JsonValue::Num(n) => format!("\"{k}\":{n}"),
                JsonValue::Str(s) => format!("\"{k}\":{s:?}"),
            })
            .collect::<Vec<_>>()
            .join(",");
        by_site.entry(site).or_default().push(format!("{{{line}}}"));
    }
    by_site
}

#[test]
fn multi_reactor_commit_applies_data_at_all_participants() {
    let mut cluster = MultiReactorCluster::spawn(&mixed_multi(3));
    assert_eq!(cluster.reactors(), 3);
    let parts = cluster.participants();
    let txn = cluster.next_txn();
    for &p in &parts {
        cluster.apply(p, txn, b"balance", b"100");
    }
    assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
    cluster.settle(Duration::from_millis(300));
    let report = cluster.shutdown();
    assert!(check_atomicity(&report.cluster.history).is_empty());
    for s in &report.cluster.sites {
        if s.site != MultiReactorCluster::COORDINATOR {
            assert_eq!(
                s.committed.get(b"balance".as_slice()).map(Vec::as_slice),
                Some(b"100".as_slice()),
                "site {}",
                s.site
            );
        }
    }
    assert_eq!(report.cluster.coordinator_table_size, 0);
    assert_eq!(report.per_shard.len(), 3);
}

// ---------------------------------------------------------------------------
// Acceptance: byte-identical single-transaction traces per shard

/// One clean transaction over a single participant must produce the
/// same per-site trace, byte for byte modulo timestamps, on the
/// single-reactor backend and on the multi-reactor backend at
/// N ∈ {1, 2, 4} — the partition moves work across threads but may
/// not change what any site does.
#[test]
fn single_txn_traces_byte_identical_at_any_reactor_count() {
    let kind = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
    let protos = [ProtocolKind::PrA];

    let baseline = {
        let sink = Arc::new(VecSink::new());
        let mut cluster = ReactorCluster::spawn_with_sink(
            &ReactorConfig::new(kind, &protos),
            Arc::clone(&sink) as _,
        );
        let txn = cluster.next_txn();
        let parts = cluster.participants();
        cluster.apply(parts[0], txn, b"k", b"v");
        assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
        cluster.settle(Duration::from_millis(300));
        let _ = cluster.shutdown();
        masked_site_traces(&sink.snapshot())
    };

    for n in [1usize, 2, 4] {
        let sink = Arc::new(VecSink::new());
        let config = MultiReactorConfig::new(ReactorConfig::new(kind, &protos), n);
        let mut cluster = MultiReactorCluster::spawn_with_sink(&config, Arc::clone(&sink) as _);
        let txn = cluster.next_txn();
        let parts = cluster.participants();
        cluster.apply(parts[0], txn, b"k", b"v");
        assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
        cluster.settle(Duration::from_millis(300));
        let _ = cluster.shutdown();
        let traces = masked_site_traces(&sink.snapshot());
        assert_eq!(
            baseline.keys().collect::<Vec<_>>(),
            traces.keys().collect::<Vec<_>>(),
            "N={n}: same sites traced"
        );
        for (site, lines) in &baseline {
            assert_eq!(
                lines, &traces[site],
                "N={n}, site {site}: trace diverged from single-reactor backend"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Acceptance: deterministic outcomes and identical cost counters 1 vs N

/// The same deterministic transaction set — disjoint keys, a fixed
/// subset forced to vote No — must produce identical per-transaction
/// outcomes and identical aggregate protocol cost counters on 1, 2 and
/// 4 reactors. Scheduling-dependent amortization counters (batch
/// composition, GC run granularity, wall-clock latency) are excluded;
/// every protocol-action counter must match exactly.
#[test]
fn stress_outcomes_and_cost_counters_identical_1_vs_n_reactors() {
    const TXNS: u64 = 48;
    let run = |n: usize| {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = Arc::new(CountingSink::new(Arc::clone(&registry)));
        let mut config = mixed_multi(n);
        config.reactor.cluster.delays = glacial();
        config.reactor.cluster.group_commit = true;
        let mut cluster = MultiReactorCluster::spawn_with_sink(&config, sink as _);
        let parts = cluster.participants();
        let mut pending = Vec::new();
        for i in 0..TXNS {
            let txn = cluster.next_txn();
            for &p in &parts {
                cluster.apply(p, txn, format!("key-{i}").as_bytes(), b"v");
            }
            if i % 7 == 3 {
                cluster.set_intent(parts[0], txn, Vote::No);
            }
            pending.push((txn, cluster.commit_async(txn, &parts)));
        }
        let outcomes: Vec<(TxnId, Outcome)> = pending
            .into_iter()
            .map(|(txn, rx)| {
                (
                    txn,
                    rx.recv_timeout(Duration::from_secs(30)).expect("decision"),
                )
            })
            .collect();
        cluster.settle(Duration::from_millis(500));
        let report = cluster.shutdown();
        assert!(check_atomicity(&report.cluster.history).is_empty());
        assert_eq!(
            report.cluster.coordinator_table_size, 0,
            "N={n}: records left unreclaimed"
        );
        (outcomes, registry, report)
    };

    let (outcomes_1, registry_1, _) = run(1);
    assert_eq!(
        outcomes_1.iter().filter(|(_, o)| *o == Outcome::Abort).count(),
        (0..TXNS).filter(|i| i % 7 == 3).count(),
        "forced aborts present in the baseline"
    );
    for n in [2usize, 4] {
        let (outcomes_n, registry_n, report) = run(n);
        assert_eq!(
            outcomes_1, outcomes_n,
            "N={n}: per-transaction outcomes diverged from single reactor"
        );
        assert!(
            report.stats.mailbox_sends > 0,
            "N={n}: partition never exercised a cross-shard mailbox"
        );
        for proto in ProtoLabel::ALL {
            for counter in Counter::ALL {
                match counter {
                    // Wall-clock and amortization accounting is
                    // scheduling-dependent by nature: batch composition
                    // and GC-run granularity change with the partition
                    // while the underlying protocol actions do not.
                    Counter::GcLatencyUsSum
                    | Counter::GcLatencySamples
                    | Counter::GcRuns
                    | Counter::BatchedForces
                    | Counter::BatchOccupancy
                    | Counter::TablePeakShardOccupancy => continue,
                    _ => {}
                }
                assert_eq!(
                    registry_1.get(proto, counter),
                    registry_n.get(proto, counter),
                    "N={n}: {proto:?}/{counter:?} diverged from single reactor"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Crash semantics across the partition

/// A participant crash is owned by exactly one shard: its staged
/// records and withheld sends drop together there, and the cluster
/// still reaches an atomic outcome.
#[test]
fn participant_crash_on_its_owning_shard_still_atomic() {
    let mut cluster = MultiReactorCluster::spawn(&mixed_multi(2));
    let parts = cluster.participants();
    let txn = cluster.next_txn();
    for &p in &parts {
        cluster.apply(p, txn, b"x", b"1");
    }
    let _ = cluster.commit_async(txn, &parts);
    // Site 2 lives on shard (2 − 1) mod 2 = 1; the coordinator slice
    // for txn 1 lives on shard 1 mod 2 = 1 as well — the crash and the
    // decision race on one shard while shard 0's sites keep running.
    cluster.crash(parts[1], Duration::from_millis(300));
    cluster.settle(Duration::from_millis(2_500));
    let report = cluster.shutdown();
    let v = check_atomicity(&report.cluster.history);
    assert!(v.is_empty(), "{v:?}");
    let datasets: Vec<_> = report
        .cluster
        .sites
        .iter()
        .filter(|s| s.site != MultiReactorCluster::COORDINATOR)
        .map(|s| s.committed.clone())
        .collect();
    for d in &datasets[1..] {
        assert_eq!(&datasets[0], d, "data diverged");
    }
}

/// Crashing the coordinator crashes every slice of it, but the N
/// slices are one logical site: the trace must record exactly one
/// crash and one recovery, and the cluster must converge.
#[test]
fn coordinator_crash_broadcasts_to_all_slices_as_one_logical_crash() {
    let sink = Arc::new(VecSink::new());
    let mut cluster = MultiReactorCluster::spawn_with_sink(&mixed_multi(2), Arc::clone(&sink) as _);
    let parts = cluster.participants();
    let txn = cluster.next_txn();
    for &p in &parts {
        cluster.apply(p, txn, b"k", b"v");
    }
    let _ = cluster.commit_async(txn, &parts);
    cluster.crash(MultiReactorCluster::COORDINATOR, Duration::from_millis(200));
    cluster.settle(Duration::from_secs(3));
    let report = cluster.shutdown();
    let v = check_atomicity(&report.cluster.history);
    assert!(v.is_empty(), "{v:?}");
    let events = sink.snapshot();
    let crashes = events
        .iter()
        .filter(|e| matches!(e, ProtocolEvent::CrashObserved { .. }))
        .count();
    let restarts = events
        .iter()
        .filter(|e| {
            matches!(e, ProtocolEvent::RecoveryStep { detail, .. }
                if detail.starts_with("site back up"))
        })
        .count();
    assert_eq!(crashes, 1, "N slices crashed as one logical site");
    assert_eq!(restarts, 1, "N slices recovered as one logical site");
}

// ---------------------------------------------------------------------------
// Per-shard fsync domains

/// Under concurrent load with group commit on, each shard is one
/// coalesced force domain: per turn one member leads the round and the
/// rest follow, so rounds stay far below the records they flush and
/// physical syncs stay below logical forces.
#[test]
fn each_shard_is_one_coalesced_fsync_domain() {
    let mut config = mixed_multi(2);
    config.reactor.cluster.delays = glacial();
    config.reactor.cluster.group_commit = true;
    let mut cluster = MultiReactorCluster::spawn(&config);
    let parts = cluster.participants();
    const N: usize = 128;
    let mut pending = Vec::with_capacity(N);
    for i in 0..N {
        let txn = cluster.next_txn();
        for &p in &parts {
            cluster.apply(p, txn, format!("key-{i}").as_bytes(), b"v");
        }
        pending.push((txn, cluster.commit_async(txn, &parts)));
    }
    for (txn, rx) in pending {
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(30)).ok(),
            Some(Outcome::Commit),
            "txn {txn}"
        );
    }
    cluster.settle(Duration::from_millis(300));
    let report = cluster.shutdown();
    assert!(check_atomicity(&report.cluster.history).is_empty());
    assert_eq!(report.stats.decisions_delivered, N as u64);
    assert!(
        report.max_inflight > 16,
        "expected genuinely concurrent transactions, peak in-flight was {}",
        report.max_inflight
    );
    for s in &report.per_shard {
        assert!(
            s.fsync.rounds > 0,
            "shard {}: no force rounds despite committing load",
            s.shard
        );
        assert!(
            s.fsync.records >= s.fsync.rounds,
            "shard {}: {:?}",
            s.shard,
            s.fsync
        );
    }
    // Coalescing proof: members joined rounds another member led, and
    // round count is well below the records flushed through them.
    assert!(
        report.fsync.follower_flushes > 0,
        "no member ever joined a round it did not lead: {:?}",
        report.fsync
    );
    assert!(
        report.fsync.rounds < report.fsync.records,
        "rounds should amortize records: {:?}",
        report.fsync
    );
    assert!(
        report.cluster.physical_syncs < report.cluster.logical_forces,
        "batching should amortize forces: {} physical vs {} logical",
        report.cluster.physical_syncs,
        report.cluster.logical_forces
    );
}

// ---------------------------------------------------------------------------
// Observability: merged timelines and cadence composition

/// Per-reactor metrics timelines merge into one deterministic
/// sequence, tagged by shard, time-ordered within each shard.
#[test]
fn observed_cluster_merges_per_reactor_timelines() {
    let mut config = mixed_multi(2);
    config.reactor.cluster.delays = glacial();
    config.reactor.snapshot_every_commits = 1;
    let mut cluster = MultiReactorCluster::spawn_observed(&config, None);
    let parts = cluster.participants();
    const TXNS: u64 = 6;
    for i in 0..TXNS {
        let txn = cluster.next_txn();
        for &p in &parts {
            cluster.apply(p, txn, format!("k{i}").as_bytes(), b"v");
        }
        assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
    }
    cluster.settle(Duration::from_millis(200));
    let report = cluster.shutdown();
    assert_eq!(report.registries.len(), 2);
    assert!(
        report.timeline.len() >= 2,
        "expected in-run snapshots from the shards, got {}",
        report.timeline.len()
    );
    for (shard, _) in &report.timeline {
        assert!(*shard < 2, "shard tag out of range");
    }
    let mut last_at: BTreeMap<usize, u64> = BTreeMap::new();
    for (shard, snap) in &report.timeline {
        if let Some(prev) = last_at.insert(*shard, snap.at_us) {
            assert!(prev <= snap.at_us, "shard {shard}: time ran backwards");
        }
    }
    // Cluster-wide decision total is the per-cell sum over shard
    // registries — and every decision was snapshotted somewhere.
    let decisions: u64 = report
        .registries
        .iter()
        .map(|r| r.snapshot(0).total(Counter::DecisionsReached))
        .sum();
    assert_eq!(decisions, TXNS);
}

/// Satellite pin: the two snapshot triggers compose deterministically.
/// Tick trigger first, both firing coalesce into one snapshot, and the
/// pending-commit counter resets only when the commit trigger itself
/// fired — M delivered commits always produce ⌊M / every_commits⌋
/// commit firings no matter how tick snapshots interleave.
#[test]
fn snapshot_cadence_composes_tick_and_commit_triggers() {
    // Both triggers fire on the same tick: exactly one snapshot, and
    // the commit counter is consumed.
    let mut c = SnapshotCadence::new(2, 3);
    c.on_commits(3);
    assert!(c.on_tick(2), "tick multiple + commit threshold → snapshot");
    assert!(!c.on_tick(3), "both triggers consumed");

    // A tick-triggered snapshot must NOT absorb pending commits: the
    // commit cadence stays independent of the tick cadence.
    c.on_commits(2);
    assert!(c.on_tick(4), "tick trigger fires with 2 commits pending");
    c.on_commits(1);
    assert!(c.on_tick(5), "3rd commit still fires the commit trigger");
    assert!(!c.on_tick(7), "commit counter was reset by its own firing");

    // Disabled triggers (period 0) never fire.
    let mut off = SnapshotCadence::new(0, 0);
    off.on_commits(1_000);
    assert!(!off.on_tick(1_000));

    // Commit-only cadence: M commits → ⌊M / every⌋ firings regardless
    // of which ticks they land on.
    let mut commit_only = SnapshotCadence::new(0, 5);
    let mut fired = 0;
    for tick in 1..=100u64 {
        commit_only.on_commits(1);
        if commit_only.on_tick(tick) {
            fired += 1;
        }
    }
    assert_eq!(fired, 100 / 5);
}
