//! Crash-point sweeps: §4.2 recovery must preserve both correctness
//! criteria no matter where a failure lands in the protocol.
//!
//! The sweep moves a single crash through the entire commit window in
//! 50us steps, for each role (coordinator, PrA participant, PrC
//! participant, PrN participant), for both outcomes, and for double
//! faults. Every run must pass atomicity, operational correctness and
//! the safe state.

mod common;

use common::*;
use presumed_any::prelude::*;

const T: TxnId = TxnId(1);

fn sweep(kind: CoordinatorKind, protos: &[ProtocolKind], abort: bool, victim: SiteId) {
    for crash_us in (900..2_600).step_by(50) {
        let mut s = Scenario::new(kind, protos);
        s.add_txn(T, SimTime::from_millis(1));
        if abort {
            s.txns[0].abort_at = Some(SimTime::from_micros(1_250));
        }
        s.failures = FailureSchedule::single(
            victim,
            SimTime::from_micros(crash_us),
            SimTime::from_micros(crash_us) + SimTime::from_millis(150),
        );
        let out = run_scenario(&s);
        let a = check_atomicity(&out.history);
        assert!(a.is_empty(), "crash at {crash_us}us of {victim}: {a:?}");
        let o = check_operational(&out.history, &out.final_state);
        assert!(o.is_empty(), "crash at {crash_us}us of {victim}: {o:?}");
        let ss = check_all_safe_states(&out.history, coord());
        assert!(ss.is_empty(), "crash at {crash_us}us of {victim}: {ss:?}");
    }
}

const MIXED: [ProtocolKind; 3] = [ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC];

#[test]
fn coordinator_crash_sweep_commit() {
    sweep(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &MIXED,
        false,
        coord(),
    );
}

#[test]
fn coordinator_crash_sweep_abort() {
    sweep(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &MIXED,
        true,
        coord(),
    );
}

#[test]
fn participant_crash_sweep_commit() {
    for victim in [site(1), site(2), site(3)] {
        sweep(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &MIXED,
            false,
            victim,
        );
    }
}

#[test]
fn participant_crash_sweep_abort() {
    for victim in [site(1), site(2), site(3)] {
        sweep(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &MIXED,
            true,
            victim,
        );
    }
}

#[test]
fn single_protocol_crash_sweeps() {
    for p in ProtocolKind::ALL {
        let protos = [p, p];
        for abort in [false, true] {
            sweep(CoordinatorKind::Single(p), &protos, abort, coord());
            sweep(CoordinatorKind::Single(p), &protos, abort, site(1));
        }
    }
}

#[test]
fn double_fault_coordinator_and_participant() {
    // Coordinator and the PrC participant both crash, overlapping.
    for (c_at, p_at) in [(1_300u64, 1_500u64), (1_500, 1_300), (1_700, 1_700)] {
        let mut s = Scenario::new(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict), &MIXED);
        s.add_txn(T, SimTime::from_millis(1));
        let mut f = FailureSchedule::none();
        f.push(
            coord(),
            SimTime::from_micros(c_at),
            SimTime::from_micros(c_at + 80_000),
        );
        f.push(
            site(3),
            SimTime::from_micros(p_at),
            SimTime::from_micros(p_at + 120_000),
        );
        s.failures = f;
        let out = run_scenario(&s);
        assert_fully_correct(&out);
    }
}

#[test]
fn repeated_coordinator_crashes() {
    // The coordinator crashes three times during one transaction's
    // lifetime; §4.2 recovery must be idempotent.
    let mut s = Scenario::new(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict), &MIXED);
    s.add_txn(T, SimTime::from_millis(1));
    let mut f = FailureSchedule::none();
    f.push(
        coord(),
        SimTime::from_micros(1_450),
        SimTime::from_millis(20),
    );
    f.push(coord(), SimTime::from_millis(25), SimTime::from_millis(60));
    f.push(coord(), SimTime::from_millis(65), SimTime::from_millis(120));
    s.failures = f;
    let out = run_scenario(&s);
    assert_fully_correct(&out);
    // The decision, once recovered, never flips (the atomicity checker
    // verifies this; assert the decision exists at all).
    assert!(out.decided.contains_key(&T));
}

#[test]
fn crash_during_recovery_resend_window() {
    // Participant crashes; coordinator re-sends; participant crashes
    // again mid-resend; still converges.
    let mut s = Scenario::new(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict), &MIXED);
    s.add_txn(T, SimTime::from_millis(1));
    let mut f = FailureSchedule::none();
    f.push(
        site(2),
        SimTime::from_micros(1_500),
        SimTime::from_millis(30),
    );
    f.push(site(2), SimTime::from_millis(31), SimTime::from_millis(90));
    s.failures = f;
    let out = run_scenario(&s);
    assert_fully_correct(&out);
    assert_eq!(out.enforced.len(), 3, "all three participants enforced");
}

#[test]
fn message_loss_storms_converge() {
    // 30% loss, no crashes: retry machinery alone must converge.
    for seed in 0..5 {
        let mut s = Scenario::new(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict), &MIXED);
        s.network = NetworkConfig::lossy(0.3);
        s.seed = seed;
        s.add_txn(T, SimTime::from_millis(1));
        let out = run_scenario(&s);
        assert_fully_correct(&out);
    }
}
