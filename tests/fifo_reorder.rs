//! Footnote-5 regression: the no-memory presumption assumes FIFO links.
//!
//! Footnote 5 lets a participant with *no memory* of a transaction ack
//! a decision immediately, on the assumption that no memory means
//! "already received, enforced and forgotten the decision". That
//! inference is sound only on FIFO links, where a decision cannot
//! arrive before the prepare that precedes it. Under reordering the
//! chain breaks for PrC:
//!
//! 1. the coordinator's `Decision(abort)` overtakes the delayed
//!    `Prepare` at one participant;
//! 2. the participant has no memory, so footnote 5 applies — PrC acks
//!    aborts, so it acks without having enforced anything;
//! 3. the coordinator collects every ack and (being presumed-commit)
//!    forgets the aborted transaction;
//! 4. the late `Prepare` finally arrives; the participant prepares and
//!    is now in doubt;
//! 5. its inquiry reaches a coordinator with no memory, which answers
//!    by PrC's presumption: *commit* — and the participant enforces
//!    commit against a globally aborted transaction.
//!
//! The test demonstrates the resulting atomicity violation under
//! `fifo: false` and asserts the ACTA checkers catch it; the control
//! run shows the identical schedule parameters are clean under
//! `fifo: true` (the default, which every other test relies on).

mod common;

use common::*;
use presumed_any::prelude::*;

const T: TxnId = TxnId(1);

/// High-jitter network so a decision can overtake a prepare when FIFO
/// ordering is off.
fn jittery(fifo: bool) -> NetworkConfig {
    NetworkConfig {
        min_latency: SimTime::from_micros(100),
        max_latency: SimTime::from_millis(30),
        loss_probability: 0.0,
        fifo,
    }
}

/// A client abort shortly after initiation: the abort decision goes out
/// while some prepares are still in flight, maximizing the overtake
/// window.
fn scenario(fifo: bool, seed: u64) -> Scenario {
    let protos = [ProtocolKind::PrC, ProtocolKind::PrC, ProtocolKind::PrC];
    let mut s = Scenario::new(CoordinatorKind::Single(ProtocolKind::PrC), &protos);
    s.network = jittery(fifo);
    s.seed = seed;
    s.add_txn(T, SimTime::from_millis(1));
    s.txns[0].abort_at = Some(SimTime::from_micros(1_400));
    s
}

const SEEDS: std::ops::Range<u64> = 0..40;

#[test]
fn non_fifo_breaks_footnote_5_and_the_checkers_catch_it() {
    let mut violating_seeds = 0u32;
    for seed in SEEDS {
        let out = run_scenario(&scenario(false, seed));
        let atomicity = check_atomicity(&out.history);
        if atomicity.is_empty() {
            continue;
        }
        violating_seeds += 1;
        // The violation is exactly the footnote-5 failure: some
        // participant enforced *commit* for the aborted transaction
        // after being answered by PrC's presumption.
        assert_eq!(out.decided.get(&T), Some(&Outcome::Abort), "seed {seed}");
        let wrong_commit = out
            .enforced
            .iter()
            .any(|((_, txn), o)| *txn == T && *o == Outcome::Commit);
        assert!(
            wrong_commit,
            "seed {seed}: atomicity violation without a presumed commit: {atomicity:?}"
        );
        // The history must show the inquiry answered by presumption —
        // the ACTA predicate pinpoints step 5 of the failure chain.
        let by_presumption = out.history.events().iter().any(|e| {
            matches!(
                e,
                ActaEvent::Respond {
                    by_presumption: true,
                    outcome: Outcome::Commit,
                    ..
                }
            )
        });
        assert!(
            by_presumption,
            "seed {seed}: commit was enforced but not via a presumption answer"
        );
    }
    assert!(
        violating_seeds > 0,
        "no seed in {SEEDS:?} reordered a decision past its prepare; \
         widen the latency jitter"
    );
}

/// Control: the same schedules on FIFO links are fully correct — the
/// footnote-5 inference holds whenever links deliver in order, which is
/// the §2 system model every protocol in the paper assumes.
#[test]
fn fifo_control_is_fully_correct() {
    for seed in SEEDS {
        let out = run_scenario(&scenario(true, seed));
        assert_fully_correct(&out);
        assert_eq!(out.decided.get(&T), Some(&Outcome::Abort), "seed {seed}");
    }
}

/// The same footnote-5 chain over **real sockets**: TCP is FIFO, so the
/// violation cannot occur naturally — the wire fault layer delays the
/// `Prepare` frame at the sender, letting the abort `Decision` overtake
/// it on the wire, and the receiver's sequence-number watermark records
/// the reordering as a genuine `seq_regression`.
#[cfg(unix)]
mod socket {
    use super::*;
    use presumed_any::net::wire::{
        shared_history, AddressBook, FaultRule, NodeConfig, SocketNode, WireFaults,
    };
    use presumed_any::obs::WireSnapshot;
    use presumed_any::wal::tempdir::TempDir;
    use std::net::SocketAddr;
    use std::path::Path;
    use std::sync::Arc;
    use std::time::Duration;

    fn write_peers(path: &Path, entries: &[(u32, SocketAddr)]) {
        let tmp = path.with_extension("tmp");
        let body: String = entries.iter().map(|(s, a)| format!("{s} {a}\n")).collect();
        std::fs::write(&tmp, body).expect("write peers");
        std::fs::rename(&tmp, path).expect("rename peers");
    }

    struct SocketRun {
        history: History,
        outcome: Outcome,
        /// Outcomes site 1 enforced, from its node's final report.
        site1_enforced: Vec<Outcome>,
        /// Coordinator-node transport counters (fault injection side).
        coord_wire: WireSnapshot,
        /// Participant-node transport counters (reordering observer).
        part_wire: WireSnapshot,
    }

    /// One aborting transaction, coordinator and participants in
    /// separate socket nodes, with `faults` installed on the
    /// coordinator's outbound wire.
    fn run(faults: WireFaults) -> SocketRun {
        let dir = TempDir::new("socket-fifo").expect("tempdir");
        let peers = dir.path().join("peers");
        let cluster = ClusterConfig::new(
            CoordinatorKind::Single(ProtocolKind::PrC),
            &[ProtocolKind::PrC, ProtocolKind::PrC],
        );
        let history = shared_history();
        let mut config = NodeConfig::new(
            cluster.clone(),
            vec![SiteId::new(0)],
            AddressBook::File(peers.clone()),
            dir.path().join("n0"),
        );
        std::fs::create_dir_all(dir.path().join("n0")).expect("wal dir");
        std::fs::create_dir_all(dir.path().join("n1")).expect("wal dir");
        config.faults = faults;
        let mut coord =
            SocketNode::spawn_with(config, None, Arc::clone(&history)).expect("coord node");
        let part = SocketNode::spawn_with(
            NodeConfig::new(
                cluster,
                vec![SiteId::new(1), SiteId::new(2)],
                AddressBook::File(peers.clone()),
                dir.path().join("n1"),
            ),
            None,
            Arc::clone(&history),
        )
        .expect("part node");
        write_peers(
            &peers,
            &[
                (0, coord.local_addr()),
                (1, part.local_addr()),
                (2, part.local_addr()),
            ],
        );

        let parts = coord.participants();
        let txn = coord.next_txn();
        for &p in &parts {
            coord.apply(p, txn, b"k", b"v");
        }
        // Site 2 vetoes, so the coordinator aborts as soon as that vote
        // lands — long before site 1's delayed Prepare is released.
        coord.set_intent(SiteId::new(2), txn, Vote::No);
        let outcome = coord.commit(txn, &parts).expect("decision");
        // Let the late Prepare land, the in-doubt inquiry fire, and the
        // presumption answer flow back.
        coord.settle(Duration::from_millis(1_500));
        let coord_report = coord.shutdown();
        let part_report = part.shutdown();
        let site1_enforced = part_report
            .cluster
            .sites
            .iter()
            .find(|s| s.site == SiteId::new(1))
            .expect("site 1 summary")
            .enforced
            .values()
            .copied()
            .collect();
        let merged = history.lock().clone();
        SocketRun {
            history: merged,
            outcome,
            site1_enforced,
            coord_wire: coord_report.wire,
            part_wire: part_report.wire,
        }
    }

    #[test]
    fn delayed_prepare_frame_breaks_footnote_5_over_tcp() {
        let out = run(WireFaults::none().rule(FaultRule::delay_all(
            SiteId::new(1),
            "prepare",
            Duration::from_millis(300),
        )));
        assert_eq!(out.outcome, Outcome::Abort, "site 2's veto must abort");
        assert!(
            out.coord_wire.fault_delays >= 1,
            "the Prepare frame must have been held: {:?}",
            out.coord_wire
        );
        assert!(
            out.part_wire.seq_regressions >= 1,
            "the released frame must arrive out of sequence: {:?}",
            out.part_wire
        );
        // Step 5 of the footnote-5 chain: the forgotten coordinator
        // answers the in-doubt participant by PrC's presumption.
        assert!(
            out.history.events().iter().any(|e| matches!(
                e,
                ActaEvent::Respond {
                    by_presumption: true,
                    outcome: Outcome::Commit,
                    ..
                }
            )),
            "no presumption answer in the history"
        );
        assert!(
            out.site1_enforced.contains(&Outcome::Commit),
            "site 1 must enforce commit against the global abort: {:?}",
            out.site1_enforced
        );
        assert!(
            !check_atomicity(&out.history).is_empty(),
            "the ACTA atomicity predicate must flag the violation"
        );
    }

    /// Control: the identical cluster with a clean wire is FIFO (TCP
    /// guarantees it), so the same veto schedule is fully correct.
    #[test]
    fn clean_tcp_is_fifo_and_correct() {
        let out = run(WireFaults::none());
        assert_eq!(out.outcome, Outcome::Abort);
        assert_eq!(out.part_wire.seq_regressions, 0, "TCP must deliver in order");
        assert!(
            !out.site1_enforced.contains(&Outcome::Commit),
            "no participant may enforce commit: {:?}",
            out.site1_enforced
        );
        assert!(check_atomicity(&out.history).is_empty());
    }
}
