//! Footnote-5 regression: the no-memory presumption assumes FIFO links.
//!
//! Footnote 5 lets a participant with *no memory* of a transaction ack
//! a decision immediately, on the assumption that no memory means
//! "already received, enforced and forgotten the decision". That
//! inference is sound only on FIFO links, where a decision cannot
//! arrive before the prepare that precedes it. Under reordering the
//! chain breaks for PrC:
//!
//! 1. the coordinator's `Decision(abort)` overtakes the delayed
//!    `Prepare` at one participant;
//! 2. the participant has no memory, so footnote 5 applies — PrC acks
//!    aborts, so it acks without having enforced anything;
//! 3. the coordinator collects every ack and (being presumed-commit)
//!    forgets the aborted transaction;
//! 4. the late `Prepare` finally arrives; the participant prepares and
//!    is now in doubt;
//! 5. its inquiry reaches a coordinator with no memory, which answers
//!    by PrC's presumption: *commit* — and the participant enforces
//!    commit against a globally aborted transaction.
//!
//! The test demonstrates the resulting atomicity violation under
//! `fifo: false` and asserts the ACTA checkers catch it; the control
//! run shows the identical schedule parameters are clean under
//! `fifo: true` (the default, which every other test relies on).

mod common;

use common::*;
use presumed_any::prelude::*;

const T: TxnId = TxnId(1);

/// High-jitter network so a decision can overtake a prepare when FIFO
/// ordering is off.
fn jittery(fifo: bool) -> NetworkConfig {
    NetworkConfig {
        min_latency: SimTime::from_micros(100),
        max_latency: SimTime::from_millis(30),
        loss_probability: 0.0,
        fifo,
    }
}

/// A client abort shortly after initiation: the abort decision goes out
/// while some prepares are still in flight, maximizing the overtake
/// window.
fn scenario(fifo: bool, seed: u64) -> Scenario {
    let protos = [ProtocolKind::PrC, ProtocolKind::PrC, ProtocolKind::PrC];
    let mut s = Scenario::new(CoordinatorKind::Single(ProtocolKind::PrC), &protos);
    s.network = jittery(fifo);
    s.seed = seed;
    s.add_txn(T, SimTime::from_millis(1));
    s.txns[0].abort_at = Some(SimTime::from_micros(1_400));
    s
}

const SEEDS: std::ops::Range<u64> = 0..40;

#[test]
fn non_fifo_breaks_footnote_5_and_the_checkers_catch_it() {
    let mut violating_seeds = 0u32;
    for seed in SEEDS {
        let out = run_scenario(&scenario(false, seed));
        let atomicity = check_atomicity(&out.history);
        if atomicity.is_empty() {
            continue;
        }
        violating_seeds += 1;
        // The violation is exactly the footnote-5 failure: some
        // participant enforced *commit* for the aborted transaction
        // after being answered by PrC's presumption.
        assert_eq!(out.decided.get(&T), Some(&Outcome::Abort), "seed {seed}");
        let wrong_commit = out
            .enforced
            .iter()
            .any(|((_, txn), o)| *txn == T && *o == Outcome::Commit);
        assert!(
            wrong_commit,
            "seed {seed}: atomicity violation without a presumed commit: {atomicity:?}"
        );
        // The history must show the inquiry answered by presumption —
        // the ACTA predicate pinpoints step 5 of the failure chain.
        let by_presumption = out.history.events().iter().any(|e| {
            matches!(
                e,
                ActaEvent::Respond {
                    by_presumption: true,
                    outcome: Outcome::Commit,
                    ..
                }
            )
        });
        assert!(
            by_presumption,
            "seed {seed}: commit was enforced but not via a presumption answer"
        );
    }
    assert!(
        violating_seeds > 0,
        "no seed in {SEEDS:?} reordered a decision past its prepare; \
         widen the latency jitter"
    );
}

/// Control: the same schedules on FIFO links are fully correct — the
/// footnote-5 inference holds whenever links deliver in order, which is
/// the §2 system model every protocol in the paper assumes.
#[test]
fn fifo_control_is_fully_correct() {
    for seed in SEEDS {
        let out = run_scenario(&scenario(true, seed));
        assert_fully_correct(&out);
        assert_eq!(out.decided.get(&T), Some(&Outcome::Abort), "seed {seed}");
    }
}
