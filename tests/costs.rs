//! Experiment E8 — the cost table: forced writes, log records and
//! messages per protocol × outcome × population.
//!
//! The analytic model (`acp_core::cost::predict`) and the measured
//! execution must agree *record for record* in failure-free runs. This
//! pins down every protocol's logging discipline — any accidental extra
//! force would show up here.

mod common;

use common::*;
use presumed_any::prelude::*;

const T: TxnId = TxnId(1);

/// Run one transaction and compare measured vs. predicted costs.
fn check_costs(kind: CoordinatorKind, outcome: Outcome, pop: Population) {
    let protos: Vec<ProtocolKind> = pop.entries().iter().map(|e| e.protocol).collect();
    let mut s = Scenario::new(kind, &protos);
    s.add_txn(T, SimTime::from_millis(1));
    if outcome == Outcome::Abort {
        // Client abort while all votes are in flight: every participant
        // is prepared — the model's abort situation.
        s.txns[0].abort_at = Some(SimTime::from_micros(1_250));
    }
    let out = run_scenario(&s);
    assert_eq!(out.decided[&T], outcome, "{kind} {outcome} {pop:?}");
    assert_fully_correct(&out);

    let predicted = predict(kind, outcome, pop);
    let coord_costs = out.coordinator_costs[&T];
    assert_eq!(
        coord_costs.forced_writes, predicted.coord_forces,
        "{kind} {outcome} {pop:?}: coordinator forces"
    );
    assert_eq!(
        coord_costs.log_records, predicted.coord_records,
        "{kind} {outcome} {pop:?}: coordinator records"
    );

    let mut part_forces = 0;
    let mut part_records = 0;
    for ((_, t), c) in &out.participant_costs {
        if *t == T {
            part_forces += c.forced_writes;
            part_records += c.log_records;
        }
    }
    assert_eq!(
        part_forces, predicted.part_forces,
        "{kind} {outcome} {pop:?}: participant forces"
    );
    assert_eq!(
        part_records, predicted.part_records,
        "{kind} {outcome} {pop:?}: participant records"
    );

    let total = out.total_costs(T);
    assert_eq!(
        total.messages(),
        predicted.messages,
        "{kind} {outcome} {pop:?}: messages"
    );
}

#[test]
fn e8_homogeneous_populations_all_protocols_both_outcomes() {
    for (proto, pop) in [
        (ProtocolKind::PrN, Population::new(2, 0, 0)),
        (ProtocolKind::PrA, Population::new(0, 2, 0)),
        (ProtocolKind::PrC, Population::new(0, 0, 2)),
        (ProtocolKind::PrN, Population::new(4, 0, 0)),
        (ProtocolKind::PrA, Population::new(0, 4, 0)),
        (ProtocolKind::PrC, Population::new(0, 0, 4)),
    ] {
        for outcome in [Outcome::Commit, Outcome::Abort] {
            check_costs(CoordinatorKind::Single(proto), outcome, pop);
        }
    }
}

#[test]
fn e8_prany_mixed_populations() {
    let kind = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
    for pop in [
        Population::new(1, 1, 1),
        Population::new(0, 1, 1),
        Population::new(1, 1, 0),
        Population::new(1, 0, 1),
        Population::new(2, 2, 2),
    ] {
        for outcome in [Outcome::Commit, Outcome::Abort] {
            check_costs(kind, outcome, pop);
        }
    }
}

#[test]
fn e8_prany_homogeneous_collapses_to_native_costs() {
    let kind = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
    for pop in [
        Population::new(3, 0, 0),
        Population::new(0, 3, 0),
        Population::new(0, 0, 3),
    ] {
        for outcome in [Outcome::Commit, Outcome::Abort] {
            check_costs(kind, outcome, pop);
        }
    }
}

#[test]
fn e8_optimized_policy_costs() {
    let kind = CoordinatorKind::PrAny(SelectionPolicy::Optimized);
    for pop in [
        Population::new(1, 1, 0),
        Population::new(1, 1, 1),
        Population::new(2, 1, 0),
    ] {
        for outcome in [Outcome::Commit, Outcome::Abort] {
            check_costs(kind, outcome, pop);
        }
    }
}

#[test]
fn e8_headline_comparison_prc_cheapest_commit_pra_cheapest_abort() {
    // The ordering argument behind the paper's §1 and the authors'
    // companion ICDE'97 paper: for commits PrC saves the participants'
    // decision forces and the ack round; for aborts PrA saves
    // everything at the coordinator.
    let n = Population::new(0, 3, 0);
    let c = Population::new(0, 0, 3);
    let prn = Population::new(3, 0, 0);

    let commit_prn = predict(
        CoordinatorKind::Single(ProtocolKind::PrN),
        Outcome::Commit,
        prn,
    );
    let commit_pra = predict(
        CoordinatorKind::Single(ProtocolKind::PrA),
        Outcome::Commit,
        n,
    );
    let commit_prc = predict(
        CoordinatorKind::Single(ProtocolKind::PrC),
        Outcome::Commit,
        c,
    );
    assert!(commit_prc.total_forces() < commit_pra.total_forces());
    assert!(commit_prc.messages < commit_pra.messages);
    assert!(commit_pra.total_forces() <= commit_prn.total_forces());

    let abort_prn = predict(
        CoordinatorKind::Single(ProtocolKind::PrN),
        Outcome::Abort,
        prn,
    );
    let abort_pra = predict(
        CoordinatorKind::Single(ProtocolKind::PrA),
        Outcome::Abort,
        n,
    );
    let abort_prc = predict(
        CoordinatorKind::Single(ProtocolKind::PrC),
        Outcome::Abort,
        c,
    );
    assert!(abort_pra.total_forces() < abort_prc.total_forces());
    assert!(abort_pra.messages < abort_prn.messages);
    assert!(abort_prc.total_forces() <= abort_prn.total_forces());
}

#[test]
fn e8_read_only_participants_reduce_measured_costs() {
    let kind = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
    let protos = [ProtocolKind::PrA, ProtocolKind::PrC];

    let mut s = Scenario::new(kind, &protos);
    s.add_txn(T, SimTime::from_millis(1));
    let full = run_scenario(&s).total_costs(T);

    let mut s = Scenario::new(kind, &protos);
    s.add_txn_with_vote(T, SimTime::from_millis(1), site(1), Vote::ReadOnly);
    let out = run_scenario(&s);
    assert_fully_correct(&out);
    let reduced = out.total_costs(T);

    assert!(reduced.forced_writes < full.forced_writes);
    assert!(reduced.messages() < full.messages());
    assert!(reduced.log_records < full.log_records);
}
