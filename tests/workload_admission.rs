//! End-to-end tests for the open-loop workload engine and admission
//! control (experiment E17): clean runs are admission-invariant byte
//! for byte, forced overflow sheds loudly (counted, narrated, and
//! observable at the client), and the generator's plans drive 1 and N
//! reactors to identical outcomes and protocol costs.

use presumed_any::net::NetDelays;
use presumed_any::obs::{event_to_json, parse_flat_json, Counter, JsonValue};
use presumed_any::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Delays so large that any timer firing in a clean run is a bug.
fn glacial() -> NetDelays {
    NetDelays {
        vote_timeout: Duration::from_secs(60),
        ack_resend: Duration::from_secs(60),
        inquiry_retry: Duration::from_secs(60),
        apply_retry: Duration::from_secs(60),
        paxos_completion: Duration::from_secs(60),
    }
}

/// Per-site event lines with wall-clock fields masked (the projection
/// the runtime-parity tests compare).
fn masked_site_traces(events: &[ProtocolEvent]) -> BTreeMap<u64, Vec<String>> {
    let mut by_site: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for ev in events {
        let mut map = parse_flat_json(&event_to_json(ev)).expect("trace dialect");
        map.remove("at_us");
        map.remove("since_decision_us");
        let site = map["site"].as_u64().expect("site field");
        let line = map
            .iter()
            .map(|(k, v)| match v {
                JsonValue::Num(n) => format!("\"{k}\":{n}"),
                JsonValue::Str(s) => format!("\"{k}\":{s:?}"),
            })
            .collect::<Vec<_>>()
            .join(",");
        by_site.entry(site).or_default().push(format!("{{{line}}}"));
    }
    by_site
}

// ---------------------------------------------------------------------------
// Acceptance: clean single-transaction traces are admission-invariant

/// One clean transaction must produce the same per-site trace, byte
/// for byte modulo timestamps, with admission control off and with any
/// admission bound enabled: an idle cluster admits everything, so the
/// controller may not perturb the schedule.
#[test]
fn single_txn_trace_byte_identical_with_admission_enabled() {
    let kind = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
    let protos = [ProtocolKind::PrA];

    let run = |admission: Option<AdmissionConfig>| {
        let sink = Arc::new(VecSink::new());
        let mut config = ReactorConfig::new(kind, &protos);
        config.admission = admission;
        let mut cluster = ReactorCluster::spawn_with_sink(&config, Arc::clone(&sink) as _);
        let txn = cluster.next_txn();
        let parts = cluster.participants();
        cluster.apply(parts[0], txn, b"k", b"v");
        assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
        cluster.settle(Duration::from_millis(300));
        let report = cluster.shutdown();
        assert_eq!(report.stats.admission_sheds, 0, "clean run never sheds");
        masked_site_traces(&sink.snapshot())
    };

    let baseline = run(None);
    for bound in [1, 4, 1024] {
        let gated = run(Some(AdmissionConfig::bounded(bound)));
        assert_eq!(
            baseline, gated,
            "bound {bound}: admission perturbed a clean single-txn trace"
        );
    }
}

// ---------------------------------------------------------------------------
// Acceptance: forced overflow sheds loudly

/// Saturate a tiny admission bound with a burst of commits while the
/// only participant is down (votes can't arrive, so admitted work
/// stays in flight): the excess must be refused at the door — counted
/// in the reactor stats, mirrored into the metrics grid, and observed
/// by each shed client as an immediately failed reply, never a stall.
#[test]
fn forced_overflow_sheds_are_counted_and_observable() {
    let registry = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(CountingSink::new(Arc::clone(&registry)));
    let mut config = ReactorConfig::new(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &[ProtocolKind::PrA],
    );
    config.cluster.delays = glacial();
    config.admission = Some(AdmissionConfig::bounded(2));
    let mut cluster = ReactorCluster::spawn_with_sink(&config, sink as _);
    let parts = cluster.participants();

    // Take the participant down so admitted commits park in flight
    // awaiting votes that cannot arrive within the test.
    cluster.crash(parts[0], Duration::from_secs(30));
    cluster.settle(Duration::from_millis(50));

    const BURST: usize = 6;
    let pending: Vec<_> = (0..BURST)
        .map(|_| {
            let txn = cluster.next_txn();
            (txn, cluster.commit_async(txn, &parts))
        })
        .collect();

    // The first two occupy the bound; the other four disconnect fast.
    let mut shed_observed = 0;
    for (txn, rx) in &pending[2..] {
        assert!(
            rx.recv_timeout(Duration::from_secs(5)).is_err(),
            "txn {txn}: shed client must see a failed reply"
        );
        shed_observed += 1;
    }
    assert_eq!(shed_observed, BURST - 2);

    let report = cluster.shutdown();
    assert_eq!(
        report.stats.admission_sheds,
        (BURST - 2) as u64,
        "every overflow commit is counted as a shed"
    );
    assert_eq!(
        registry.snapshot(0).total(Counter::AdmissionShed),
        (BURST - 2) as u64,
        "sheds are mirrored into the metrics grid"
    );
}

// ---------------------------------------------------------------------------
// Acceptance: the generator drives 1 and N reactors identically

/// A seeded open-loop plan (zipfian keys, mixed shapes) issued
/// transaction by transaction must produce identical outcomes and
/// identical protocol cost counters on 1 and 2 reactor shards — the
/// workload engine introduces no nondeterminism of its own.
#[test]
fn generator_plan_drives_1_vs_n_reactors_identically() {
    let plan = OpenLoopPlan {
        arrivals: OpenLoopArrivals {
            rate_per_sec: 1000.0,
            count: 24,
            seed: 17,
        },
        key_population: 100_000,
        key_skew: 1.1,
        shape: TxnShape {
            min_partitions: 1,
            max_partitions: 3,
            keys_per_partition: 2,
        },
    };

    let run = |n: usize| {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = Arc::new(CountingSink::new(Arc::clone(&registry)));
        let mut config = MultiReactorConfig::new(
            ReactorConfig::new(
                CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
                &[ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC],
            ),
            n,
        );
        config.reactor.cluster.delays = glacial();
        config.reactor.admission = Some(AdmissionConfig::bounded(64));
        let mut cluster = MultiReactorCluster::spawn_with_sink(&config, sink as _);
        let sites = cluster.participants();
        let txns = plan.generate(&sites);
        let mut outcomes = Vec::with_capacity(txns.len());
        for t in &txns {
            let txn = cluster.next_txn();
            for (i, key) in t.keys.iter().enumerate() {
                let site = t.participants[i % t.participants.len()];
                cluster.apply(site, txn, key.as_bytes(), b"v");
            }
            let outcome = cluster.commit(txn, &t.participants);
            outcomes.push((txn, outcome));
            // Let decisions reach every participant (releasing locks)
            // before the next arrival stages its writes, so the lock
            // state each transaction sees is schedule-independent.
            cluster.settle(Duration::from_millis(2));
        }
        cluster.settle(Duration::from_millis(300));
        let report = cluster.shutdown();
        assert!(check_atomicity(&report.cluster.history).is_empty());
        (outcomes, registry)
    };

    let (outcomes_1, registry_1) = run(1);
    assert!(
        outcomes_1.iter().all(|(_, o)| o == &Some(Outcome::Commit)),
        "sequential clean plan commits everywhere"
    );
    let (outcomes_2, registry_2) = run(2);
    assert_eq!(outcomes_1, outcomes_2, "outcomes diverged 1 vs 2 shards");
    for proto in ProtoLabel::ALL {
        for counter in Counter::ALL {
            match counter {
                // Scheduling-dependent amortization accounting, as in
                // the multi-reactor stress parity test.
                Counter::GcLatencyUsSum
                | Counter::GcLatencySamples
                | Counter::GcRuns
                | Counter::BatchedForces
                | Counter::BatchOccupancy
                | Counter::TablePeakShardOccupancy => continue,
                _ => {}
            }
            assert_eq!(
                registry_1.get(proto, counter),
                registry_2.get(proto, counter),
                "{proto:?}/{counter:?} diverged 1 vs 2 shards"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Satellite: commit-latency histogram is populated and merged

/// The reactor's per-transaction commit latencies land in the report's
/// histogram, and the multi-reactor report merges every shard's
/// histogram (count equals total delivered decisions).
#[test]
fn latency_histograms_cover_every_delivered_decision() {
    let mut config = MultiReactorConfig::new(
        ReactorConfig::new(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        ),
        2,
    );
    config.reactor.cluster.delays = glacial();
    let mut cluster = MultiReactorCluster::spawn(&config);
    let parts = cluster.participants();
    const TXNS: u64 = 16;
    let mut pending = Vec::new();
    for i in 0..TXNS {
        let txn = cluster.next_txn();
        for &p in &parts {
            cluster.apply(p, txn, format!("key-{i}").as_bytes(), b"v");
        }
        pending.push(cluster.commit_async(txn, &parts));
    }
    for rx in pending {
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(30)).ok(),
            Some(Outcome::Commit)
        );
    }
    cluster.settle(Duration::from_millis(200));
    let report = cluster.shutdown();
    assert_eq!(
        report.latency.count(),
        TXNS,
        "one latency sample per delivered decision"
    );
    let p50 = report.latency.p50().expect("non-empty histogram");
    let p999 = report.latency.p999().expect("non-empty histogram");
    assert!(p50 <= p999, "quantiles are monotone: p50={p50} p999={p999}");
}
