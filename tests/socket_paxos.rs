//! Paxos Commit over the socket wire backend (experiment E16): a
//! replicated coordinator spread across real loopback-TCP nodes.
//!
//! The headline pair mirrors the simulator's: one schedule — decide
//! commit, lose the decisions, kill the leader — leaves participants
//! in doubt forever under the f = 0 degenerate cluster (that *is*
//! 2PC), while the same schedule under f = 1 reaches global commit
//! because an acceptor's completion watchdog runs the failover round
//! and re-drives the decision from the replicated bundle.
#![cfg(unix)]

use presumed_any::net::wire::{
    shared_history, AddressBook, FaultRule, NodeConfig, SocketNode, WireFaults,
};
use presumed_any::net::NetDelays;
use presumed_any::prelude::*;
use presumed_any::wal::tempdir::TempDir;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Paxos-shaped cluster: `n` PrN participants, `2f` remote acceptors
/// past them, leader at site 0. Delays keep clean runs timer-silent
/// but let the acceptor watchdog fire within a test's patience.
fn paxos_cluster(n: usize, f: usize) -> ClusterConfig {
    let mut cluster = ClusterConfig::new(
        CoordinatorKind::Single(ProtocolKind::PrN),
        &vec![ProtocolKind::PrN; n],
    );
    cluster.paxos_f = Some(f);
    cluster.delays = NetDelays {
        vote_timeout: Duration::from_secs(60),
        ack_resend: Duration::from_millis(200),
        inquiry_retry: Duration::from_millis(250),
        apply_retry: Duration::from_secs(60),
        paxos_completion: Duration::from_millis(300),
    };
    cluster
}

/// Atomically (re)write the rendezvous file nodes re-read at each dial.
fn write_peers(path: &Path, entries: &[(u32, SocketAddr)]) {
    let tmp = path.with_extension("tmp");
    let body: String = entries.iter().map(|(s, a)| format!("{s} {a}\n")).collect();
    std::fs::write(&tmp, body).expect("write peers");
    std::fs::rename(&tmp, path).expect("rename peers");
}

fn node_config(
    cluster: &ClusterConfig,
    hosted: &[u32],
    peers: &Path,
    wal_dir: PathBuf,
) -> NodeConfig {
    std::fs::create_dir_all(&wal_dir).expect("wal dir");
    NodeConfig::new(
        cluster.clone(),
        hosted.iter().map(|&s| SiteId::new(s)).collect(),
        AddressBook::File(peers.to_path_buf()),
        wal_dir,
    )
}

/// One node per failure domain: the leader alone, each participant
/// alone, the remote acceptors alone. Returns the spawned nodes in
/// `hosted` order together with the rendezvous entries written.
fn spawn_ring(
    cluster: &ClusterConfig,
    dir: &TempDir,
    hostings: &[&[u32]],
    faults: impl Fn(usize) -> WireFaults,
) -> (Vec<SocketNode>, presumed_any::net::wire::SharedHistory) {
    let peers = dir.path().join("peers");
    let history = shared_history();
    let mut nodes = Vec::new();
    let mut entries = Vec::new();
    for (i, hosted) in hostings.iter().enumerate() {
        let mut config = node_config(cluster, hosted, &peers, dir.path().join(format!("n{i}")));
        config.faults = faults(i);
        let node = SocketNode::spawn_with(config, None, Arc::clone(&history)).expect("spawn node");
        for &s in *hosted {
            entries.push((s, node.local_addr()));
        }
        nodes.push(node);
    }
    write_peers(&peers, &entries);
    (nodes, history)
}

/// Sanity: a 2f + 1 = 3 acceptor cluster split over four processes
/// commits cleanly, lands the data at every participant, and the
/// merged history satisfies the ACTA atomicity predicate.
#[test]
fn paxos_cluster_commits_cleanly_over_sockets() {
    let cluster = paxos_cluster(2, 1);
    let dir = TempDir::new("socket-paxos-clean").expect("tempdir");
    let (mut nodes, history) = spawn_ring(
        &cluster,
        &dir,
        &[&[0], &[1, 2], &[3], &[4]],
        |_| WireFaults::none(),
    );
    let parts = nodes[0].participants();
    assert_eq!(parts, vec![SiteId::new(1), SiteId::new(2)]);

    let txn = nodes[0].next_txn();
    for &p in &parts {
        nodes[0].apply(p, txn, b"balance", b"100");
    }
    assert_eq!(nodes[0].commit(txn, &parts), Some(Outcome::Commit));
    nodes[0].settle(Duration::from_millis(500));

    let reports: Vec<_> = nodes.drain(..).map(SocketNode::shutdown).collect();
    assert!(check_atomicity(&history.lock().clone()).is_empty());
    for report in &reports {
        for s in &report.cluster.sites {
            if parts.contains(&s.site) {
                assert_eq!(
                    s.enforced.get(&txn),
                    Some(&Outcome::Commit),
                    "site {} enforced",
                    s.site
                );
                assert_eq!(
                    s.committed.get(b"balance".as_slice()).map(Vec::as_slice),
                    Some(b"100".as_slice()),
                    "site {} data",
                    s.site
                );
            }
            // Clean runs reclaim every protocol log, acceptors included.
            assert!(
                s.log_pinned.is_empty(),
                "site {} still pins {:?}",
                s.site,
                s.log_pinned
            );
        }
    }
}

/// The leader decides commit but every decision frame to the
/// participants is lost, and then the leader process dies. With the
/// degenerate single-acceptor cluster (f = 0, i.e. plain 2PC) there is
/// nobody left who knows the outcome: the participants stay prepared
/// and in doubt for as long as we care to watch.
#[test]
fn leader_kill_after_decision_blocks_the_f0_cluster() {
    let cluster = paxos_cluster(2, 0);
    let dir = TempDir::new("socket-paxos-stuck").expect("tempdir");
    let drop_decisions = |i: usize| {
        if i == 0 {
            WireFaults::none()
                .rule(FaultRule::drop_all(SiteId::new(1), "decision"))
                .rule(FaultRule::drop_all(SiteId::new(2), "decision"))
        } else {
            WireFaults::none()
        }
    };
    let (mut nodes, history) =
        spawn_ring(&cluster, &dir, &[&[0], &[1], &[2]], drop_decisions);
    let parts = nodes[0].participants();

    let txn = nodes[0].next_txn();
    for &p in &parts {
        nodes[0].apply(p, txn, b"k", b"v");
    }
    // The decision is durable at the leader (the client reply is
    // process-local, so the wire faults cannot touch it) ...
    assert_eq!(nodes[0].commit(txn, &parts), Some(Outcome::Commit));
    // ... and then the leader is gone for longer than the test lives.
    nodes[0].crash(SiteId::new(0), Duration::from_secs(120));
    nodes[0].settle(Duration::from_secs(2));

    let reports: Vec<_> = nodes.drain(..).map(SocketNode::shutdown).collect();
    // Blocked, not broken: nothing enforced anywhere, still atomic.
    assert!(check_atomicity(&history.lock().clone()).is_empty());
    for report in &reports {
        for s in &report.cluster.sites {
            if parts.contains(&s.site) {
                assert!(
                    s.enforced.is_empty(),
                    "site {} must still be in doubt, enforced {:?}",
                    s.site,
                    s.enforced
                );
                assert!(s.committed.is_empty(), "site {} leaked data", s.site);
            }
        }
    }
}

/// The same schedule against 2f + 1 = 3 acceptors: the decision
/// survives in the acceptors' logs, so when the leader dies the
/// first remote acceptor's completion watchdog runs phase 1 at a
/// higher ballot, finds every instance chose Prepared, re-drives the
/// commit, and pushes the decision to the participants itself.
#[test]
fn leader_kill_after_decision_fails_over_and_commits_under_f1() {
    let cluster = paxos_cluster(2, 1);
    let dir = TempDir::new("socket-paxos-failover").expect("tempdir");
    let drop_decisions = |i: usize| {
        if i == 0 {
            WireFaults::none()
                .rule(FaultRule::drop_all(SiteId::new(1), "decision"))
                .rule(FaultRule::drop_all(SiteId::new(2), "decision"))
        } else {
            WireFaults::none()
        }
    };
    let (mut nodes, history) = spawn_ring(
        &cluster,
        &dir,
        &[&[0], &[1], &[2], &[3, 4]],
        drop_decisions,
    );
    let parts = nodes[0].participants();

    let txn = nodes[0].next_txn();
    for &p in &parts {
        nodes[0].apply(p, txn, b"k", b"v");
    }
    assert_eq!(nodes[0].commit(txn, &parts), Some(Outcome::Commit));
    nodes[0].crash(SiteId::new(0), Duration::from_secs(120));
    // Failover budget: the rank-1 watchdog fires at ~600 ms (plus
    // jitter), phase 1 and the re-driven decision take a few more
    // round trips.
    nodes[0].settle(Duration::from_secs(4));

    let reports: Vec<_> = nodes.drain(..).map(SocketNode::shutdown).collect();
    let hist = history.lock().clone();
    assert!(check_atomicity(&hist).is_empty(), "atomicity violated");
    for report in &reports {
        for s in &report.cluster.sites {
            if parts.contains(&s.site) {
                assert_eq!(
                    s.enforced.get(&txn),
                    Some(&Outcome::Commit),
                    "site {} must learn the commit from the failover leader",
                    s.site
                );
                assert_eq!(
                    s.committed.get(b"k".as_slice()).map(Vec::as_slice),
                    Some(b"v".as_slice()),
                    "site {} data",
                    s.site
                );
            }
        }
    }
}

/// A minority of acceptors (1 of 3) partitioned away during the
/// commit does not block it — and after the window heals, the next
/// transaction flows through the once-severed links again.
#[test]
fn acceptor_minority_partition_does_not_block_commit() {
    let cluster = paxos_cluster(1, 1);
    let dir = TempDir::new("socket-paxos-part").expect("tempdir");
    let window = (Duration::ZERO, Duration::from_millis(1200));
    // With one participant the acceptors sit at sites 2 and 3. Site
    // 3's acceptor is cut off from both cluster peers it talks to
    // (leader 0 and acceptor 2) in both directions: each endpoint
    // drops its own outbound half of the link for the window.
    let faults = |i: usize| match i {
        0 => WireFaults::none().partition(SiteId::new(3), window.0, window.1),
        2 => WireFaults::none().partition(SiteId::new(3), window.0, window.1),
        3 => WireFaults::none()
            .partition(SiteId::new(0), window.0, window.1)
            .partition(SiteId::new(2), window.0, window.1),
        _ => WireFaults::none(),
    };
    let (mut nodes, history) = spawn_ring(
        &cluster,
        &dir,
        &[&[0], &[1], &[2], &[3]],
        faults,
    );
    let parts = nodes[0].participants();

    let t1 = nodes[0].next_txn();
    nodes[0].apply(parts[0], t1, b"during", b"1");
    assert_eq!(
        nodes[0].commit(t1, &parts),
        Some(Outcome::Commit),
        "a quorum of 2 (leader + acceptor 3) must carry the commit"
    );

    // Heal, then prove the severed acceptor is a full member again.
    nodes[0].settle(Duration::from_millis(1500));
    let t2 = nodes[0].next_txn();
    nodes[0].apply(parts[0], t2, b"after", b"2");
    assert_eq!(nodes[0].commit(t2, &parts), Some(Outcome::Commit));
    nodes[0].settle(Duration::from_millis(500));

    let reports: Vec<_> = nodes.drain(..).map(SocketNode::shutdown).collect();
    assert!(check_atomicity(&history.lock().clone()).is_empty());
    for report in &reports {
        for s in &report.cluster.sites {
            if s.site == parts[0] {
                assert_eq!(s.enforced.get(&t1), Some(&Outcome::Commit));
                assert_eq!(s.enforced.get(&t2), Some(&Outcome::Commit));
            }
        }
    }
}
