//! Double-crash sweeps: crash-during-recovery schedules
//! (`FailureSchedule::double_crash`) moved across the commit window.
//!
//! A site crashes, comes back, gets a short window to re-run its §4.2
//! recovery procedure (re-building the protocol table, re-sending
//! decisions, re-inquiring), and crashes *again* before that recovery
//! can finish. Recovery must be idempotent: the second restart re-runs
//! the same log analysis over a log that now also contains whatever the
//! interrupted recovery appended, and every correctness criterion must
//! still hold. The sweeps move the first crash through the whole commit
//! window in 50us steps, like `tests/recovery.rs` does for single
//! crashes.

mod common;

use common::*;
use presumed_any::prelude::*;

const T: TxnId = TxnId(1);

const MIXED: [ProtocolKind; 3] = [ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC];

/// Sweep a crash-during-recovery schedule for one victim across the
/// commit window. `redo_window` is how long the first recovery runs
/// before the second crash lands.
fn double_crash_sweep(
    kind: CoordinatorKind,
    protos: &[ProtocolKind],
    abort: bool,
    victim: SiteId,
    redo_window: SimTime,
) {
    for crash_us in (900..2_600).step_by(50) {
        let mut s = Scenario::new(kind, protos);
        s.add_txn(T, SimTime::from_millis(1));
        if abort {
            s.txns[0].abort_at = Some(SimTime::from_micros(1_250));
        }
        let crash_at = SimTime::from_micros(crash_us);
        s.failures = FailureSchedule::double_crash(
            victim,
            crash_at,
            crash_at + SimTime::from_millis(40),
            redo_window,
            SimTime::from_millis(110),
        );
        let out = run_scenario(&s);
        let a = check_atomicity(&out.history);
        assert!(a.is_empty(), "double crash at {crash_us}us of {victim}: {a:?}");
        let o = check_operational(&out.history, &out.final_state);
        assert!(o.is_empty(), "double crash at {crash_us}us of {victim}: {o:?}");
        let ss = check_all_safe_states(&out.history, coord());
        assert!(ss.is_empty(), "double crash at {crash_us}us of {victim}: {ss:?}");
    }
}

#[test]
fn coordinator_double_crash_sweep_commit() {
    double_crash_sweep(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &MIXED,
        false,
        coord(),
        SimTime::from_micros(300),
    );
}

#[test]
fn coordinator_double_crash_sweep_abort() {
    double_crash_sweep(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &MIXED,
        true,
        coord(),
        SimTime::from_micros(300),
    );
}

#[test]
fn participant_double_crash_sweep_commit() {
    for victim in [site(1), site(2), site(3)] {
        double_crash_sweep(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &MIXED,
            false,
            victim,
            SimTime::from_micros(300),
        );
    }
}

#[test]
fn participant_double_crash_sweep_abort() {
    for victim in [site(1), site(2), site(3)] {
        double_crash_sweep(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &MIXED,
            true,
            victim,
            SimTime::from_micros(300),
        );
    }
}

/// The second crash lands the very instant recovery begins
/// (`redo_window` zero fuses the outages: the boundary recovery never
/// runs at all) and just after it begins (one microsecond of recovery).
/// Both extremes of the crash-during-recovery spectrum must converge.
#[test]
fn zero_and_tiny_redo_windows() {
    for redo_us in [0u64, 1, 50] {
        for victim in [coord(), site(3)] {
            double_crash_sweep(
                CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
                &MIXED,
                false,
                victim,
                SimTime::from_micros(redo_us),
            );
        }
    }
}

/// Single-protocol coordinators under double crashes: each presumption's
/// recovery procedure must be idempotent on its own, not just PrAny's.
#[test]
fn single_protocol_double_crash_sweeps() {
    for p in ProtocolKind::ALL {
        let protos = [p, p];
        double_crash_sweep(
            CoordinatorKind::Single(p),
            &protos,
            false,
            coord(),
            SimTime::from_micros(300),
        );
        double_crash_sweep(
            CoordinatorKind::Single(p),
            &protos,
            false,
            site(1),
            SimTime::from_micros(300),
        );
    }
}

/// Both the coordinator and a participant suffer crash-during-recovery
/// schedules, overlapping in time — the worst case the substrate can
/// schedule without partitioning.
#[test]
fn coordinator_and_participant_both_double_crash() {
    for (c_at, p_at) in [(1_300u64, 1_500u64), (1_500, 1_300), (1_700, 1_700)] {
        let mut s = Scenario::new(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict), &MIXED);
        s.add_txn(T, SimTime::from_millis(1));
        let mut f = FailureSchedule::double_crash(
            coord(),
            SimTime::from_micros(c_at),
            SimTime::from_micros(c_at) + SimTime::from_millis(30),
            SimTime::from_micros(400),
            SimTime::from_millis(80),
        );
        let p = FailureSchedule::double_crash(
            site(3),
            SimTime::from_micros(p_at),
            SimTime::from_micros(p_at) + SimTime::from_millis(25),
            SimTime::from_micros(200),
            SimTime::from_millis(100),
        );
        for o in p.outages {
            f.push(o.site, o.crash_at, o.recover_at);
        }
        s.failures = f;
        let out = run_scenario(&s);
        assert_fully_correct(&out);
        assert!(out.decided.contains_key(&T));
    }
}

/// Double crashes under 20% message loss: the recovery inquiries and
/// decision re-sends themselves ride lossy links, so the bounded
/// exponential backoff is what drives convergence.
#[test]
fn double_crash_under_message_loss() {
    for seed in 0..4 {
        let mut s = Scenario::new(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict), &MIXED);
        s.network = NetworkConfig::lossy(0.2);
        s.seed = seed;
        s.add_txn(T, SimTime::from_millis(1));
        s.failures = FailureSchedule::double_crash(
            site(2),
            SimTime::from_micros(1_500),
            SimTime::from_millis(35),
            SimTime::from_micros(500),
            SimTime::from_millis(90),
        );
        let out = run_scenario(&s);
        assert_fully_correct(&out);
    }
}
