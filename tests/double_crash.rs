//! Double-crash sweeps: crash-during-recovery schedules
//! (`FailureSchedule::double_crash`) moved across the commit window.
//!
//! A site crashes, comes back, gets a short window to re-run its §4.2
//! recovery procedure (re-building the protocol table, re-sending
//! decisions, re-inquiring), and crashes *again* before that recovery
//! can finish. Recovery must be idempotent: the second restart re-runs
//! the same log analysis over a log that now also contains whatever the
//! interrupted recovery appended, and every correctness criterion must
//! still hold. The sweeps move the first crash through the whole commit
//! window in 50us steps, like `tests/recovery.rs` does for single
//! crashes.

mod common;

use common::*;
use presumed_any::prelude::*;

const T: TxnId = TxnId(1);

const MIXED: [ProtocolKind; 3] = [ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC];

/// Sweep a crash-during-recovery schedule for one victim across the
/// commit window. `redo_window` is how long the first recovery runs
/// before the second crash lands.
fn double_crash_sweep(
    kind: CoordinatorKind,
    protos: &[ProtocolKind],
    abort: bool,
    victim: SiteId,
    redo_window: SimTime,
) {
    for crash_us in (900..2_600).step_by(50) {
        let mut s = Scenario::new(kind, protos);
        s.add_txn(T, SimTime::from_millis(1));
        if abort {
            s.txns[0].abort_at = Some(SimTime::from_micros(1_250));
        }
        let crash_at = SimTime::from_micros(crash_us);
        s.failures = FailureSchedule::double_crash(
            victim,
            crash_at,
            crash_at + SimTime::from_millis(40),
            redo_window,
            SimTime::from_millis(110),
        );
        let out = run_scenario(&s);
        let a = check_atomicity(&out.history);
        assert!(a.is_empty(), "double crash at {crash_us}us of {victim}: {a:?}");
        let o = check_operational(&out.history, &out.final_state);
        assert!(o.is_empty(), "double crash at {crash_us}us of {victim}: {o:?}");
        let ss = check_all_safe_states(&out.history, coord());
        assert!(ss.is_empty(), "double crash at {crash_us}us of {victim}: {ss:?}");
    }
}

#[test]
fn coordinator_double_crash_sweep_commit() {
    double_crash_sweep(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &MIXED,
        false,
        coord(),
        SimTime::from_micros(300),
    );
}

#[test]
fn coordinator_double_crash_sweep_abort() {
    double_crash_sweep(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &MIXED,
        true,
        coord(),
        SimTime::from_micros(300),
    );
}

#[test]
fn participant_double_crash_sweep_commit() {
    for victim in [site(1), site(2), site(3)] {
        double_crash_sweep(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &MIXED,
            false,
            victim,
            SimTime::from_micros(300),
        );
    }
}

#[test]
fn participant_double_crash_sweep_abort() {
    for victim in [site(1), site(2), site(3)] {
        double_crash_sweep(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &MIXED,
            true,
            victim,
            SimTime::from_micros(300),
        );
    }
}

/// The second crash lands the very instant recovery begins
/// (`redo_window` zero fuses the outages: the boundary recovery never
/// runs at all) and just after it begins (one microsecond of recovery).
/// Both extremes of the crash-during-recovery spectrum must converge.
#[test]
fn zero_and_tiny_redo_windows() {
    for redo_us in [0u64, 1, 50] {
        for victim in [coord(), site(3)] {
            double_crash_sweep(
                CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
                &MIXED,
                false,
                victim,
                SimTime::from_micros(redo_us),
            );
        }
    }
}

/// Single-protocol coordinators under double crashes: each presumption's
/// recovery procedure must be idempotent on its own, not just PrAny's.
#[test]
fn single_protocol_double_crash_sweeps() {
    for p in ProtocolKind::ALL {
        let protos = [p, p];
        double_crash_sweep(
            CoordinatorKind::Single(p),
            &protos,
            false,
            coord(),
            SimTime::from_micros(300),
        );
        double_crash_sweep(
            CoordinatorKind::Single(p),
            &protos,
            false,
            site(1),
            SimTime::from_micros(300),
        );
    }
}

/// Both the coordinator and a participant suffer crash-during-recovery
/// schedules, overlapping in time — the worst case the substrate can
/// schedule without partitioning.
#[test]
fn coordinator_and_participant_both_double_crash() {
    for (c_at, p_at) in [(1_300u64, 1_500u64), (1_500, 1_300), (1_700, 1_700)] {
        let mut s = Scenario::new(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict), &MIXED);
        s.add_txn(T, SimTime::from_millis(1));
        let mut f = FailureSchedule::double_crash(
            coord(),
            SimTime::from_micros(c_at),
            SimTime::from_micros(c_at) + SimTime::from_millis(30),
            SimTime::from_micros(400),
            SimTime::from_millis(80),
        );
        let p = FailureSchedule::double_crash(
            site(3),
            SimTime::from_micros(p_at),
            SimTime::from_micros(p_at) + SimTime::from_millis(25),
            SimTime::from_micros(200),
            SimTime::from_millis(100),
        );
        for o in p.outages {
            f.push(o.site, o.crash_at, o.recover_at);
        }
        s.failures = f;
        let out = run_scenario(&s);
        assert_fully_correct(&out);
        assert!(out.decided.contains_key(&T));
    }
}

// ---------------------------------------------------------------------
// WAL-byte-level double crashes: first crash inside `truncate_prefix`,
// second during the recovery that follows it
// ---------------------------------------------------------------------

mod gc_bytes {
    use presumed_any::types::{LogPayload, TxnId};
    use presumed_any::wal::tempdir::TempDir;
    use presumed_any::wal::{FileLog, Lsn, StableLog};
    use std::fs;

    fn end(t: u64) -> LogPayload {
        LogPayload::End { txn: TxnId::new(t) }
    }

    /// Byte images for the sweep: the pre-GC log (10 forced records)
    /// and the complete rewrite sibling `truncate_prefix(Lsn(6))` would
    /// have produced, captured by running a real GC on a scratch copy.
    fn images(dir: &TempDir) -> (Vec<u8>, Vec<u8>) {
        let scratch = dir.path().join("scratch");
        {
            let mut log = FileLog::create(&scratch).unwrap();
            for i in 0..10 {
                log.append(end(i), true).unwrap();
            }
        }
        let pre_gc = fs::read(&scratch).unwrap();
        {
            let mut log = FileLog::open(&scratch).unwrap();
            log.truncate_prefix(Lsn(6)).unwrap();
        }
        let rewrite = fs::read(&scratch).unwrap();
        (pre_gc, rewrite)
    }

    /// First crash: inside `truncate_prefix`, after `k` bytes of the
    /// `.rewrite` sibling reached disk but before the rename — the main
    /// file still holds the pre-GC image. Recovery must scan the full
    /// pre-GC log, clear the sibling, and be able to redo the GC.
    ///
    /// Second crash: during that recovery, tearing `j` bytes off
    /// whatever the interrupted recovery had appended after its redone
    /// GC. The second restart must recover the valid record prefix,
    /// keep the redone low-water mark, and accept appends.
    #[test]
    fn gc_crash_then_recovery_scan_crash_sweep() {
        let dir = TempDir::new("double-crash-gc").unwrap();
        let (pre_gc, rewrite) = images(&dir);

        // k sweeps the sibling from empty through mid-header, mid-frame
        // and complete-but-unrenamed; step 7 stays misaligned with the
        // frame boundaries so every kind of partial write is visited.
        for k in (0..=rewrite.len()).step_by(7) {
            let path = dir.path().join(format!("wal-k{k}"));
            let sibling = path.with_extension("rewrite");
            fs::write(&path, &pre_gc).unwrap();
            fs::write(&sibling, &rewrite[..k]).unwrap();

            // First restart: the interrupted GC never happened.
            let mut log = FileLog::open(&path).unwrap();
            assert!(!sibling.exists(), "k={k}: stale .rewrite must be cleared");
            assert_eq!(log.records().unwrap().len(), 10, "k={k}: pre-GC log intact");
            assert_eq!(log.low_water_mark(), Lsn::ZERO, "k={k}");

            // The recovery redoes the GC and logs its own progress...
            log.truncate_prefix(Lsn(6)).unwrap();
            let after_gc = fs::metadata(&path).unwrap().len();
            log.append(end(100), true).unwrap();
            log.append(end(101), true).unwrap();
            let full = fs::metadata(&path).unwrap().len();
            drop(log);

            // ...and crashes again: tear j bytes off the recovery's own
            // appends, from one byte up to both records gone.
            let max_tear = (full - after_gc) as usize;
            for j in (1..=max_tear).step_by(5) {
                let torn_path = dir.path().join(format!("wal-k{k}-j{j}"));
                let torn = fs::read(&path).unwrap();
                fs::write(&torn_path, &torn[..torn.len() - j]).unwrap();

                // Second restart: valid prefix, preserved low water.
                let mut log = FileLog::open(&torn_path).unwrap();
                assert_eq!(
                    log.low_water_mark(),
                    Lsn(6),
                    "k={k} j={j}: redone GC must survive the second crash"
                );
                let recs = log.records().unwrap();
                assert!(
                    recs.iter().all(|r| r.lsn >= Lsn(6)),
                    "k={k} j={j}: no resurrected pre-GC records"
                );
                assert!(recs.len() >= 4, "k={k} j={j}: retained suffix survives");
                for (i, r) in recs.iter().enumerate() {
                    assert_eq!(r.lsn, Lsn(6 + i as u64), "k={k} j={j}: contiguous");
                }

                // And the log keeps working: append, crash, reopen.
                let resumed = log.next_lsn();
                log.append(end(200), true).unwrap();
                drop(log);
                let log = FileLog::open(&torn_path).unwrap();
                let recs = log.records().unwrap();
                assert_eq!(recs.last().unwrap().lsn, resumed, "k={k} j={j}");
                assert_eq!(log.next_lsn(), resumed.next(), "k={k} j={j}");
            }
        }
    }

    /// First crash a moment later: after the rename swapped the rewrite
    /// into place (the GC is durable) but before the recovering site got
    /// any further. The second crash again tears the recovery's tail.
    /// The GC must stick: low water 6, no pre-GC ghosts.
    #[test]
    fn gc_crash_after_rename_then_recovery_crash() {
        let dir = TempDir::new("double-crash-gc-renamed").unwrap();
        let (_, rewrite) = images(&dir);

        let path = dir.path().join("wal");
        fs::write(&path, &rewrite).unwrap();
        let mut log = FileLog::open(&path).unwrap();
        assert_eq!(log.low_water_mark(), Lsn(6));
        assert_eq!(log.records().unwrap().len(), 4);

        let before = fs::metadata(&path).unwrap().len();
        log.append(end(100), true).unwrap();
        let full = fs::metadata(&path).unwrap().len();
        drop(log);

        for j in 1..(full - before) as usize {
            let torn_path = dir.path().join(format!("wal-j{j}"));
            let torn = fs::read(&path).unwrap();
            fs::write(&torn_path, &torn[..torn.len() - j]).unwrap();

            let log = FileLog::open(&torn_path).unwrap();
            assert_eq!(log.low_water_mark(), Lsn(6), "j={j}");
            let recs = log.records().unwrap();
            assert_eq!(recs.len(), 4, "j={j}: torn recovery record dropped");
            assert!(recs.iter().all(|r| r.lsn >= Lsn(6)), "j={j}");
            assert_eq!(log.next_lsn(), Lsn(10), "j={j}");
        }
    }
}

/// Double crashes under 20% message loss: the recovery inquiries and
/// decision re-sends themselves ride lossy links, so the bounded
/// exponential backoff is what drives convergence.
#[test]
fn double_crash_under_message_loss() {
    for seed in 0..4 {
        let mut s = Scenario::new(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict), &MIXED);
        s.network = NetworkConfig::lossy(0.2);
        s.seed = seed;
        s.add_txn(T, SimTime::from_millis(1));
        s.failures = FailureSchedule::double_crash(
            site(2),
            SimTime::from_micros(1_500),
            SimTime::from_millis(35),
            SimTime::from_micros(500),
            SimTime::from_millis(90),
        );
        let out = run_scenario(&s);
        assert_fully_correct(&out);
    }
}
