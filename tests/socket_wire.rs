//! End-to-end tests of the socket wire backend (experiment E15):
//! multiple nodes in one process exchanging real loopback TCP frames,
//! with trace parity against the in-process reactor, WAL-only restart
//! recovery, reconnect churn, and backpressure shedding.
#![cfg(unix)]

use presumed_any::net::wire::{shared_history, AddressBook, NodeConfig, SocketNode, WireFaults};
use presumed_any::net::NetDelays;
use presumed_any::obs::{event_to_json, parse_flat_json, JsonValue};
use presumed_any::prelude::*;
use presumed_any::wal::tempdir::TempDir;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Delays so large that any timer firing in a clean run is a bug; the
/// protocol must make progress purely on message flow.
fn glacial() -> NetDelays {
    NetDelays {
        vote_timeout: Duration::from_secs(60),
        ack_resend: Duration::from_secs(60),
        inquiry_retry: Duration::from_secs(60),
        apply_retry: Duration::from_secs(60),
        paxos_completion: Duration::from_secs(60),
    }
}

/// Atomically (re)write the rendezvous file nodes re-read at each dial.
fn write_peers(path: &Path, entries: &[(u32, SocketAddr)]) {
    let tmp = path.with_extension("tmp");
    let body: String = entries.iter().map(|(s, a)| format!("{s} {a}\n")).collect();
    std::fs::write(&tmp, body).expect("write peers");
    std::fs::rename(&tmp, path).expect("rename peers");
}

fn node_config(
    cluster: &ClusterConfig,
    hosted: &[u32],
    peers: &Path,
    wal_dir: PathBuf,
) -> NodeConfig {
    std::fs::create_dir_all(&wal_dir).expect("wal dir");
    NodeConfig::new(
        cluster.clone(),
        hosted.iter().map(|&s| SiteId::new(s)).collect(),
        AddressBook::File(peers.to_path_buf()),
        wal_dir,
    )
}

/// Per-site event lines with the wall-clock fields (`at_us`,
/// `since_decision_us`) masked out — same comparison the reactor and
/// multi-reactor parity tests use.
fn masked_site_traces(events: &[ProtocolEvent]) -> BTreeMap<u64, Vec<String>> {
    let mut by_site: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for ev in events {
        let mut map = parse_flat_json(&event_to_json(ev)).expect("trace dialect");
        map.remove("at_us");
        map.remove("since_decision_us");
        let site = map["site"].as_u64().expect("site field");
        let line = map
            .iter()
            .map(|(k, v)| match v {
                JsonValue::Num(n) => format!("\"{k}\":{n}"),
                JsonValue::Str(s) => format!("\"{k}\":{s:?}"),
            })
            .collect::<Vec<_>>()
            .join(",");
        by_site.entry(site).or_default().push(format!("{{{line}}}"));
    }
    by_site
}

/// One clean transaction where the coordinator and the participant are
/// separate socket nodes must produce, per site, the same trace byte
/// for byte (modulo timestamps) as the in-process reactor: real TCP
/// under the engines changes nothing protocol-visible.
#[test]
fn socket_trace_is_byte_identical_to_reactor() {
    let kind = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
    let protos = [ProtocolKind::PrA];

    let reactor = {
        let sink = Arc::new(VecSink::new());
        let mut config = ReactorConfig::new(kind, &protos);
        config.cluster.delays = glacial();
        let mut cluster = ReactorCluster::spawn_with_sink(&config, Arc::clone(&sink) as _);
        let txn = cluster.next_txn();
        let parts = cluster.participants();
        cluster.apply(parts[0], txn, b"k", b"v");
        assert_eq!(cluster.commit(txn, &parts), Some(Outcome::Commit));
        cluster.settle(Duration::from_millis(300));
        let _ = cluster.shutdown();
        masked_site_traces(&sink.snapshot())
    };

    let socket = {
        let sink = Arc::new(VecSink::new());
        let dir = TempDir::new("socket-golden").expect("tempdir");
        let peers = dir.path().join("peers");
        let mut cluster = ClusterConfig::new(kind, &protos);
        cluster.delays = glacial();
        let history = shared_history();
        let mut coord = SocketNode::spawn_with(
            node_config(&cluster, &[0], &peers, dir.path().join("n0")),
            Some(Arc::clone(&sink) as _),
            Arc::clone(&history),
        )
        .expect("spawn coord node");
        let part = SocketNode::spawn_with(
            node_config(&cluster, &[1], &peers, dir.path().join("n1")),
            Some(Arc::clone(&sink) as _),
            Arc::clone(&history),
        )
        .expect("spawn part node");
        write_peers(&peers, &[(0, coord.local_addr()), (1, part.local_addr())]);
        let txn = coord.next_txn();
        let parts = coord.participants();
        coord.apply(parts[0], txn, b"k", b"v");
        assert_eq!(coord.commit(txn, &parts), Some(Outcome::Commit));
        coord.settle(Duration::from_millis(300));
        let _ = coord.shutdown();
        let _ = part.shutdown();
        assert!(check_atomicity(&history.lock().clone()).is_empty());
        masked_site_traces(&sink.snapshot())
    };

    assert_eq!(
        reactor.keys().collect::<Vec<_>>(),
        socket.keys().collect::<Vec<_>>(),
        "same sites traced"
    );
    for (site, lines) in &reactor {
        assert_eq!(
            lines, &socket[site],
            "site {site}: trace diverged between reactor and socket backends"
        );
    }
}

/// A mixed-protocol cluster split across three processes-worth of
/// nodes stays atomic across commits and aborts, and committed data
/// lands at every participant (verified from the merged reports).
#[test]
fn multi_node_mixed_protocols_stay_atomic() {
    let dir = TempDir::new("socket-atomic").expect("tempdir");
    let peers = dir.path().join("peers");
    let cluster = ClusterConfig::new(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &[ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC],
    );
    let history = shared_history();
    let mut coord = SocketNode::spawn_with(
        node_config(&cluster, &[0], &peers, dir.path().join("n0")),
        None,
        Arc::clone(&history),
    )
    .expect("coord node");
    let node_b = SocketNode::spawn_with(
        node_config(&cluster, &[1, 2], &peers, dir.path().join("nb")),
        None,
        Arc::clone(&history),
    )
    .expect("node b");
    let node_c = SocketNode::spawn_with(
        node_config(&cluster, &[3], &peers, dir.path().join("nc")),
        None,
        Arc::clone(&history),
    )
    .expect("node c");
    write_peers(
        &peers,
        &[
            (0, coord.local_addr()),
            (1, node_b.local_addr()),
            (2, node_b.local_addr()),
            (3, node_c.local_addr()),
        ],
    );

    let parts = coord.participants();
    for round in 0..6u64 {
        let txn = coord.next_txn();
        for &p in &parts {
            coord.apply(p, txn, format!("k{round}").as_bytes(), b"v");
        }
        let veto = round % 3 == 2;
        if veto {
            coord.set_intent(parts[round as usize % parts.len()], txn, Vote::No);
        }
        let outcome = coord.commit(txn, &parts).expect("decision");
        assert_eq!(
            outcome,
            if veto { Outcome::Abort } else { Outcome::Commit },
            "round {round}"
        );
    }
    coord.settle(Duration::from_millis(400));
    let _ = coord.shutdown();
    let rb = node_b.shutdown();
    let rc = node_c.shutdown();
    assert!(check_atomicity(&history.lock().clone()).is_empty());
    for report in [&rb, &rc] {
        for s in &report.cluster.sites {
            for round in [0u64, 1, 3, 4] {
                assert_eq!(
                    s.committed
                        .get(format!("k{round}").as_bytes())
                        .map(Vec::as_slice),
                    Some(b"v".as_slice()),
                    "site {} round {round}",
                    s.site
                );
            }
            for round in [2u64, 5] {
                assert!(
                    !s.committed.contains_key(format!("k{round}").as_bytes()),
                    "site {} leaked aborted round {round}",
                    s.site
                );
            }
        }
    }
}

/// Stop a participant node, restart it from its WAL files at a new
/// address, and commit again: recovery replays the logs (earlier
/// writes survive) and the coordinator's transport heals by redial —
/// visible as disconnect/connect churn in the wire metrics.
#[test]
fn participant_restart_recovers_wal_and_reconnects() {
    let dir = TempDir::new("socket-restart").expect("tempdir");
    let peers = dir.path().join("peers");
    let cluster = ClusterConfig::new(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &[ProtocolKind::PrA],
    );
    let history = shared_history();
    let mut coord = SocketNode::spawn_with(
        node_config(&cluster, &[0], &peers, dir.path().join("n0")),
        None,
        Arc::clone(&history),
    )
    .expect("coord node");
    let part = SocketNode::spawn_with(
        node_config(&cluster, &[1], &peers, dir.path().join("n1")),
        None,
        Arc::clone(&history),
    )
    .expect("part node");
    write_peers(&peers, &[(0, coord.local_addr()), (1, part.local_addr())]);
    let parts = coord.participants();

    let txn1 = coord.next_txn();
    coord.apply(parts[0], txn1, b"first", b"1");
    assert_eq!(coord.commit(txn1, &parts), Some(Outcome::Commit));
    coord.settle(Duration::from_millis(200));
    let _ = part.shutdown();

    // Same WAL directory, fresh process state, new kernel-chosen port.
    let part2 = SocketNode::spawn_with(
        node_config(&cluster, &[1], &peers, dir.path().join("n1")),
        None,
        Arc::clone(&history),
    )
    .expect("restarted part node");
    write_peers(&peers, &[(0, coord.local_addr()), (1, part2.local_addr())]);

    let txn2 = coord.next_txn();
    coord.apply(parts[0], txn2, b"second", b"2");
    assert_eq!(
        coord.commit(txn2, &parts),
        Some(Outcome::Commit),
        "commit after participant restart"
    );
    coord.settle(Duration::from_millis(200));

    let wire = coord.wire_metrics();
    assert!(
        wire.disconnects >= 1,
        "coordinator should observe the participant connection die: {wire:?}"
    );
    assert!(
        wire.connects >= 2,
        "coordinator should redial the restarted participant: {wire:?}"
    );

    let _ = coord.shutdown();
    let report = part2.shutdown();
    assert!(check_atomicity(&history.lock().clone()).is_empty());
    let site = &report.cluster.sites[0];
    assert_eq!(
        site.committed.get(b"first".as_slice()).map(Vec::as_slice),
        Some(b"1".as_slice()),
        "pre-restart write must survive via the WAL"
    );
    assert_eq!(
        site.committed.get(b"second".as_slice()).map(Vec::as_slice),
        Some(b"2".as_slice()),
        "post-restart write must land"
    );
}

/// A destination that never answers fills the bounded write queue;
/// further frames are shed and counted, not buffered without limit.
#[test]
fn bounded_write_queue_sheds_under_backpressure() {
    let dir = TempDir::new("socket-shed").expect("tempdir");
    let cluster = ClusterConfig::new(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &[ProtocolKind::PrA],
    );
    // Site 1's address points at a port nobody listens on.
    let dead: SocketAddr = "127.0.0.1:1".parse().expect("addr");
    let mut config = NodeConfig::new(
        cluster,
        vec![SiteId::new(0)],
        AddressBook::Static([(SiteId::new(1), dead)].into_iter().collect()),
        dir.path().to_path_buf(),
    );
    config.max_conn_queue_bytes = 256;
    config.faults = WireFaults::none();
    let coord = SocketNode::spawn(config).expect("coord node");
    let txn = TxnId::new(1);
    for i in 0..64u32 {
        coord.apply(
            SiteId::new(1),
            txn,
            format!("key-{i}").as_bytes(),
            &[0u8; 64],
        );
    }
    coord.settle(Duration::from_millis(300));
    let wire = coord.wire_metrics();
    assert!(
        wire.backpressure_drops > 0,
        "64 × 64-byte frames into a 256-byte queue must shed: {wire:?}"
    );
    assert!(
        wire.dials >= 1 && wire.connects == 0,
        "the dead address must never connect: {wire:?}"
    );
    // The transport's overload evidence surfaces into the protocol
    // counter grid: a forced-overflow run reports a nonzero count, and
    // re-surfacing a cumulative snapshot never double-counts.
    let registry = MetricsRegistry::new();
    wire.surface_into(&registry);
    wire.surface_into(&registry);
    assert_eq!(
        registry
            .snapshot(0)
            .total(presumed_any::obs::Counter::BackpressureDrops),
        wire.backpressure_drops,
        "wire drops must surface exactly once into the metrics grid"
    );
    let _ = coord.shutdown();
}
