#![allow(dead_code)] // each integration-test binary uses a different subset

//! Shared helpers for the integration tests.

use presumed_any::prelude::*;
use presumed_any::sim::{Trace, TraceKind};
use presumed_any::types::Payload;

/// The coordinator's site in every harness scenario.
pub fn coord() -> SiteId {
    SiteId::new(0)
}

/// Site `n` (participants are 1-based).
pub fn site(n: u32) -> SiteId {
    SiteId::new(n)
}

/// The log-write schedule of one site: trace note tags starting with
/// `force:` or `write:`, in order.
pub fn log_tags(trace: &Trace, s: SiteId) -> Vec<String> {
    trace
        .tag_schedule(s)
        .into_iter()
        .filter(|t| t.starts_with("force:") || t.starts_with("write:"))
        .collect()
}

/// Sites that *sent* an `Ack`, in first-ack order.
pub fn ack_senders(trace: &Trace) -> Vec<SiteId> {
    let mut out = Vec::new();
    for e in trace.entries() {
        if let TraceKind::Sent(m) = &e.kind {
            if matches!(m.payload, Payload::Ack { .. }) && !out.contains(&m.from) {
                out.push(m.from);
            }
        }
    }
    out
}

/// Count sent messages of a payload kind.
pub fn sent_count(trace: &Trace, kind: &str) -> usize {
    trace
        .entries()
        .iter()
        .filter(|e| matches!(&e.kind, TraceKind::Sent(m) if m.payload.kind_name() == kind))
        .count()
}

/// Assert a run satisfied *every* criterion in the paper: atomicity,
/// operational correctness and the safe state.
pub fn assert_fully_correct(out: &ScenarioOutcome) {
    let a = check_atomicity(&out.history);
    assert!(a.is_empty(), "atomicity: {a:?}");
    let o = check_operational(&out.history, &out.final_state);
    assert!(o.is_empty(), "operational: {o:?}");
    let s = check_all_safe_states(&out.history, coord());
    assert!(s.is_empty(), "safe state: {s:?}");
}

/// A scenario with one transaction (all-yes) at 1ms.
pub fn one_txn(kind: CoordinatorKind, protos: &[ProtocolKind]) -> Scenario {
    let mut s = Scenario::new(kind, protos);
    s.add_txn(TxnId::new(1), SimTime::from_millis(1));
    s
}

/// A scenario whose single transaction aborts because `no_voter` votes
/// "No" (everyone else prepared — the paper figures' abort situation
/// for the prepared participants).
pub fn one_txn_abort(kind: CoordinatorKind, protos: &[ProtocolKind], no_voter: SiteId) -> Scenario {
    let mut s = Scenario::new(kind, protos);
    s.add_txn_with_vote(TxnId::new(1), SimTime::from_millis(1), no_voter, Vote::No);
    s
}
