//! Property-based tests on the core data structures and invariants:
//! the WAL codec, the GC tracker, crash semantics, the lock table and
//! the history checkers.

use acp_wal::encode::{decode_frame, decode_payload, encode_frame, encode_payload, FrameOutcome};
use acp_wal::{GcTracker, LogRecord, Lsn, MemLog, StableLog};
use presumed_any::prelude::*;
use presumed_any::types::{LogPayload, ParticipantEntry};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// generators
// ---------------------------------------------------------------------

fn arb_protocol() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::PrN),
        Just(ProtocolKind::PrA),
        Just(ProtocolKind::PrC),
    ]
}

fn arb_outcome() -> impl Strategy<Value = Outcome> {
    prop_oneof![Just(Outcome::Commit), Just(Outcome::Abort)]
}

fn arb_mode() -> impl Strategy<Value = CommitMode> {
    prop_oneof![
        Just(CommitMode::PrN),
        Just(CommitMode::PrA),
        Just(CommitMode::PrC),
        Just(CommitMode::PrAny),
    ]
}

fn arb_entries() -> impl Strategy<Value = Vec<ParticipantEntry>> {
    prop::collection::vec((0u32..64, arb_protocol()), 0..6).prop_map(|v| {
        v.into_iter()
            .map(|(s, p)| ParticipantEntry::new(SiteId::new(s), p))
            .collect()
    })
}

fn arb_payload() -> impl Strategy<Value = LogPayload> {
    let txn = (0u64..1_000).prop_map(TxnId::new);
    prop_oneof![
        (txn.clone(), arb_entries(), arb_mode()).prop_map(|(txn, participants, mode)| {
            LogPayload::Initiation {
                txn,
                participants,
                mode,
            }
        }),
        (txn.clone(), arb_outcome(), arb_entries()).prop_map(|(txn, outcome, participants)| {
            LogPayload::CoordDecision {
                txn,
                outcome,
                participants,
            }
        }),
        txn.clone().prop_map(|txn| LogPayload::End { txn }),
        (txn.clone(), 0u32..64).prop_map(|(txn, c)| LogPayload::Prepared {
            txn,
            coordinator: SiteId::new(c)
        }),
        (txn.clone(), arb_outcome())
            .prop_map(|(txn, outcome)| LogPayload::PartDecision { txn, outcome }),
        txn.clone().prop_map(|txn| LogPayload::PartEnd { txn }),
        (
            txn,
            prop::collection::vec(any::<u8>(), 0..24),
            prop::option::of(prop::collection::vec(any::<u8>(), 0..24)),
            prop::option::of(prop::collection::vec(any::<u8>(), 0..24)),
        )
            .prop_map(|(txn, key, before, after)| LogPayload::Update {
                txn,
                key,
                before,
                after
            }),
    ]
}

// ---------------------------------------------------------------------
// codec properties
// ---------------------------------------------------------------------

proptest! {
    /// Every payload round-trips through the binary codec.
    #[test]
    fn payload_roundtrip(payload in arb_payload()) {
        let encoded = encode_payload(&payload);
        let decoded = decode_payload(&encoded).expect("decode");
        prop_assert_eq!(decoded, payload);
    }

    /// Every framed record round-trips, and any strict prefix of the
    /// frame is recognized as torn rather than misparsed.
    #[test]
    fn frame_roundtrip_and_prefixes_torn(
        payload in arb_payload(),
        lsn in 0u64..1_000_000,
        forced in any::<bool>(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let record = LogRecord { lsn: Lsn(lsn), forced, payload };
        let frame = encode_frame(&record);
        match decode_frame(&frame, 0).expect("decode") {
            FrameOutcome::Record(decoded, consumed) => {
                prop_assert_eq!(&decoded, &record);
                prop_assert_eq!(consumed, frame.len());
            }
            FrameOutcome::Torn => prop_assert!(false, "full frame read as torn"),
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((frame.len() - 1) as f64 * cut_fraction) as usize;
        prop_assert!(matches!(
            decode_frame(&frame[..cut], 0).expect("prefix decode"),
            FrameOutcome::Torn
        ));
    }

    /// Corrupting any single byte of a frame never yields a *different*
    /// record: it is either detected (torn/error) or — for bytes beyond
    /// the CRC's reach, of which there are none — identical.
    #[test]
    fn frame_single_byte_corruption_detected(
        payload in arb_payload(),
        byte in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let record = LogRecord { lsn: Lsn(7), forced: true, payload };
        let mut frame = encode_frame(&record);
        let idx = byte % frame.len();
        frame[idx] ^= flip;
        match decode_frame(&frame, 0) {
            Ok(FrameOutcome::Record(decoded, _)) => {
                // The only byte a flip could leave valid is… none: magic,
                // length, body and CRC are all covered. Reaching here
                // with different content is a checksum failure.
                prop_assert_eq!(decoded, record, "corruption slipped through");
            }
            Ok(FrameOutcome::Torn) | Err(_) => {}
        }
    }
}

// ---------------------------------------------------------------------
// log / GC properties
// ---------------------------------------------------------------------

proptest! {
    /// The GC tracker's releasable point never regresses and never
    /// exceeds the log tail.
    #[test]
    fn gc_releasable_is_monotone(payloads in prop::collection::vec(arb_payload(), 1..60)) {
        let mut tracker = GcTracker::new();
        let mut last = Lsn(0);
        for (i, p) in payloads.iter().enumerate() {
            tracker.note(Lsn(i as u64), p);
            let r = tracker.releasable();
            prop_assert!(r >= last, "releasable regressed: {last:?} -> {r:?}");
            prop_assert!(r <= Lsn(i as u64 + 1));
            last = r;
        }
    }

    /// MemLog: a crash preserves exactly the records up to the last
    /// force/flush; appends after recovery reuse the lost LSNs.
    #[test]
    fn memlog_crash_keeps_forced_prefix(
        ops in prop::collection::vec((arb_payload(), any::<bool>()), 1..40)
    ) {
        let mut log = MemLog::new();
        let mut durable = 0usize;
        let mut pending = 0usize;
        for (p, force) in &ops {
            log.append(p.clone(), *force).expect("append");
            pending += 1;
            if *force {
                durable += pending;
                pending = 0;
            }
        }
        log.crash();
        let records = log.records().expect("records");
        prop_assert_eq!(records.len(), durable);
        // Dense LSNs from zero.
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(r.lsn, Lsn(i as u64));
        }
        prop_assert_eq!(log.next_lsn(), Lsn(durable as u64));
    }

    /// Truncating at the releasable point then rebuilding the tracker
    /// from the remaining records yields the same pinned set.
    #[test]
    fn gc_truncate_rebuild_consistent(payloads in prop::collection::vec(arb_payload(), 1..40)) {
        let mut log = MemLog::new();
        let mut tracker = GcTracker::new();
        for p in &payloads {
            let lsn = log.next_lsn();
            tracker.note(lsn, p);
            log.append(p.clone(), true).expect("append");
        }
        let releasable = tracker.releasable();
        log.truncate_prefix(releasable).expect("truncate");
        tracker.reclaimed(releasable);
        let rebuilt = GcTracker::from_records(&log.records().expect("records"));
        prop_assert_eq!(tracker.pinned(), rebuilt.pinned());
    }
}

// ---------------------------------------------------------------------
// checker properties
// ---------------------------------------------------------------------

proptest! {
    /// Histories in which every participant enforces the decided outcome
    /// are always judged atomic; flipping one enforcement always
    /// triggers a violation.
    #[test]
    fn atomicity_checker_sound_and_sensitive(
        outcome in arb_outcome(),
        sites in prop::collection::btree_set(1u32..20, 1..6),
        flip_idx in any::<usize>(),
    ) {
        use presumed_any::prelude::ActaEvent;
        let txn = TxnId::new(1);
        let mut events = vec![ActaEvent::Decide {
            coordinator: SiteId::new(0),
            txn,
            outcome,
        }];
        for &s in &sites {
            events.push(ActaEvent::Enforce { participant: SiteId::new(s), txn, outcome });
        }
        let clean: History = events.iter().cloned().collect();
        prop_assert!(check_atomicity(&clean).is_empty());

        // Flip one enforcement.
        let i = 1 + flip_idx % sites.len();
        if let ActaEvent::Enforce { outcome, .. } = &mut events[i] {
            *outcome = outcome.opposite();
        }
        let dirty: History = events.into_iter().collect();
        prop_assert!(!check_atomicity(&dirty).is_empty());
    }
}

// ---------------------------------------------------------------------
// end-to-end property: random scenarios are always fully correct
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Any population, any vote pattern, any single crash: PrAny keeps
    /// every guarantee.
    #[test]
    fn prany_correct_for_random_single_fault_scenarios(
        protos in prop::collection::vec(arb_protocol(), 2..5),
        no_voter in prop::option::of(0usize..4),
        crash_site in 0u32..5,
        crash_at_us in 900u64..2_600,
        seed in 0u64..1_000,
    ) {
        let mut s = Scenario::new(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &protos,
        );
        s.seed = seed;
        s.add_txn(TxnId::new(1), SimTime::from_millis(1));
        if let Some(i) = no_voter {
            let victim = SiteId::new((i % protos.len()) as u32 + 1);
            s.txns[0].votes.insert(victim, Vote::No);
        }
        let victim = SiteId::new(crash_site % (protos.len() as u32 + 1));
        s.failures = FailureSchedule::single(
            victim,
            SimTime::from_micros(crash_at_us),
            SimTime::from_micros(crash_at_us) + SimTime::from_millis(150),
        );
        let out = acp_core::harness::run_scenario(&s);
        let a = check_atomicity(&out.history);
        prop_assert!(a.is_empty(), "{a:?}");
        let o = check_operational(&out.history, &out.final_state);
        prop_assert!(o.is_empty(), "{o:?}");
    }
}
