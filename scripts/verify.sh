#!/usr/bin/env bash
# Tier-1 verification: offline release build, full test suite, and a
# smoke run of the Theorem 1 experiment (exercises the simulator, the
# parallel model checker and the report pipeline end to end).
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "== cargo doc --no-deps --offline (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline -q

echo "== figure drift: regenerate results/figures/ and diff"
cargo run --release --offline -q -p acp-bench --bin exp_figures > /dev/null
git diff --exit-code -- results/figures/ \
  || { echo "FAIL: results/figures/ drifted from the rendering code —"; \
       echo "      commit the regenerated files"; exit 1; }

echo "== smoke: exp_theorem1 (U2PC must violate, PrAny must not)"
out="$(cargo run --release --offline -q -p acp-bench --bin exp_theorem1)"
echo "$out" | head -12

# The experiment's two headline facts, asserted mechanically: every
# U2PC row finds counterexamples, the PrAny row finds none.
echo "$out" | grep -E '^\| U2PC/PrC' | grep -qv '| 0 ' \
  || { echo "FAIL: U2PC/PrC found no counterexamples"; exit 1; }
echo "$out" | grep -E '^\| PrAny' | awk -F'|' '{gsub(/ /,"",$4); exit $4 != "0"}' \
  || { echo "FAIL: PrAny reported counterexamples"; exit 1; }

echo "== verify OK"
