#!/usr/bin/env bash
# Tier-1 verification: offline release build, full test suite, and a
# smoke run of the Theorem 1 experiment (exercises the simulator, the
# parallel model checker and the report pipeline end to end).
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

# The WAL fuzz suite honours PROPTEST_CASES (its fixed-seed default is
# 64 cases per property). Export a bigger value before calling this
# script for a longer campaign, e.g. PROPTEST_CASES=4096
# scripts/verify.sh — the smoke slice stays fast by default.
echo "== fuzz smoke: torn-write WAL suite (PROPTEST_CASES=${PROPTEST_CASES:-64})"
PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test -q --offline --test fuzz_wal

echo "== cargo doc --no-deps --offline (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline -q

echo "== figure drift: regenerate results/figures/ and diff"
cargo run --release --offline -q -p acp-bench --bin exp_figures > /dev/null
git diff --exit-code -- results/figures/ \
  || { echo "FAIL: results/figures/ drifted from the rendering code —"; \
       echo "      commit the regenerated files"; exit 1; }

echo "== fault matrix: regenerate results/exp_faults.txt and diff"
# exp_faults exits non-zero if any cell FAILs; the diff then catches
# silent drift of the committed matrix (a regression in either
# direction). Fixed seed count keeps the output deterministic.
cargo run --release --offline -q -p acp-bench --bin exp_faults > /dev/null
git diff --exit-code -- results/exp_faults.txt \
  || { echo "FAIL: results/exp_faults.txt drifted from the fault campaign —"; \
       echo "      investigate, then commit the regenerated matrix"; exit 1; }

echo "== group commit: sim accounting must match the analytic model"
# Smoke mode runs only the deterministic sim half (the binary exits
# non-zero on any model mismatch) and regenerates the committed table;
# the diff catches silent drift. Trace byte-stability with batching
# enabled is pinned by tests/group_commit.rs in the suite above. The
# threaded FileLog campaign (BENCH_group_commit.json) is machine-timed,
# so it is regenerated manually, not here.
ACP_GROUP_COMMIT_SMOKE=1 cargo run --release --offline -q -p acp-bench --bin exp_group_commit > /dev/null
git diff --exit-code -- results/exp_group_commit.txt \
  || { echo "FAIL: results/exp_group_commit.txt drifted from the batched cost model —"; \
       echo "      investigate, then commit the regenerated table"; exit 1; }

echo "== trace replay: ACTA predicates over the committed corpus"
# Replays results/figures/traces.jsonl against event-level safe-state
# predicates (with mutation controls proving they can fail) and
# regenerates Theorem 1 counterexample traces, which the ACTA
# atomicity + safe-state checkers must flag. Exits non-zero itself.
cargo run --release --offline -q -p acp-bench --bin replay | tail -6

echo "== runtime smoke: reactor vs threaded backends (correctness slice)"
# Small fixed workload on both runtime backends: every transaction
# must commit, the reactor must genuinely multiplex (inflight > 1)
# and must stream live metrics snapshots. The machine-timed campaign
# (BENCH_runtime.json) is regenerated manually, not here.
ACP_RUNTIME_SMOKE=1 cargo run --release --offline -q -p acp-bench --bin exp_runtime | tail -3

echo "== multi-reactor smoke: sharded event loop (determinism + E14 slice)"
# Small fixed workload at 1 and 2 reactors: every transaction must
# commit, cross-shard mailboxes must carry real traffic at N = 2, every
# shard must stream metrics snapshots and its fsync domain must
# coalesce. 1-vs-N trace/counter determinism is pinned by
# tests/multi_reactor.rs in the suite above. The machine-timed campaign
# (BENCH_multi_reactor.json) is regenerated manually, not here.
ACP_MULTI_REACTOR_SMOKE=1 cargo run --release --offline -q -p acp-bench --bin exp_multi_reactor | tail -3

echo "== socket smoke: multi-process cluster over real TCP (kill -9 + recovery)"
# Coordinator and two participant processes over loopback sockets: a
# short mixed load with a kill -9 of a participant and of the
# coordinator, both restarted from their WALs. The parent merges the
# per-process trace files and replays the cross-process ACTA
# predicates (with mutation controls); the binary exits non-zero on
# any violation or missing recovery evidence. Byte-identity of the
# socket trace against the in-process reactor is pinned by
# tests/socket_wire.rs in the suite above.
ACP_SOCKET_SMOKE=1 cargo run --release --offline -q -p acp-bench --bin exp_socket | tail -3

echo "== paxos smoke: replicated coordinator (cost grid + leader kill -9 matrix)"
# Part A checks the sim's measured counters against the closed-form
# Paxos Commit cost model on a 9-cell n x f grid. Part B runs the
# coordinator-kill matrix over real OS processes: with f=0 the cluster
# provably blocks in-doubt after the leader dies; with f=1 (3
# acceptors) an acceptor's watchdog completes the commit with the
# leader still dead. The binary exits non-zero on any mismatch,
# blocked/unblocked inversion, ACTA violation or missing recovery
# evidence.
ACP_PAXOS_SMOKE=1 cargo run --release --offline -q -p acp-bench --bin exp_paxos | tail -3

echo "== workload smoke: open-loop overload (admission on vs off at the knee)"
# One overloaded cell run twice — admission off, then bounded: the
# bounded run must shed (the door actually cycles) and must commit at
# least the uncontrolled goodput inside the fixed measurement horizon.
# The full 48-cell sweep (BENCH_workload.json) is machine-timed, so it
# is regenerated manually, not here.
ACP_WORKLOAD_SMOKE=1 cargo run --release --offline -q -p acp-bench --bin exp_workload | tail -5

echo "== smoke: exp_theorem1 (U2PC must violate, PrAny must not)"
out="$(cargo run --release --offline -q -p acp-bench --bin exp_theorem1)"
echo "$out" | head -12

# The experiment's two headline facts, asserted mechanically: every
# U2PC row finds counterexamples, the PrAny row finds none.
echo "$out" | grep -E '^\| U2PC/PrC' | grep -qv '| 0 ' \
  || { echo "FAIL: U2PC/PrC found no counterexamples"; exit 1; }
echo "$out" | grep -E '^\| PrAny' | awk -F'|' '{gsub(/ /,"",$4); exit $4 != "0"}' \
  || { echo "FAIL: PrAny reported counterexamples"; exit 1; }

echo "== verify OK"
