//! # presumed-any
//!
//! A complete, executable reproduction of **"Atomicity with Incompatible
//! Presumptions"** (Al-Houmaily & Chrysanthis, PODS 1999): the Presumed
//! Any (PrAny) atomic commit protocol that integrates the presumed
//! nothing (PrN), presumed abort (PrA) and presumed commit (PrC)
//! two-phase-commit variants despite their conflicting presumptions —
//! together with every substrate needed to run, test, model-check and
//! benchmark it.
//!
//! ## Quick start
//!
//! ```
//! use presumed_any::prelude::*;
//!
//! // A multidatabase: a PrA site and a PrC site behind one PrAny
//! // coordinator.
//! let mut scenario = Scenario::new(
//!     CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
//!     &[ProtocolKind::PrA, ProtocolKind::PrC],
//! );
//! scenario.add_txn(TxnId::new(1), SimTime::from_millis(1));
//!
//! let outcome = run_scenario(&scenario);
//! assert_eq!(outcome.decided[&TxnId::new(1)], Outcome::Commit);
//! assert!(check_atomicity(&outcome.history).is_empty());
//! assert!(check_operational(&outcome.history, &outcome.final_state).is_empty());
//! ```
//!
//! ## Crate map
//!
//! | re-export | crate | what it is |
//! |---|---|---|
//! | [`types`] | `acp-types` | ids, protocols, messages, log payloads |
//! | [`obs`] | `acp-obs` | typed event tracing, cost metrics, figure rendering |
//! | [`wal`] | `acp-wal` | write-ahead-log substrate (memory + file) |
//! | [`sim`] | `acp-sim` | deterministic discrete-event simulator |
//! | [`core`] | `acp-core` | the protocol engines + scenario harness |
//! | [`acta`] | `acp-acta` | executable ACTA correctness criteria |
//! | [`engine`] | `acp-engine` | per-site transactional KV storage |
//! | [`check`] | `acp-check` | bounded model checker |
//! | [`net`] | `acp-net` | four runtimes: threaded actors, reactor, sharded multi-reactor, real TCP sockets |
//! | [`workload`] | `acp-workload` | workload/population/failure generators |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use acp_acta as acta;
pub use acp_check as check;
pub use acp_core as core;
pub use acp_engine as engine;
pub use acp_net as net;
pub use acp_obs as obs;
pub use acp_sim as sim;
pub use acp_types as types;
pub use acp_wal as wal;
pub use acp_workload as workload;

/// The things almost every user of the library needs.
pub mod prelude {
    pub use acp_acta::{
        check_atomicity, check_operational, safe_state::check_all_safe_states, ActaEvent,
        FinalState, History,
    };
    pub use acp_check::{check, CheckConfig, CheckReport};
    pub use acp_core::cost::{predict, Population, PredictedCosts};
    pub use acp_core::harness::{
        run_scenario, run_scenario_with_sink, Scenario, ScenarioOutcome, TimerDelays, TxnSpec,
    };
    pub use acp_core::{select_mode, Action, CommitPlan, Coordinator, Participant};
    pub use acp_net::{
        AdmissionConfig, AdmissionController, Cluster, ClusterConfig, MultiReactorCluster,
        MultiReactorConfig, ReactorCluster, ReactorConfig,
    };
    #[cfg(unix)]
    pub use acp_net::{AddressBook, NodeConfig, SocketNode, WireFaults};
    pub use acp_obs::{
        CountingSink, MetricsRegistry, MetricsTimeline, ProtoLabel, ProtocolEvent, TraceSink,
        VecSink,
    };
    pub use acp_sim::{FailureSchedule, NetworkConfig, SimTime};
    pub use acp_types::{
        CommitMode, CoordinatorKind, CostCounters, Outcome, ProtocolKind, SelectionPolicy, SiteId,
        TxnId, Vote,
    };
    pub use acp_wal::{FileLog, MemLog, StableLog};
    pub use acp_workload::{
        AttemptOutcome, FailurePlan, LifecycleLedger, OpenLoopArrivals, OpenLoopPlan, PlannedTxn,
        PopulationMix, RetryPolicy, TxnMix, TxnPlan, TxnShape, ZipfKeyspace,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_quickstart_shape_works() {
        let mut s = Scenario::new(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
        );
        s.add_txn(TxnId::new(1), SimTime::from_millis(1));
        let out = run_scenario(&s);
        assert_eq!(out.decided[&TxnId::new(1)], Outcome::Commit);
        assert!(check_atomicity(&out.history).is_empty());
    }
}
