//! Federated banking under fire: a workload-driven failure campaign.
//!
//! A clearing house (PrAny coordinator) settles transfers across six
//! member banks that never agreed on a commit protocol. We generate a
//! randomized transaction mix (some transfers abort, some are read-only
//! balance checks), inject crashes at a configurable rate, run the
//! whole thing deterministically, and check every correctness criterion
//! of the paper over the resulting ACTA history.
//!
//! ```sh
//! cargo run --example federated_banking
//! ```

use presumed_any::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 2026;
    let mut rng = StdRng::seed_from_u64(seed);

    // Six banks with the mdbs population mix (PrN/PrA common, PrC new).
    let protocols = PopulationMix::mdbs().sample_n(&mut rng, 6);
    println!("member banks:");
    for (i, p) in protocols.iter().enumerate() {
        println!("  bank {} speaks {p}", i + 1);
    }

    let mut scenario = Scenario::new(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &protocols,
    );
    scenario.network = NetworkConfig::lossy(0.02); // 2% message loss
    scenario.seed = seed;

    // 150 transfers: 2–4 banks each, 10% abort, 20% read-only legs.
    let mix = TxnMix {
        count: 150,
        min_participants: 2,
        max_participants: 4,
        abort_probability: 0.10,
        read_only_probability: 0.20,
        inter_start: SimTime::from_millis(3),
    };
    let plans = mix.generate(&mut rng, &scenario.participant_sites());
    let horizon = plans.last().expect("plans").start_at + SimTime::from_millis(500);
    for plan in &plans {
        let spec = scenario.add_txn(plan.txn, plan.start_at);
        spec.participants = plan.participants.clone();
        spec.votes = plan.votes.clone();
    }

    // Crashes: roughly 8 per simulated second across all sites,
    // including the coordinator.
    let all_sites: Vec<SiteId> = std::iter::once(SiteId::new(0))
        .chain(scenario.participant_sites())
        .collect();
    let failure_plan = FailurePlan {
        crashes_per_second: 8.0,
        max_outage: SimTime::from_millis(80),
    };
    scenario.failures = failure_plan.schedule(&mut rng, &all_sites, horizon);
    println!(
        "\nworkload: {} transfers, {} crash/recovery events over {horizon}",
        plans.len(),
        scenario.failures.outages.len()
    );

    let out = run_scenario(&scenario);

    let commits = out
        .decided
        .values()
        .filter(|o| **o == Outcome::Commit)
        .count();
    let aborts = out
        .decided
        .values()
        .filter(|o| **o == Outcome::Abort)
        .count();
    println!(
        "\ndecided: {commits} commits, {aborts} aborts ({} events)",
        out.events_processed
    );

    let atomicity = check_atomicity(&out.history);
    let operational = check_operational(&out.history, &out.final_state);
    let safe = check_all_safe_states(&out.history, SiteId::new(0));
    println!("atomicity violations:   {}", atomicity.len());
    println!("operational violations: {}", operational.len());
    println!("safe-state violations:  {}", safe.len());
    println!(
        "coordinator table at end: {} entries",
        out.coordinator_table_size
    );
    println!(
        "coordinator log retained: {} records",
        out.coordinator_log_retained
    );

    // Aggregate commit-processing costs.
    let mut total = CostCounters::zero();
    for plan in &plans {
        total += out.total_costs(plan.txn);
    }
    println!("\ntotal commit-processing cost: {total}");

    assert!(atomicity.is_empty(), "{atomicity:?}");
    assert!(operational.is_empty(), "{operational:?}");
    assert!(safe.is_empty(), "{safe:?}");
    println!(
        "\nevery transfer settled atomically; everyone forgot everything — Theorem 3 in action"
    );
}
