//! Quickstart: commit one transaction across a mixed PrA + PrC
//! multidatabase with a PrAny coordinator, and verify the run against
//! the paper's correctness criteria.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use presumed_any::prelude::*;

fn main() {
    // A two-site multidatabase: site 1 speaks presumed abort, site 2
    // speaks presumed commit. Their presumptions about forgotten
    // transactions are *opposite* — the incompatibility the paper is
    // about. The coordinator (site 0) runs Presumed Any.
    let mut scenario = Scenario::new(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &[ProtocolKind::PrA, ProtocolKind::PrC],
    );

    // One all-yes transaction, started 1ms into the run.
    let txn = TxnId::new(1);
    scenario.add_txn(txn, SimTime::from_millis(1));

    // Run it under the deterministic simulator.
    let out = run_scenario(&scenario);

    println!("decision: {}", out.decided[&txn]);
    for ((site, t), outcome) in &out.enforced {
        println!("  {site} enforced {outcome} for {t}");
    }

    // Functional correctness: everyone agreed (Definition 1, req. 1).
    let atomicity = check_atomicity(&out.history);
    println!("atomicity violations: {}", atomicity.len());

    // Operational correctness: everyone eventually forgot and can
    // garbage collect (Definition 1, reqs. 2–3).
    let operational = check_operational(&out.history, &out.final_state);
    println!("operational violations: {}", operational.len());
    println!(
        "coordinator protocol table at end: {} entries",
        out.coordinator_table_size
    );

    // The safe state (Definition 2) held at every forget point.
    let unsafe_states = check_all_safe_states(&out.history, SiteId::new(0));
    println!("safe-state violations: {}", unsafe_states.len());

    // What did commit processing cost?
    let measured = out.total_costs(txn);
    println!("measured: {measured}");
    let predicted = predict(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        Outcome::Commit,
        Population::new(0, 1, 1),
    );
    println!(
        "predicted: forces={} records={} messages={}",
        predicted.total_forces(),
        predicted.total_records(),
        predicted.messages
    );

    // And the full message/log trace, exactly like the paper's Figure 1.
    println!("\n--- trace ---");
    print!("{}", out.trace.render());

    assert!(atomicity.is_empty() && operational.is_empty() && unsafe_states.is_empty());
    println!("\nall checks passed");
}
