//! Travel booking across autonomous reservation systems — the classic
//! electronic-commerce workload the paper's introduction motivates
//! ("advanced future database applications such as electronic commerce,
//! multi-organizational workflows and web-based transactions").
//!
//! Three real OS threads play the sites, with file-backed write-ahead
//! logs and the storage engine holding the actual reservations:
//!
//! * the airline runs **PrA** (site 1),
//! * the hotel chain is a **legacy system with no commit protocol at
//!   all** — a gateway simulates its prepared state (exclusive right
//!   reservation + redo log) and speaks **PrC** on the wire (site 2),
//! * the car-rental agency still runs plain **PrN** (site 3).
//!
//! A PrAny travel-agent coordinator books a trip atomically across all
//! three, survives the hotel's crash mid-booking, and refuses to
//! half-book a trip when the car rental declines.
//!
//! ```sh
//! cargo run --example travel_booking
//! ```

use presumed_any::prelude::*;
use std::time::Duration;

fn main() {
    let mut config = ClusterConfig::new(
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &[ProtocolKind::PrA, ProtocolKind::PrC, ProtocolKind::PrN],
    );
    // The hotel (index 1) is a non-externalized legacy system behind a
    // gateway — the coordinator cannot tell the difference.
    config.gateways = vec![1];
    let mut cluster = Cluster::spawn(&config);
    let sites = cluster.participants();
    let (airline, hotel, car) = (sites[0], sites[1], sites[2]);

    // ---- Trip 1: a clean booking -------------------------------------
    let trip = cluster.next_txn();
    cluster.apply(airline, trip, b"flight/AA123/seat", b"17C");
    cluster.apply(hotel, trip, b"hotel/hilton/room", b"1204");
    cluster.apply(car, trip, b"car/compact", b"reserved");
    let outcome = cluster.commit(trip, &sites).expect("decision");
    println!("trip 1 ({trip}): {outcome}");

    // ---- Trip 2: the hotel's site crashes during commit ---------------
    let trip2 = cluster.next_txn();
    cluster.apply(airline, trip2, b"flight/AA124/seat", b"2A");
    cluster.apply(hotel, trip2, b"hotel/hilton/room2", b"0807");
    cluster.apply(car, trip2, b"car/suv", b"reserved");
    cluster.commit_async(trip2, &sites);
    cluster.crash(hotel, Duration::from_millis(250));
    println!("trip 2 ({trip2}): hotel site crashed mid-commit; waiting for recovery…");
    cluster.settle(Duration::from_millis(2_000));

    // ---- Trip 3: the car rental declines ------------------------------
    let trip3 = cluster.next_txn();
    cluster.apply(airline, trip3, b"flight/AA125/seat", b"9F");
    cluster.apply(hotel, trip3, b"hotel/marriott/room", b"3111");
    cluster.apply(car, trip3, b"car/convertible", b"reserved");
    cluster.set_intent(car, trip3, Vote::No); // no convertibles left
    let outcome3 = cluster.commit(trip3, &sites).expect("decision");
    println!("trip 3 ({trip3}): {outcome3} (car rental declined)");

    cluster.settle(Duration::from_millis(500));
    let report = cluster.shutdown();

    // What happened to trip 2? Scan the history. With the hotel down
    // through the voting phase, the coordinator's timeout aborts it —
    // atomically; had the crash landed after the votes, it commits and
    // the hotel learns the outcome by recovery inquiry. Either way, no
    // site may disagree.
    let trip2_decision = report.history.events().iter().find_map(|e| match e {
        presumed_any::prelude::ActaEvent::Decide { txn, outcome, .. } if *txn == trip2 => {
            Some(*outcome)
        }
        _ => None,
    });
    println!("trip 2 resolved as: {trip2_decision:?}");

    println!("\n--- final reservations ---");
    for s in &report.sites {
        if s.committed.is_empty() {
            continue;
        }
        println!("{}:", s.site);
        for (k, v) in &s.committed {
            println!(
                "  {} = {}",
                String::from_utf8_lossy(k),
                String::from_utf8_lossy(v)
            );
        }
    }

    let violations = check_atomicity(&report.history);
    println!("\natomicity violations: {}", violations.len());
    println!(
        "coordinator protocol table at shutdown: {} entries",
        report.coordinator_table_size
    );
    assert!(violations.is_empty(), "{violations:?}");

    // Trip 3 must have left no partial bookings anywhere.
    for s in &report.sites {
        assert!(
            !s.committed
                .keys()
                .any(|k| k.starts_with(b"car/convertible")),
            "half-booked trip at {}",
            s.site
        );
        assert!(
            !s.committed.keys().any(|k| k.starts_with(b"hotel/marriott")),
            "half-booked trip at {}",
            s.site
        );
    }
    println!("no partial bookings — atomicity held across incompatible protocols");
}
