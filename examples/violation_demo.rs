//! Watch U2PC break — and PrAny not break.
//!
//! §2 of the paper proves (Theorem 1) that the naive "union" coordinator
//! that talks each participant's dialect but keeps its own presumption
//! cannot guarantee atomicity. This example lets the bounded model
//! checker *find* the violating interleaving mechanically, prints the
//! counterexample trail and history, and then shows that PrAny survives
//! the exact same bounded adversary.
//!
//! ```sh
//! cargo run --example violation_demo
//! ```

use presumed_any::prelude::*;

fn explore(kind: CoordinatorKind) -> CheckReport {
    // One PrA participant, one PrC participant — the incompatible pair.
    let config = CheckConfig::new(kind, &[ProtocolKind::PrA, ProtocolKind::PrC]);
    check(&config)
}

fn main() {
    println!("bounded adversary: 1 crash, 1 message drop, 2 timer firings\n");

    for base in [ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC] {
        let kind = CoordinatorKind::U2pc(base);
        let report = explore(kind);
        println!(
            "{kind}: {} states, {} violations",
            report.states_explored,
            report.counterexamples.len()
        );
        if let Some(cx) = report.counterexamples.first() {
            println!("--- first counterexample ---");
            println!("{cx}");
        }
        assert!(!report.clean(), "Theorem 1 predicts a violation for {kind}");
    }

    println!("============================================================");
    let report = explore(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict));
    println!(
        "PrAny: {} states explored, {} terminal states, {} violations",
        report.states_explored,
        report.terminal_states,
        report.counterexamples.len()
    );
    assert!(report.clean(), "Theorem 3: PrAny must be atomic: {report}");

    println!("============================================================");
    let report = explore(CoordinatorKind::C2pc(ProtocolKind::PrN));
    println!(
        "C2PC: {} violations, but max terminal protocol-table size = {}",
        report.counterexamples.len(),
        report.max_terminal_table
    );
    assert!(report.clean());
    assert!(
        report.max_terminal_table > 0,
        "Theorem 2: some transaction is remembered forever"
    );
    println!(
        "C2PC is functionally correct yet operationally broken: \
         it reaches quiescent states still remembering terminated transactions."
    );
}
