//! # acp-types
//!
//! Core vocabulary shared by every crate in the Presumed Any workspace:
//! identifiers, protocol kinds, votes and outcomes, wire messages, log
//! record payloads, cost counters and the paper's taxonomy of atomic
//! commitment approaches (Figure 5).
//!
//! The types here are deliberately free of any I/O or runtime concern so
//! that the protocol engines in `acp-core` stay sans-IO: they can run
//! under the deterministic simulator (`acp-sim`), the bounded model
//! checker (`acp-check`) and the threaded runtime (`acp-net`) unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod error;
pub mod ids;
pub mod message;
pub mod protocol;
pub mod record;
pub mod taxonomy;

pub use cost::CostCounters;
pub use error::ProtocolViolation;
pub use ids::{SiteId, TxnId};
pub use message::{Message, Payload};
pub use protocol::{CommitMode, CoordinatorKind, Outcome, ProtocolKind, SelectionPolicy, Vote};
pub use record::{LogPayload, ParticipantEntry};
