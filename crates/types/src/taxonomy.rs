//! Figure 5: the paper's taxonomy of atomic commitment in universal
//! distributed environments, encoded as types.
//!
//! The taxonomy classifies database sites as *externalized* (the site
//! implements an ACP and exposes its commit operators) or
//! *non-externalized* (legacy systems that do not), and organizes the
//! approaches to global atomicity accordingly. This reproduction sits in
//! the externalized / unified branch: integrating sites whose
//! externalized ACPs are mutually incompatible.

use std::fmt;

/// Whether a site exposes its atomic commit protocol to the outside
/// world.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SiteClass {
    /// The site implements an ACP and makes its commit operators
    /// available through its interface.
    Externalized,
    /// The site does not expose an ACP (typical of legacy systems).
    NonExternalized,
}

/// Approaches for non-externalized sites (right subtree of Figure 5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NonExternalizedApproach {
    /// Modify each component local DBMS to incorporate and externalize
    /// an ACP.
    ModifyComponentDbms,
    /// Simulate a prepared-to-commit state on top of the unmodified
    /// system, via one of several techniques.
    SimulatePreparedState(SimulationTechnique),
}

/// Techniques for simulating a prepared state (leaves under the
/// "simulate a prepared state" node of Figure 5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SimulationTechnique {
    /// Commitment after the global decision (redo): data partitioning.
    DataPartitioning,
    /// Commitment after the global decision (redo): rerouting through
    /// the MDBS.
    Rerouting,
    /// Commitment after the global decision (redo): exclusive right
    /// reservation.
    ExclusiveRightReservation,
    /// Commitment after the global decision (redo): retry.
    Retry,
    /// Commitment before the global decision (undo): syntactic
    /// compensation.
    SyntacticCompensation,
    /// Commitment before the global decision (undo): semantic
    /// compensation (achieves only *semantic* atomicity).
    SemanticCompensation,
}

impl SimulationTechnique {
    /// All techniques in Figure 5's left-to-right order.
    pub const ALL: [SimulationTechnique; 6] = [
        SimulationTechnique::DataPartitioning,
        SimulationTechnique::Rerouting,
        SimulationTechnique::ExclusiveRightReservation,
        SimulationTechnique::Retry,
        SimulationTechnique::SyntacticCompensation,
        SimulationTechnique::SemanticCompensation,
    ];

    /// Does the technique guarantee traditional atomicity, or only the
    /// weaker *semantic atomicity*?
    #[must_use]
    pub fn guarantees_traditional_atomicity(self) -> bool {
        !matches!(self, SimulationTechnique::SemanticCompensation)
    }

    /// Is the local commitment performed *after* the global decision
    /// (redo family) or *before* it (undo family)?
    #[must_use]
    pub fn is_redo_family(self) -> bool {
        matches!(
            self,
            SimulationTechnique::DataPartitioning
                | SimulationTechnique::Rerouting
                | SimulationTechnique::ExclusiveRightReservation
                | SimulationTechnique::Retry
        )
    }
}

impl fmt::Display for SimulationTechnique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SimulationTechnique::DataPartitioning => "data partitioning",
            SimulationTechnique::Rerouting => "rerouting through MDBS",
            SimulationTechnique::ExclusiveRightReservation => "exclusive right reservation",
            SimulationTechnique::Retry => "retry",
            SimulationTechnique::SyntacticCompensation => "syntactic compensation",
            SimulationTechnique::SemanticCompensation => "semantic compensation",
        };
        f.write_str(s)
    }
}

/// The three top-level approaches of Figure 5.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Approach {
    /// Integrate the (possibly incompatible) externalized ACPs — the
    /// branch this paper, and this reproduction, belongs to.
    Externalized,
    /// Cope with sites that do not externalize an ACP.
    NonExternalized,
    /// Combine both, covering heterogeneous environments where some
    /// sites externalize ACPs and others do not.
    Unified,
}

impl Approach {
    /// All approaches.
    pub const ALL: [Approach; 3] = [
        Approach::Externalized,
        Approach::NonExternalized,
        Approach::Unified,
    ];
}

impl fmt::Display for Approach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Approach::Externalized => "externalized",
            Approach::NonExternalized => "non-externalized",
            Approach::Unified => "unified",
        };
        f.write_str(s)
    }
}

/// Render Figure 5's taxonomy as an ASCII tree (used by the
/// `exp_taxonomy` experiment binary).
#[must_use]
pub fn render_taxonomy() -> String {
    let mut out = String::new();
    out.push_str("Atomic Commitment in Universal Distributed Environments\n");
    out.push_str("├── Externalized\n");
    out.push_str("│   └── integrate incompatible ACPs  <-- this paper: Presumed Any\n");
    out.push_str("├── Non-externalized\n");
    out.push_str("│   ├── Modify component LDBMSs\n");
    out.push_str("│   └── Simulate a prepared state\n");
    out.push_str("│       ├── Commitment after (redo)\n");
    for t in &SimulationTechnique::ALL[..4] {
        out.push_str(&format!("│       │   ├── {t}\n"));
    }
    out.push_str("│       └── Commitment before (undo)\n");
    for t in &SimulationTechnique::ALL[4..] {
        let atomicity = if t.guarantees_traditional_atomicity() {
            "traditional"
        } else {
            "semantic"
        };
        out.push_str(&format!("│           ├── {t} ({atomicity} atomicity)\n"));
    }
    out.push_str("└── Unified\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_semantic_compensation_weakens_atomicity() {
        let weak: Vec<_> = SimulationTechnique::ALL
            .iter()
            .filter(|t| !t.guarantees_traditional_atomicity())
            .collect();
        assert_eq!(weak, vec![&SimulationTechnique::SemanticCompensation]);
    }

    #[test]
    fn redo_undo_families_partition_the_techniques() {
        let redo = SimulationTechnique::ALL
            .iter()
            .filter(|t| t.is_redo_family())
            .count();
        assert_eq!(redo, 4);
        assert_eq!(SimulationTechnique::ALL.len() - redo, 2);
    }

    #[test]
    fn rendered_taxonomy_mentions_every_leaf() {
        let tree = render_taxonomy();
        for t in SimulationTechnique::ALL {
            assert!(tree.contains(&t.to_string()), "missing {t}");
        }
        for a in Approach::ALL {
            // Top-level branches appear capitalized in the render.
            let label = a.to_string();
            assert!(
                tree.to_lowercase().contains(&label),
                "missing top-level branch {label}"
            );
        }
    }
}
