//! Wire messages exchanged between coordinator and participants.

use crate::ids::{SiteId, TxnId};
use crate::protocol::{Outcome, ProtocolKind, Vote};
use std::fmt;

/// The payload of a coordination message.
///
/// These are exactly the message kinds of the paper's protocols:
/// `Prepare` and `Vote` form the voting phase, `Decision` and `Ack` the
/// decision phase; `Inquiry`/`InquiryResponse` implement the recovery
/// dialogue a prepared participant holds with its coordinator.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Payload {
    /// Coordinator → participant: request to prepare to commit.
    Prepare {
        /// Transaction being prepared.
        txn: TxnId,
    },
    /// Participant → coordinator: the participant's vote.
    Vote {
        /// Transaction being voted on.
        txn: TxnId,
        /// The vote.
        vote: Vote,
    },
    /// Coordinator → participant: the final decision.
    Decision {
        /// Transaction being decided.
        txn: TxnId,
        /// Commit or abort.
        outcome: Outcome,
    },
    /// Participant → coordinator: acknowledgment of an enforced decision.
    Ack {
        /// Transaction being acknowledged.
        txn: TxnId,
    },
    /// Participant → coordinator: recovery-time inquiry about the
    /// outcome of a transaction the participant is in doubt about.
    ///
    /// Carries the participant's protocol so a PrAny coordinator can
    /// dynamically adopt the inquirer's presumption (§4.2) even when the
    /// transaction has been forgotten and the APP entry is gone.
    Inquiry {
        /// Transaction inquired about.
        txn: TxnId,
        /// The inquiring participant's commit protocol.
        protocol: ProtocolKind,
    },
    /// Coordinator → participant: reply to an inquiry.
    InquiryResponse {
        /// Transaction inquired about.
        txn: TxnId,
        /// The outcome the coordinator reports (possibly by presumption).
        outcome: Outcome,
    },

    // ----- Paxos Commit (Gray & Lamport) -----
    /// Leader → remote acceptor: a transaction's commit protocol has
    /// begun. Carries the participant roster so the acceptor can watch
    /// for completion and run leader failover if the leader dies before
    /// any phase-2a proposal reaches it.
    PaxosBegin {
        /// The transaction.
        txn: TxnId,
        /// Participant sites (one Paxos instance each).
        participants: Vec<SiteId>,
    },
    /// Candidate leader → acceptor: phase-1a ballot solicitation for
    /// every participant instance of the transaction at once.
    Phase1a {
        /// The transaction.
        txn: TxnId,
        /// The candidate's ballot number.
        ballot: u64,
    },
    /// Acceptor → candidate leader: phase-1b promise. Reports, per
    /// participant instance with an accepted value, the ballot it was
    /// accepted at and the value (`true` = Prepared). `forgotten` means
    /// the transaction already completed here and was garbage collected
    /// — the candidate should stand down.
    Phase1b {
        /// The transaction.
        txn: TxnId,
        /// The ballot being promised.
        ballot: u64,
        /// The transaction already completed and was forgotten here.
        forgotten: bool,
        /// Participant roster as known by this acceptor.
        participants: Vec<SiteId>,
        /// Accepted values: (instance participant, ballot, prepared).
        accepted: Vec<(SiteId, u64, bool)>,
    },
    /// Leader → acceptor: bundled phase-2a proposal — one value per
    /// participant instance (`true` = Prepared, `false` = Aborted).
    Phase2a {
        /// The transaction.
        txn: TxnId,
        /// The proposing leader's ballot.
        ballot: u64,
        /// Proposed value per participant instance.
        instances: Vec<(SiteId, bool)>,
    },
    /// Acceptor → leader: bundled phase-2b acceptance of every
    /// participant instance, externalized after one forced log write.
    Phase2b {
        /// The transaction.
        txn: TxnId,
        /// The ballot the values were accepted at.
        ballot: u64,
        /// Accepted value per participant instance.
        instances: Vec<(SiteId, bool)>,
    },
    /// Leader → acceptor: every participant acknowledged the decision;
    /// the acceptor may forget the transaction.
    PaxosForget {
        /// The transaction.
        txn: TxnId,
    },
}

impl Payload {
    /// The transaction this payload concerns.
    #[must_use]
    pub fn txn(&self) -> TxnId {
        match *self {
            Payload::Prepare { txn }
            | Payload::Vote { txn, .. }
            | Payload::Decision { txn, .. }
            | Payload::Ack { txn }
            | Payload::Inquiry { txn, .. }
            | Payload::InquiryResponse { txn, .. } => txn,
            Payload::PaxosBegin { txn, .. }
            | Payload::Phase1a { txn, .. }
            | Payload::Phase1b { txn, .. }
            | Payload::Phase2a { txn, .. }
            | Payload::Phase2b { txn, .. }
            | Payload::PaxosForget { txn } => txn,
        }
    }

    /// Short tag used by trace output and cost accounting.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Payload::Prepare { .. } => "prepare",
            Payload::Vote { .. } => "vote",
            Payload::Decision { .. } => "decision",
            Payload::Ack { .. } => "ack",
            Payload::Inquiry { .. } => "inquiry",
            Payload::InquiryResponse { .. } => "inquiry-response",
            Payload::PaxosBegin { .. } => "paxos-begin",
            Payload::Phase1a { .. } => "phase1a",
            Payload::Phase1b { .. } => "phase1b",
            Payload::Phase2a { .. } => "phase2a",
            Payload::Phase2b { .. } => "phase2b",
            Payload::PaxosForget { .. } => "paxos-forget",
        }
    }

    /// Is this one of the Paxos Commit message kinds (as opposed to the
    /// classic 2PC vocabulary shared by the presumption protocols)?
    #[must_use]
    pub fn is_paxos(&self) -> bool {
        matches!(
            self,
            Payload::PaxosBegin { .. }
                | Payload::Phase1a { .. }
                | Payload::Phase1b { .. }
                | Payload::Phase2a { .. }
                | Payload::Phase2b { .. }
                | Payload::PaxosForget { .. }
        )
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Prepare { txn } => write!(f, "prepare({txn})"),
            Payload::Vote { txn, vote } => write!(f, "vote({txn}, {vote})"),
            Payload::Decision { txn, outcome } => write!(f, "decision({txn}, {outcome})"),
            Payload::Ack { txn } => write!(f, "ack({txn})"),
            Payload::Inquiry { txn, protocol } => write!(f, "inquiry({txn}, {protocol})"),
            Payload::InquiryResponse { txn, outcome } => {
                write!(f, "inquiry-response({txn}, {outcome})")
            }
            Payload::PaxosBegin { txn, participants } => {
                write!(f, "paxos-begin({txn}, {} instances)", participants.len())
            }
            Payload::Phase1a { txn, ballot } => write!(f, "phase1a({txn}, b{ballot})"),
            Payload::Phase1b {
                txn,
                ballot,
                forgotten,
                accepted,
                ..
            } => {
                if *forgotten {
                    write!(f, "phase1b({txn}, b{ballot}, forgotten)")
                } else {
                    write!(f, "phase1b({txn}, b{ballot}, {} accepted)", accepted.len())
                }
            }
            Payload::Phase2a {
                txn,
                ballot,
                instances,
            } => write!(f, "phase2a({txn}, b{ballot}, {} instances)", instances.len()),
            Payload::Phase2b {
                txn,
                ballot,
                instances,
            } => write!(f, "phase2b({txn}, b{ballot}, {} instances)", instances.len()),
            Payload::PaxosForget { txn } => write!(f, "paxos-forget({txn})"),
        }
    }
}

/// An addressed coordination message.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Message {
    /// Sending site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// What is being said.
    pub payload: Payload,
}

impl Message {
    /// Construct a message.
    pub fn new(from: SiteId, to: SiteId, payload: Payload) -> Self {
        Message { from, to, payload }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}: {}", self.from, self.to, self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_txn_extraction() {
        let t = TxnId::new(9);
        let payloads = [
            Payload::Prepare { txn: t },
            Payload::Vote {
                txn: t,
                vote: Vote::Yes,
            },
            Payload::Decision {
                txn: t,
                outcome: Outcome::Commit,
            },
            Payload::Ack { txn: t },
            Payload::Inquiry {
                txn: t,
                protocol: ProtocolKind::PrC,
            },
            Payload::InquiryResponse {
                txn: t,
                outcome: Outcome::Abort,
            },
        ];
        for p in payloads {
            assert_eq!(p.txn(), t, "{p}");
        }
    }

    #[test]
    fn message_display_is_readable() {
        let m = Message::new(
            SiteId::new(0),
            SiteId::new(2),
            Payload::Decision {
                txn: TxnId::new(5),
                outcome: Outcome::Abort,
            },
        );
        assert_eq!(m.to_string(), "S0 -> S2: decision(T5, abort)");
    }

    #[test]
    fn kind_names_are_distinct() {
        use std::collections::HashSet;
        let t = TxnId::new(1);
        let payloads = [
            Payload::Prepare { txn: t },
            Payload::Vote {
                txn: t,
                vote: Vote::No,
            },
            Payload::Decision {
                txn: t,
                outcome: Outcome::Commit,
            },
            Payload::Ack { txn: t },
            Payload::Inquiry {
                txn: t,
                protocol: ProtocolKind::PrA,
            },
            Payload::InquiryResponse {
                txn: t,
                outcome: Outcome::Commit,
            },
        ];
        let names: HashSet<_> = payloads.iter().map(|p| p.kind_name()).collect();
        assert_eq!(names.len(), payloads.len());
    }
}
