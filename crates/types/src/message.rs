//! Wire messages exchanged between coordinator and participants.

use crate::ids::{SiteId, TxnId};
use crate::protocol::{Outcome, ProtocolKind, Vote};
use std::fmt;

/// The payload of a coordination message.
///
/// These are exactly the message kinds of the paper's protocols:
/// `Prepare` and `Vote` form the voting phase, `Decision` and `Ack` the
/// decision phase; `Inquiry`/`InquiryResponse` implement the recovery
/// dialogue a prepared participant holds with its coordinator.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Payload {
    /// Coordinator → participant: request to prepare to commit.
    Prepare {
        /// Transaction being prepared.
        txn: TxnId,
    },
    /// Participant → coordinator: the participant's vote.
    Vote {
        /// Transaction being voted on.
        txn: TxnId,
        /// The vote.
        vote: Vote,
    },
    /// Coordinator → participant: the final decision.
    Decision {
        /// Transaction being decided.
        txn: TxnId,
        /// Commit or abort.
        outcome: Outcome,
    },
    /// Participant → coordinator: acknowledgment of an enforced decision.
    Ack {
        /// Transaction being acknowledged.
        txn: TxnId,
    },
    /// Participant → coordinator: recovery-time inquiry about the
    /// outcome of a transaction the participant is in doubt about.
    ///
    /// Carries the participant's protocol so a PrAny coordinator can
    /// dynamically adopt the inquirer's presumption (§4.2) even when the
    /// transaction has been forgotten and the APP entry is gone.
    Inquiry {
        /// Transaction inquired about.
        txn: TxnId,
        /// The inquiring participant's commit protocol.
        protocol: ProtocolKind,
    },
    /// Coordinator → participant: reply to an inquiry.
    InquiryResponse {
        /// Transaction inquired about.
        txn: TxnId,
        /// The outcome the coordinator reports (possibly by presumption).
        outcome: Outcome,
    },
}

impl Payload {
    /// The transaction this payload concerns.
    #[must_use]
    pub fn txn(&self) -> TxnId {
        match *self {
            Payload::Prepare { txn }
            | Payload::Vote { txn, .. }
            | Payload::Decision { txn, .. }
            | Payload::Ack { txn }
            | Payload::Inquiry { txn, .. }
            | Payload::InquiryResponse { txn, .. } => txn,
        }
    }

    /// Short tag used by trace output and cost accounting.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Payload::Prepare { .. } => "prepare",
            Payload::Vote { .. } => "vote",
            Payload::Decision { .. } => "decision",
            Payload::Ack { .. } => "ack",
            Payload::Inquiry { .. } => "inquiry",
            Payload::InquiryResponse { .. } => "inquiry-response",
        }
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Prepare { txn } => write!(f, "prepare({txn})"),
            Payload::Vote { txn, vote } => write!(f, "vote({txn}, {vote})"),
            Payload::Decision { txn, outcome } => write!(f, "decision({txn}, {outcome})"),
            Payload::Ack { txn } => write!(f, "ack({txn})"),
            Payload::Inquiry { txn, protocol } => write!(f, "inquiry({txn}, {protocol})"),
            Payload::InquiryResponse { txn, outcome } => {
                write!(f, "inquiry-response({txn}, {outcome})")
            }
        }
    }
}

/// An addressed coordination message.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Message {
    /// Sending site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// What is being said.
    pub payload: Payload,
}

impl Message {
    /// Construct a message.
    pub fn new(from: SiteId, to: SiteId, payload: Payload) -> Self {
        Message { from, to, payload }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}: {}", self.from, self.to, self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_txn_extraction() {
        let t = TxnId::new(9);
        let payloads = [
            Payload::Prepare { txn: t },
            Payload::Vote {
                txn: t,
                vote: Vote::Yes,
            },
            Payload::Decision {
                txn: t,
                outcome: Outcome::Commit,
            },
            Payload::Ack { txn: t },
            Payload::Inquiry {
                txn: t,
                protocol: ProtocolKind::PrC,
            },
            Payload::InquiryResponse {
                txn: t,
                outcome: Outcome::Abort,
            },
        ];
        for p in payloads {
            assert_eq!(p.txn(), t, "{p}");
        }
    }

    #[test]
    fn message_display_is_readable() {
        let m = Message::new(
            SiteId::new(0),
            SiteId::new(2),
            Payload::Decision {
                txn: TxnId::new(5),
                outcome: Outcome::Abort,
            },
        );
        assert_eq!(m.to_string(), "S0 -> S2: decision(T5, abort)");
    }

    #[test]
    fn kind_names_are_distinct() {
        use std::collections::HashSet;
        let t = TxnId::new(1);
        let payloads = [
            Payload::Prepare { txn: t },
            Payload::Vote {
                txn: t,
                vote: Vote::No,
            },
            Payload::Decision {
                txn: t,
                outcome: Outcome::Commit,
            },
            Payload::Ack { txn: t },
            Payload::Inquiry {
                txn: t,
                protocol: ProtocolKind::PrA,
            },
            Payload::InquiryResponse {
                txn: t,
                outcome: Outcome::Commit,
            },
        ];
        let names: HashSet<_> = payloads.iter().map(|p| p.kind_name()).collect();
        assert_eq!(names.len(), payloads.len());
    }
}
