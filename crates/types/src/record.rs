//! Log record payloads.
//!
//! One shared enum covers coordinator protocol records, participant
//! protocol records and storage-engine data records, so a single WAL per
//! site carries everything — exactly as the paper assumes ("recording
//! the progress of the protocol in the logs of the coordinator and the
//! participants", Appendix).

use crate::ids::{SiteId, TxnId};
use crate::protocol::{CommitMode, Outcome, ProtocolKind};
use std::fmt;

/// One participant's entry in a PrC/PrAny initiation record.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ParticipantEntry {
    /// The participant site.
    pub site: SiteId,
    /// The 2PC variant that participant implements (recorded so §4.2
    /// recovery can reconstruct who must be re-notified and who must
    /// not be).
    pub protocol: ProtocolKind,
}

impl ParticipantEntry {
    /// Construct an entry.
    pub fn new(site: SiteId, protocol: ProtocolKind) -> Self {
        ParticipantEntry { site, protocol }
    }
}

impl fmt::Display for ParticipantEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.site, self.protocol)
    }
}

/// A sentinel transaction id carried by records that belong to no
/// transaction (checkpoints).
pub const NO_TXN: TxnId = TxnId(u64::MAX);

/// The payload of a write-ahead-log record.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LogPayload {
    // ----- coordinator-side protocol records -----
    /// Forced initiation (a.k.a. *collecting*) record written by PrC and
    /// PrAny coordinators before the voting phase. For PrAny it includes
    /// the protocol used by each participant (§4.1).
    Initiation {
        /// The transaction.
        txn: TxnId,
        /// Participants and their protocols.
        participants: Vec<ParticipantEntry>,
        /// The commit mode selected for this transaction.
        mode: CommitMode,
    },
    /// Coordinator decision record (commit decisions are always forced;
    /// whether one is written at all depends on the protocol — see
    /// [`ProtocolKind::coordinator_decision_force`]).
    ///
    /// For protocols without an initiation record (PrN, PrA) the decision
    /// record carries the participant list, since it is the only stable
    /// record from which recovery can re-initiate the decision phase
    /// (as in Bernstein/Hadzilacos/Goodman's formulation of basic 2PC).
    /// PrC/PrAny leave it empty — their initiation record has the list.
    CoordDecision {
        /// The transaction.
        txn: TxnId,
        /// The decision.
        outcome: Outcome,
        /// Participants (with protocols), when no initiation record exists.
        participants: Vec<ParticipantEntry>,
    },
    /// Non-forced end record: all expected acknowledgments arrived; the
    /// transaction's records may be garbage collected.
    End {
        /// The transaction.
        txn: TxnId,
    },
    /// Forced Paxos-Commit acceptor record: one acceptor's accepted
    /// value for *every* participant instance of a transaction, written
    /// with a single force (Gray & Lamport's bundling — one synchronous
    /// write per acceptor per transaction, not one per instance). An
    /// empty instance list records a bare phase-1 promise: the acceptor
    /// must remember the ballot across a crash so it never accepts a
    /// proposal from a superseded leader.
    PaxosAccept {
        /// The transaction.
        txn: TxnId,
        /// The ballot the values were accepted (or promised) at.
        ballot: u64,
        /// Accepted value per participant instance (`true` = Prepared);
        /// empty for a promise-only record.
        instances: Vec<(SiteId, bool)>,
    },

    // ----- participant-side protocol records -----
    /// Forced prepared record written before voting "Yes".
    Prepared {
        /// The transaction.
        txn: TxnId,
        /// The transaction's coordinator (needed to direct recovery
        /// inquiries).
        coordinator: SiteId,
    },
    /// Participant decision record (forced exactly when the protocol
    /// acknowledges that outcome).
    PartDecision {
        /// The transaction.
        txn: TxnId,
        /// The enforced decision.
        outcome: Outcome,
    },
    /// Non-forced participant end record enabling local GC.
    PartEnd {
        /// The transaction.
        txn: TxnId,
    },

    // ----- storage-engine data records -----
    /// A checkpoint: a full snapshot of the committed store at the time
    /// it was written. Recovery loads the latest checkpoint and redoes
    /// only the log suffix after it; everything before it (except the
    /// update records of transactions still live at checkpoint time)
    /// becomes reclaimable.
    Checkpoint {
        /// Committed key-value pairs at checkpoint time.
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    },
    /// A data update with before/after images (undo/redo information).
    /// `None` images encode absence: `before: None` is an insert,
    /// `after: None` is a delete.
    Update {
        /// Transaction performing the update.
        txn: TxnId,
        /// The key.
        key: Vec<u8>,
        /// Before image (undo information).
        before: Option<Vec<u8>>,
        /// After image (redo information).
        after: Option<Vec<u8>>,
    },
}

impl LogPayload {
    /// The transaction this record concerns.
    #[must_use]
    pub fn txn(&self) -> TxnId {
        match *self {
            LogPayload::Initiation { txn, .. }
            | LogPayload::CoordDecision { txn, .. }
            | LogPayload::End { txn }
            | LogPayload::PaxosAccept { txn, .. }
            | LogPayload::Prepared { txn, .. }
            | LogPayload::PartDecision { txn, .. }
            | LogPayload::PartEnd { txn }
            | LogPayload::Update { txn, .. } => txn,
            LogPayload::Checkpoint { .. } => NO_TXN,
        }
    }

    /// Short tag used by trace output and cost accounting.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            LogPayload::Initiation { .. } => "initiation",
            LogPayload::CoordDecision {
                outcome: Outcome::Commit,
                ..
            } => "commit",
            LogPayload::CoordDecision {
                outcome: Outcome::Abort,
                ..
            } => "abort",
            LogPayload::End { .. } => "end",
            LogPayload::PaxosAccept { .. } => "paxos-accept",
            LogPayload::Prepared { .. } => "prepared",
            LogPayload::PartDecision {
                outcome: Outcome::Commit,
                ..
            } => "part-commit",
            LogPayload::PartDecision {
                outcome: Outcome::Abort,
                ..
            } => "part-abort",
            LogPayload::PartEnd { .. } => "part-end",
            LogPayload::Checkpoint { .. } => "checkpoint",
            LogPayload::Update { .. } => "update",
        }
    }

    /// Is this a protocol record (as opposed to an engine data record)?
    #[must_use]
    pub fn is_protocol_record(&self) -> bool {
        !matches!(
            self,
            LogPayload::Update { .. } | LogPayload::Checkpoint { .. }
        )
    }
}

impl fmt::Display for LogPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogPayload::Initiation {
                txn,
                participants,
                mode,
            } => {
                write!(f, "initiation({txn}, {mode}, [")?;
                for (i, p) in participants.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "])")
            }
            LogPayload::CoordDecision { txn, outcome, .. } => {
                write!(f, "decision({txn}, {outcome})")
            }
            LogPayload::End { txn } => write!(f, "end({txn})"),
            LogPayload::PaxosAccept {
                txn,
                ballot,
                instances,
            } => {
                if instances.is_empty() {
                    write!(f, "paxos-promise({txn}, b{ballot})")
                } else {
                    write!(f, "paxos-accept({txn}, b{ballot}, {} instances)", instances.len())
                }
            }
            LogPayload::Prepared { txn, coordinator } => {
                write!(f, "prepared({txn}, coord={coordinator})")
            }
            LogPayload::PartDecision { txn, outcome } => {
                write!(f, "part-decision({txn}, {outcome})")
            }
            LogPayload::PartEnd { txn } => write!(f, "part-end({txn})"),
            LogPayload::Checkpoint { entries } => {
                write!(f, "checkpoint({} entries)", entries.len())
            }
            LogPayload::Update { txn, key, .. } => {
                write!(f, "update({txn}, key={} bytes)", key.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<LogPayload> {
        let t = TxnId::new(3);
        vec![
            LogPayload::Initiation {
                txn: t,
                participants: vec![
                    ParticipantEntry::new(SiteId::new(1), ProtocolKind::PrA),
                    ParticipantEntry::new(SiteId::new(2), ProtocolKind::PrC),
                ],
                mode: CommitMode::PrAny,
            },
            LogPayload::CoordDecision {
                txn: t,
                outcome: Outcome::Commit,
                participants: vec![],
            },
            LogPayload::End { txn: t },
            LogPayload::Prepared {
                txn: t,
                coordinator: SiteId::new(0),
            },
            LogPayload::PartDecision {
                txn: t,
                outcome: Outcome::Abort,
            },
            LogPayload::PartEnd { txn: t },
            LogPayload::Update {
                txn: t,
                key: b"k".to_vec(),
                before: None,
                after: Some(b"v".to_vec()),
            },
        ]
    }

    #[test]
    fn txn_extraction_covers_all_variants() {
        for r in sample_records() {
            assert_eq!(r.txn(), TxnId::new(3), "{r}");
        }
    }

    #[test]
    fn protocol_vs_data_records() {
        let rs = sample_records();
        assert!(rs[..6].iter().all(LogPayload::is_protocol_record));
        assert!(!rs[6].is_protocol_record());
    }

    #[test]
    fn initiation_display_lists_protocols() {
        let r = &sample_records()[0];
        let s = r.to_string();
        assert!(s.contains("S1:PrA"), "{s}");
        assert!(s.contains("S2:PrC"), "{s}");
        assert!(s.contains("PrAny"), "{s}");
    }

    #[test]
    fn decision_kind_names_distinguish_outcomes() {
        let t = TxnId::new(1);
        assert_eq!(
            LogPayload::CoordDecision {
                txn: t,
                outcome: Outcome::Commit,
                participants: vec![]
            }
            .kind_name(),
            "commit"
        );
        assert_eq!(
            LogPayload::CoordDecision {
                txn: t,
                outcome: Outcome::Abort,
                participants: vec![]
            }
            .kind_name(),
            "abort"
        );
    }
}
