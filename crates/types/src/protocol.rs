//! Protocol kinds, votes, outcomes and presumption semantics.
//!
//! The heart of the paper is that the three classical 2PC variants make
//! *conflicting presumptions* about transactions whose records are
//! missing after a failure:
//!
//! * **PrN** (presumed nothing / basic 2PC) nominally presumes nothing,
//!   but carries a *hidden* abort presumption: after a coordinator
//!   failure, active transactions are considered aborted (Appendix).
//! * **PrA** (presumed abort) makes the abort presumption explicit:
//!   missing information ⇒ abort.
//! * **PrC** (presumed commit) inverts it: missing information ⇒ commit,
//!   made safe by a forced *initiation* record written before voting.
//!
//! These semantics — who force-writes what, and who acknowledges which
//! decisions — are encoded here as methods so that every engine, checker
//! and cost model derives behaviour from one place.

use std::fmt;

/// Final outcome of a distributed transaction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Outcome {
    /// The transaction commits at every participant.
    Commit,
    /// The transaction aborts at every participant.
    Abort,
}

impl Outcome {
    /// The opposite outcome.
    #[must_use]
    pub fn opposite(self) -> Outcome {
        match self {
            Outcome::Commit => Outcome::Abort,
            Outcome::Abort => Outcome::Commit,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Commit => write!(f, "commit"),
            Outcome::Abort => write!(f, "abort"),
        }
    }
}

/// A participant's vote in the voting phase.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Vote {
    /// "Yes": the participant is prepared to commit and has force-written
    /// a prepared record; it can no longer unilaterally abort.
    Yes,
    /// "No": the participant has aborted its subtransaction. The
    /// coordinator must decide abort.
    No,
    /// Read-only optimization (named in §5 as an integration target):
    /// the participant performed no updates, needs no second phase, and
    /// drops out of the protocol after voting.
    ReadOnly,
}

impl fmt::Display for Vote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vote::Yes => write!(f, "yes"),
            Vote::No => write!(f, "no"),
            Vote::ReadOnly => write!(f, "read-only"),
        }
    }
}

/// The 2PC variant a *participant* site implements.
///
/// In the paper's multidatabase setting each autonomous site comes with
/// its own protocol; the coordinator learns it from the participants'
/// commit protocol (PCP) table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ProtocolKind {
    /// Presumed nothing — the basic 2PC protocol (Figure 2).
    PrN,
    /// Presumed abort (Figure 3).
    PrA,
    /// Presumed commit (Figure 4).
    PrC,
}

impl ProtocolKind {
    /// All participant protocol kinds, in a stable order.
    pub const ALL: [ProtocolKind; 3] = [ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC];

    /// Does a participant of this protocol acknowledge a **commit**
    /// decision?
    ///
    /// PrN and PrA participants force-write the commit record and then
    /// acknowledge; PrC participants write a non-forced commit record and
    /// never acknowledge (Figure 4a).
    #[must_use]
    pub fn acks_commit(self) -> bool {
        matches!(self, ProtocolKind::PrN | ProtocolKind::PrA)
    }

    /// Does a participant of this protocol acknowledge an **abort**
    /// decision?
    ///
    /// PrN and PrC participants force-write the abort record and then
    /// acknowledge; PrA participants write a non-forced abort record and
    /// never acknowledge (Figure 3).
    #[must_use]
    pub fn acks_abort(self) -> bool {
        matches!(self, ProtocolKind::PrN | ProtocolKind::PrC)
    }

    /// Does a participant of this protocol acknowledge the given
    /// decision?
    #[must_use]
    pub fn acks(self, outcome: Outcome) -> bool {
        match outcome {
            Outcome::Commit => self.acks_commit(),
            Outcome::Abort => self.acks_abort(),
        }
    }

    /// Must the participant **force** its decision record before (or in
    /// lieu of) acknowledging?
    ///
    /// A decision is forced exactly when it must be acknowledged: the ack
    /// promises the decision is stable. Unacknowledged decisions are
    /// recorded lazily (non-forced) because the presumption covers them.
    #[must_use]
    pub fn forces_decision(self, outcome: Outcome) -> bool {
        self.acks(outcome)
    }

    /// The protocol's *explicit* presumption: the outcome a coordinator
    /// of this protocol reports for a transaction it has no record of.
    ///
    /// `None` for PrN, whose specification makes no explicit presumption.
    #[must_use]
    pub fn explicit_presumption(self) -> Option<Outcome> {
        match self {
            ProtocolKind::PrN => None,
            ProtocolKind::PrA => Some(Outcome::Abort),
            ProtocolKind::PrC => Some(Outcome::Commit),
        }
    }

    /// The protocol's *operative* presumption, including PrN's hidden
    /// abort presumption (Appendix: "there is a hidden presumption in PrN
    /// by which the coordinator considers all active transactions at the
    /// time of the failure as aborted ones").
    #[must_use]
    pub fn presumption(self) -> Outcome {
        match self {
            ProtocolKind::PrN | ProtocolKind::PrA => Outcome::Abort,
            ProtocolKind::PrC => Outcome::Commit,
        }
    }

    /// Does a coordinator running this protocol force-write an
    /// *initiation* record before starting the voting phase?
    ///
    /// Only PrC (and, in `acp-core`, PrAny) pays this extra force; it is
    /// what makes the commit presumption safe across coordinator
    /// failures.
    #[must_use]
    pub fn coordinator_writes_initiation(self) -> bool {
        matches!(self, ProtocolKind::PrC)
    }

    /// Does a coordinator running this protocol write a decision record
    /// for the given outcome, and is it forced?
    ///
    /// Returns `None` when no record is written at all:
    /// * PrA coordinators log nothing for aborts,
    /// * PrC coordinators log nothing for aborts (the initiation record
    ///   already guarantees the abort presumption after a failure).
    ///
    /// Returns `Some(true)` for forced decision records (all remaining
    /// cases — the decision must be stable before it is sent out).
    #[must_use]
    pub fn coordinator_decision_force(self, outcome: Outcome) -> Option<bool> {
        match (self, outcome) {
            (ProtocolKind::PrN, _) => Some(true),
            (ProtocolKind::PrA, Outcome::Commit) => Some(true),
            (ProtocolKind::PrA, Outcome::Abort) => None,
            (ProtocolKind::PrC, Outcome::Commit) => Some(true),
            (ProtocolKind::PrC, Outcome::Abort) => None,
        }
    }

    /// Does a coordinator running this protocol wait for acks (and then
    /// write an end record) for the given outcome?
    ///
    /// Mirrors [`ProtocolKind::acks`] on the participant side: the
    /// coordinator waits exactly for the participants that will ack.
    #[must_use]
    pub fn coordinator_waits_for_acks(self, outcome: Outcome) -> bool {
        self.acks(outcome)
    }

    /// Short lower-case name used in traces and experiment tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::PrN => "PrN",
            ProtocolKind::PrA => "PrA",
            ProtocolKind::PrC => "PrC",
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The protocol mode a coordinator selects for a *specific transaction*.
///
/// PrAny coordinators consult the active participants' protocols (APP)
/// table and pick the cheapest safe mode per transaction (§4.1): a
/// homogeneous population runs the participants' own protocol; a mixed
/// population runs full PrAny.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CommitMode {
    /// All participants use PrN ⇒ run basic 2PC.
    PrN,
    /// All participants use PrA ⇒ run presumed abort.
    PrA,
    /// All participants use PrC ⇒ run presumed commit.
    PrC,
    /// Mixed population ⇒ run the Presumed Any protocol (Figure 1).
    PrAny,
}

impl CommitMode {
    /// The homogeneous participant protocol this mode corresponds to, if
    /// any.
    #[must_use]
    pub fn as_homogeneous(self) -> Option<ProtocolKind> {
        match self {
            CommitMode::PrN => Some(ProtocolKind::PrN),
            CommitMode::PrA => Some(ProtocolKind::PrA),
            CommitMode::PrC => Some(ProtocolKind::PrC),
            CommitMode::PrAny => None,
        }
    }

    /// Does this mode force-write an initiation record before voting?
    ///
    /// PrC does (Figure 4); PrAny does, *including each participant's
    /// protocol* in the record (§4.1).
    #[must_use]
    pub fn writes_initiation(self) -> bool {
        matches!(self, CommitMode::PrC | CommitMode::PrAny)
    }

    /// Short name used in traces and experiment tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CommitMode::PrN => "PrN",
            CommitMode::PrA => "PrA",
            CommitMode::PrC => "PrC",
            CommitMode::PrAny => "PrAny",
        }
    }
}

impl fmt::Display for CommitMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<ProtocolKind> for CommitMode {
    fn from(p: ProtocolKind) -> Self {
        match p {
            ProtocolKind::PrN => CommitMode::PrN,
            ProtocolKind::PrA => CommitMode::PrA,
            ProtocolKind::PrC => CommitMode::PrC,
        }
    }
}

/// Policy a PrAny coordinator uses to select the commit mode for a
/// transaction from its participants' protocols.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SelectionPolicy {
    /// Exactly the rule stated in §4.1: homogeneous populations run their
    /// own protocol; *any* heterogeneous population runs PrAny.
    #[default]
    PaperStrict,
    /// An optimization the paper's §2–§3 analysis permits: PrN+PrC mixes
    /// run PrC (PrN participants ack everything, so the commit
    /// presumption stays safe) and PrN+PrA mixes run PrA (symmetric
    /// argument with the abort presumption). Only populations mixing PrA
    /// with PrC fall back to full PrAny.
    Optimized,
}

impl fmt::Display for SelectionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionPolicy::PaperStrict => write!(f, "paper-strict"),
            SelectionPolicy::Optimized => write!(f, "optimized"),
        }
    }
}

/// The integrated protocol a *coordinator* site runs.
///
/// §2 and §3 of the paper study two straw-man integrations (U2PC and
/// C2PC) before §4 presents PrAny; all are first-class here so the
/// theorems can be demonstrated executably.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CoordinatorKind {
    /// A plain single-protocol coordinator (only sound for a homogeneous
    /// population of the same protocol).
    Single(ProtocolKind),
    /// Union 2PC (§2): the coordinator follows `base`, knows which
    /// messages each participant will send, ignores protocol-violating
    /// messages, forgets once every participant that *will* ack has
    /// acked, and answers inquiries with `base`'s presumption.
    /// **Violates atomicity** (Theorem 1).
    U2pc(ProtocolKind),
    /// Coordinator 2PC (§3): like U2PC but never forgets a transaction
    /// until *all* participants ack and never answers by presumption.
    /// Functionally correct but **not operationally correct**
    /// (Theorem 2): some transactions are remembered forever.
    C2pc(ProtocolKind),
    /// Presumed Any (§4) with the given selection policy.
    PrAny(SelectionPolicy),
}

impl CoordinatorKind {
    /// Short name used in traces and experiment tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CoordinatorKind::Single(ProtocolKind::PrN) => "PrN",
            CoordinatorKind::Single(ProtocolKind::PrA) => "PrA",
            CoordinatorKind::Single(ProtocolKind::PrC) => "PrC",
            CoordinatorKind::U2pc(ProtocolKind::PrN) => "U2PC/PrN",
            CoordinatorKind::U2pc(ProtocolKind::PrA) => "U2PC/PrA",
            CoordinatorKind::U2pc(ProtocolKind::PrC) => "U2PC/PrC",
            CoordinatorKind::C2pc(ProtocolKind::PrN) => "C2PC/PrN",
            CoordinatorKind::C2pc(ProtocolKind::PrA) => "C2PC/PrA",
            CoordinatorKind::C2pc(ProtocolKind::PrC) => "C2PC/PrC",
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict) => "PrAny",
            CoordinatorKind::PrAny(SelectionPolicy::Optimized) => "PrAny/opt",
        }
    }
}

impl fmt::Display for CoordinatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_matrix_matches_figures() {
        // Figure 2: PrN acks both decisions.
        assert!(ProtocolKind::PrN.acks_commit());
        assert!(ProtocolKind::PrN.acks_abort());
        // Figure 3: PrA acks commits only.
        assert!(ProtocolKind::PrA.acks_commit());
        assert!(!ProtocolKind::PrA.acks_abort());
        // Figure 4: PrC acks aborts only.
        assert!(!ProtocolKind::PrC.acks_commit());
        assert!(ProtocolKind::PrC.acks_abort());
    }

    #[test]
    fn forced_decision_follows_acks() {
        for p in ProtocolKind::ALL {
            for o in [Outcome::Commit, Outcome::Abort] {
                assert_eq!(p.forces_decision(o), p.acks(o), "{p} {o}");
            }
        }
    }

    #[test]
    fn presumptions() {
        assert_eq!(ProtocolKind::PrN.explicit_presumption(), None);
        assert_eq!(ProtocolKind::PrN.presumption(), Outcome::Abort);
        assert_eq!(ProtocolKind::PrA.presumption(), Outcome::Abort);
        assert_eq!(ProtocolKind::PrC.presumption(), Outcome::Commit);
    }

    #[test]
    fn coordinator_logging_matrix() {
        use Outcome::*;
        // PrN force-writes the decision in both cases (Figure 2).
        assert_eq!(
            ProtocolKind::PrN.coordinator_decision_force(Commit),
            Some(true)
        );
        assert_eq!(
            ProtocolKind::PrN.coordinator_decision_force(Abort),
            Some(true)
        );
        // PrA logs nothing for aborts (Figure 3).
        assert_eq!(
            ProtocolKind::PrA.coordinator_decision_force(Commit),
            Some(true)
        );
        assert_eq!(ProtocolKind::PrA.coordinator_decision_force(Abort), None);
        // PrC logs a forced commit and nothing for aborts (Figure 4).
        assert_eq!(
            ProtocolKind::PrC.coordinator_decision_force(Commit),
            Some(true)
        );
        assert_eq!(ProtocolKind::PrC.coordinator_decision_force(Abort), None);
        // Only PrC writes an initiation record.
        assert!(ProtocolKind::PrC.coordinator_writes_initiation());
        assert!(!ProtocolKind::PrN.coordinator_writes_initiation());
        assert!(!ProtocolKind::PrA.coordinator_writes_initiation());
    }

    #[test]
    fn commit_mode_conversions() {
        for p in ProtocolKind::ALL {
            assert_eq!(CommitMode::from(p).as_homogeneous(), Some(p));
        }
        assert_eq!(CommitMode::PrAny.as_homogeneous(), None);
        assert!(CommitMode::PrAny.writes_initiation());
        assert!(CommitMode::PrC.writes_initiation());
        assert!(!CommitMode::PrA.writes_initiation());
    }

    #[test]
    fn outcome_opposite_involutive() {
        for o in [Outcome::Commit, Outcome::Abort] {
            assert_eq!(o.opposite().opposite(), o);
            assert_ne!(o.opposite(), o);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(
            CoordinatorKind::U2pc(ProtocolKind::PrC).to_string(),
            "U2PC/PrC"
        );
        assert_eq!(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict).to_string(),
            "PrAny"
        );
        assert_eq!(Vote::ReadOnly.to_string(), "read-only");
        assert_eq!(Outcome::Commit.to_string(), "commit");
    }
}
