//! Protocol violation descriptions.

use crate::ids::{SiteId, TxnId};
use std::fmt;

/// A message or event that violates the receiving engine's protocol.
///
/// §2 defines U2PC coordinators as "handl[ing] any violations of
/// [their] protocol with respect to messages by ignoring such messages";
/// strict single-protocol engines instead surface violations so tests
/// can assert on them. Either way, the violation itself is described by
/// this type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProtocolViolation {
    /// The site that observed the violation.
    pub site: SiteId,
    /// The transaction involved, if identifiable.
    pub txn: Option<TxnId>,
    /// Human-readable description of what was violated.
    pub detail: String,
}

impl ProtocolViolation {
    /// Construct a violation report.
    pub fn new(site: SiteId, txn: Option<TxnId>, detail: impl Into<String>) -> Self {
        ProtocolViolation {
            site,
            txn,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.txn {
            Some(t) => write!(
                f,
                "protocol violation at {} for {}: {}",
                self.site, t, self.detail
            ),
            None => write!(f, "protocol violation at {}: {}", self.site, self.detail),
        }
    }
}

impl std::error::Error for ProtocolViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_txn() {
        let v = ProtocolViolation::new(SiteId::new(1), Some(TxnId::new(2)), "unexpected ack");
        assert_eq!(
            v.to_string(),
            "protocol violation at S1 for T2: unexpected ack"
        );
        let v = ProtocolViolation::new(SiteId::new(1), None, "garbled message");
        assert_eq!(v.to_string(), "protocol violation at S1: garbled message");
    }

    #[test]
    fn is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&ProtocolViolation::new(SiteId::new(0), None, "x"));
    }
}
