//! Cost counters for commit processing.
//!
//! §1 motivates the whole protocol-variant zoo with "commit processing
//! consumes a substantial amount of a transaction's execution time".
//! The costs that matter are forced log writes (synchronous stable-
//! storage latency), total log records (log volume / GC pressure) and
//! coordination messages. Every substrate increments these counters so
//! the analytic cost model in `acp-core::cost` can be checked against
//! measured executions (experiment E8).

use std::fmt;
use std::ops::{Add, AddAssign};

/// Tallies of the cost-relevant actions taken during commit processing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CostCounters {
    /// Forced (synchronous) log writes.
    pub forced_writes: u64,
    /// All log records written, forced and non-forced.
    pub log_records: u64,
    /// Coordination messages sent, by kind.
    pub prepares: u64,
    /// Vote messages sent.
    pub votes: u64,
    /// Decision messages sent.
    pub decisions: u64,
    /// Acknowledgment messages sent.
    pub acks: u64,
    /// Recovery inquiries sent.
    pub inquiries: u64,
    /// Recovery inquiry responses sent.
    pub responses: u64,
    /// Paxos Commit consensus messages sent (begin/phase1a/phase1b/
    /// phase2a/phase2b/forget) — zero for the classic 2PC protocols.
    pub paxos: u64,
}

impl CostCounters {
    /// A zeroed counter set.
    #[must_use]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total messages of all kinds.
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.prepares
            + self.votes
            + self.decisions
            + self.acks
            + self.inquiries
            + self.responses
            + self.paxos
    }

    /// Non-forced log records.
    #[must_use]
    pub fn lazy_writes(&self) -> u64 {
        self.log_records - self.forced_writes
    }

    /// Record a log write.
    pub fn count_log_write(&mut self, forced: bool) {
        self.log_records += 1;
        if forced {
            self.forced_writes += 1;
        }
    }

    /// Record a message send, classified by the payload kind tag (as
    /// produced by `Payload::kind_name`).
    pub fn count_message_kind(&mut self, kind: &str) {
        match kind {
            "prepare" => self.prepares += 1,
            "vote" => self.votes += 1,
            "decision" => self.decisions += 1,
            "ack" => self.acks += 1,
            "inquiry" => self.inquiries += 1,
            "inquiry-response" => self.responses += 1,
            "paxos-begin" | "phase1a" | "phase1b" | "phase2a" | "phase2b" | "paxos-forget" => {
                self.paxos += 1;
            }
            other => panic!("unknown message kind {other:?}"),
        }
    }
}

impl Add for CostCounters {
    type Output = CostCounters;

    fn add(mut self, rhs: CostCounters) -> CostCounters {
        self += rhs;
        self
    }
}

impl AddAssign for CostCounters {
    fn add_assign(&mut self, rhs: CostCounters) {
        self.forced_writes += rhs.forced_writes;
        self.log_records += rhs.log_records;
        self.prepares += rhs.prepares;
        self.votes += rhs.votes;
        self.decisions += rhs.decisions;
        self.acks += rhs.acks;
        self.inquiries += rhs.inquiries;
        self.responses += rhs.responses;
        self.paxos += rhs.paxos;
    }
}

impl fmt::Display for CostCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "forces={} records={} msgs={} (prep={} vote={} dec={} ack={} inq={} resp={} paxos={})",
            self.forced_writes,
            self.log_records,
            self.messages(),
            self.prepares,
            self.votes,
            self.decisions,
            self.acks,
            self.inquiries,
            self.responses,
            self.paxos,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_totals() {
        let mut c = CostCounters::zero();
        c.count_log_write(true);
        c.count_log_write(false);
        c.count_log_write(false);
        assert_eq!(c.forced_writes, 1);
        assert_eq!(c.log_records, 3);
        assert_eq!(c.lazy_writes(), 2);

        for k in [
            "prepare",
            "vote",
            "decision",
            "ack",
            "inquiry",
            "inquiry-response",
        ] {
            c.count_message_kind(k);
        }
        assert_eq!(c.messages(), 6);
    }

    #[test]
    fn addition_is_componentwise() {
        let mut a = CostCounters::zero();
        a.count_log_write(true);
        a.count_message_kind("prepare");
        let mut b = CostCounters::zero();
        b.count_log_write(false);
        b.count_message_kind("ack");

        let s = a + b;
        assert_eq!(s.forced_writes, 1);
        assert_eq!(s.log_records, 2);
        assert_eq!(s.prepares, 1);
        assert_eq!(s.acks, 1);
        assert_eq!(s.messages(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown message kind")]
    fn unknown_message_kind_panics() {
        CostCounters::zero().count_message_kind("telepathy");
    }
}
