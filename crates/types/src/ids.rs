//! Site and transaction identifiers.

use std::fmt;

/// Identifier of a database site (a node in the distributed system).
///
/// A site may act as the coordinator of some transactions and as a
/// participant in others; the paper's model designates the transaction
/// manager at the site where a transaction originated as its
/// coordinator (Appendix, "Brief overview of related work").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SiteId(pub u32);

impl SiteId {
    /// Construct a site id from a raw index.
    pub const fn new(raw: u32) -> Self {
        SiteId(raw)
    }

    /// The raw numeric value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl From<u32> for SiteId {
    fn from(raw: u32) -> Self {
        SiteId(raw)
    }
}

/// Identifier of a distributed (global) transaction.
///
/// Globally unique across the system. Subtransactions executing at
/// participant sites on behalf of a transaction share its `TxnId`; the
/// pair `(TxnId, SiteId)` identifies a subtransaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Construct a transaction id from a raw value.
    pub const fn new(raw: u64) -> Self {
        TxnId(raw)
    }

    /// The raw numeric value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The next transaction id in sequence (used by id allocators).
    #[must_use]
    pub const fn next(self) -> Self {
        TxnId(self.0 + 1)
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u64> for TxnId {
    fn from(raw: u64) -> Self {
        TxnId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_id_roundtrip_and_display() {
        let s = SiteId::new(7);
        assert_eq!(s.raw(), 7);
        assert_eq!(format!("{s}"), "S7");
        assert_eq!(format!("{s:?}"), "S7");
        assert_eq!(SiteId::from(7u32), s);
    }

    #[test]
    fn txn_id_ordering_and_next() {
        let t = TxnId::new(41);
        assert_eq!(t.next(), TxnId::new(42));
        assert!(t < t.next());
        assert_eq!(format!("{t}"), "T41");
    }

    #[test]
    fn ids_are_hashable_map_keys() {
        use std::collections::HashMap;
        let mut m: HashMap<TxnId, SiteId> = HashMap::new();
        m.insert(TxnId::new(1), SiteId::new(2));
        assert_eq!(m[&TxnId::new(1)], SiteId::new(2));
    }
}
