//! The safe state: Definition 2 of the paper, executable.
//!
//! ```text
//! SafeState_C(T) ⇒
//!   ( Decide_C(Abort_T) ∈ H ∧
//!     ∀ ti ∈ T ((DeletePT_C(T) → INQ_ti) ⇒ Respond_C(Abort_ti) ∈ H) )
//!   ∨
//!   ( Decide_C(Commit_T) ∈ H ∧
//!     ∀ ti ∈ T ((DeletePT_C(T) → INQ_ti) ⇒ Respond_C(Commit_ti) ∈ H) )
//! ```
//!
//! In words: once the coordinator has forgotten a transaction (deleted
//! it from the protocol table), only a *single* presumption may remain
//! possible — the one matching the decided outcome. Every inquiry that
//! arrives after the forget must be answered with the decision.

use crate::event::ActaEvent;
use crate::history::History;
use acp_types::{SiteId, TxnId};
use std::fmt;

/// A violation of Definition 2.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SafeStateViolation {
    /// The transaction.
    pub txn: TxnId,
    /// The coordinator.
    pub coordinator: SiteId,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for SafeStateViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "safe-state violation at {} for {}: {}",
            self.coordinator, self.txn, self.detail
        )
    }
}

/// Check `SafeState_C(T)` for one transaction.
///
/// Returns violations for every post-forget inquiry that was answered
/// inconsistently with the decided outcome (or never answered at all, if
/// `require_response` — the paper's formula demands the response be *in*
/// `H`, so a silently ignored inquiry is also unsafe).
#[must_use]
pub fn check_safe_state(
    history: &History,
    coordinator: SiteId,
    txn: TxnId,
) -> Vec<SafeStateViolation> {
    let events = history.events();

    // The decided outcome (first decision; atomicity checking catches
    // contradictory re-decisions separately).
    let decided = events.iter().find_map(|e| match e {
        ActaEvent::Decide {
            coordinator: c,
            txn: t,
            outcome,
        } if *c == coordinator && *t == txn => Some(*outcome),
        _ => None,
    });
    let Some(decided) = decided else {
        // No decision ⇒ Definition 2 is vacuous for this transaction.
        return Vec::new();
    };

    // Index of the forget (DeletePT) event, if the coordinator forgot.
    let forget_idx = events.iter().position(|e| {
        matches!(e, ActaEvent::DeletePt { coordinator: c, txn: t } if *c == coordinator && *t == txn)
    });
    let Some(forget_idx) = forget_idx else {
        // Never forgotten ⇒ no post-forget inquiries to constrain.
        return Vec::new();
    };

    let mut violations = Vec::new();

    // Every inquiry after the forget must be answered with `decided`.
    for (i, e) in events.iter().enumerate().skip(forget_idx + 1) {
        let ActaEvent::Inquire {
            participant,
            txn: t,
            ..
        } = e
        else {
            continue;
        };
        if *t != txn {
            continue;
        }
        // Find the response to *this* inquiry: the first Respond to this
        // participant for this txn after the inquiry.
        let response = events.iter().skip(i + 1).find_map(|e2| match e2 {
            ActaEvent::Respond {
                coordinator: c,
                txn: t2,
                participant: p2,
                outcome,
                ..
            } if *c == coordinator && *t2 == txn && *p2 == *participant => Some(*outcome),
            _ => None,
        });
        match response {
            Some(o) if o == decided => {}
            Some(o) => violations.push(SafeStateViolation {
                txn,
                coordinator,
                detail: format!(
                    "post-forget inquiry from {participant} answered {o}, but decided {decided}"
                ),
            }),
            None => violations.push(SafeStateViolation {
                txn,
                coordinator,
                detail: format!(
                    "post-forget inquiry from {participant} never answered (Respond ∉ H)"
                ),
            }),
        }
    }

    violations
}

/// Check the safe state for every decided transaction of a coordinator.
#[must_use]
pub fn check_all_safe_states(history: &History, coordinator: SiteId) -> Vec<SafeStateViolation> {
    history
        .transactions()
        .into_iter()
        .flat_map(|t| check_safe_state(history, coordinator, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::{Outcome, ProtocolKind};

    fn c() -> SiteId {
        SiteId::new(0)
    }
    fn p() -> SiteId {
        SiteId::new(1)
    }
    fn t() -> TxnId {
        TxnId::new(1)
    }

    fn decide(o: Outcome) -> ActaEvent {
        ActaEvent::Decide {
            coordinator: c(),
            txn: t(),
            outcome: o,
        }
    }
    fn forget() -> ActaEvent {
        ActaEvent::DeletePt {
            coordinator: c(),
            txn: t(),
        }
    }
    fn inquire(proto: ProtocolKind) -> ActaEvent {
        ActaEvent::Inquire {
            participant: p(),
            txn: t(),
            protocol: proto,
        }
    }
    fn respond(o: Outcome) -> ActaEvent {
        ActaEvent::Respond {
            coordinator: c(),
            txn: t(),
            participant: p(),
            outcome: o,
            by_presumption: true,
        }
    }

    #[test]
    fn consistent_post_forget_response_is_safe() {
        let h: History = [
            decide(Outcome::Commit),
            forget(),
            inquire(ProtocolKind::PrC),
            respond(Outcome::Commit),
        ]
        .into_iter()
        .collect();
        assert!(check_safe_state(&h, c(), t()).is_empty());
    }

    #[test]
    fn contradicting_response_is_unsafe() {
        // The U2PC/PrA coordinator scenario from Theorem 1 Part II:
        // committed, forgot, then answered a PrC inquiry with abort.
        let h: History = [
            decide(Outcome::Commit),
            forget(),
            inquire(ProtocolKind::PrC),
            respond(Outcome::Abort),
        ]
        .into_iter()
        .collect();
        let v = check_safe_state(&h, c(), t());
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("answered abort"));
    }

    #[test]
    fn unanswered_post_forget_inquiry_is_unsafe() {
        let h: History = [decide(Outcome::Abort), forget(), inquire(ProtocolKind::PrA)]
            .into_iter()
            .collect();
        let v = check_safe_state(&h, c(), t());
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("never answered"));
    }

    #[test]
    fn pre_forget_inquiries_unconstrained_by_definition_2() {
        // An inquiry *before* the forget is answered from the protocol
        // table; Definition 2 says nothing about it (atomicity checking
        // still covers wrong answers).
        let h: History = [
            decide(Outcome::Commit),
            inquire(ProtocolKind::PrA),
            respond(Outcome::Commit),
            forget(),
        ]
        .into_iter()
        .collect();
        assert!(check_safe_state(&h, c(), t()).is_empty());
    }

    #[test]
    fn undecided_or_unforgotten_transactions_vacuously_safe() {
        let h: History = [inquire(ProtocolKind::PrA)].into_iter().collect();
        assert!(check_safe_state(&h, c(), t()).is_empty());

        let h: History = [decide(Outcome::Commit), inquire(ProtocolKind::PrC)]
            .into_iter()
            .collect();
        assert!(check_safe_state(&h, c(), t()).is_empty());
    }

    #[test]
    fn check_all_covers_every_transaction() {
        let t2 = TxnId::new(2);
        let h: History = [
            decide(Outcome::Commit),
            forget(),
            inquire(ProtocolKind::PrC),
            respond(Outcome::Abort), // bad for T1
            ActaEvent::Decide {
                coordinator: c(),
                txn: t2,
                outcome: Outcome::Abort,
            },
            ActaEvent::DeletePt {
                coordinator: c(),
                txn: t2,
            },
            ActaEvent::Inquire {
                participant: p(),
                txn: t2,
                protocol: ProtocolKind::PrA,
            },
            ActaEvent::Respond {
                coordinator: c(),
                txn: t2,
                participant: p(),
                outcome: Outcome::Abort,
                by_presumption: true,
            }, // good for T2
        ]
        .into_iter()
        .collect();
        let v = check_all_safe_states(&h, c());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].txn, t());
    }
}
