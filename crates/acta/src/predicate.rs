//! Event patterns: the atoms of first-order predicates over histories.

use crate::event::ActaEvent;
use acp_types::{Outcome, SiteId, TxnId};

/// Which event constructor a pattern selects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// `Decide_C`.
    Decide,
    /// `DeletePT_C`.
    DeletePt,
    /// `Respond_C`.
    Respond,
    /// Participant prepared.
    Prepared,
    /// `INQ_ti`.
    Inquire,
    /// Participant enforcement.
    Enforce,
    /// Participant forget.
    ForgetPart,
    /// Log write.
    LogWrite,
    /// Site crash.
    Crash,
    /// Site recovery.
    Recover,
}

fn kind_of(e: &ActaEvent) -> EventKind {
    match e {
        ActaEvent::Decide { .. } => EventKind::Decide,
        ActaEvent::DeletePt { .. } => EventKind::DeletePt,
        ActaEvent::Respond { .. } => EventKind::Respond,
        ActaEvent::Prepared { .. } => EventKind::Prepared,
        ActaEvent::Inquire { .. } => EventKind::Inquire,
        ActaEvent::Enforce { .. } => EventKind::Enforce,
        ActaEvent::ForgetPart { .. } => EventKind::ForgetPart,
        ActaEvent::LogWrite { .. } => EventKind::LogWrite,
        ActaEvent::Crash { .. } => EventKind::Crash,
        ActaEvent::Recover { .. } => EventKind::Recover,
    }
}

/// A conjunctive pattern over events: kind plus optional constraints.
/// Unset fields match anything.
#[derive(Clone, Debug, Default)]
pub struct Pattern {
    kind: Option<EventKind>,
    txn: Option<TxnId>,
    site: Option<SiteId>,
    outcome: Option<Outcome>,
}

impl Pattern {
    /// Match any event.
    #[must_use]
    pub fn any() -> Self {
        Self::default()
    }

    /// Match events of one kind.
    #[must_use]
    pub fn of_kind(kind: EventKind) -> Self {
        Pattern {
            kind: Some(kind),
            ..Self::default()
        }
    }

    /// Shorthand: `Decide` events.
    #[must_use]
    pub fn decide() -> Self {
        Self::of_kind(EventKind::Decide)
    }

    /// Shorthand: `DeletePT` events.
    #[must_use]
    pub fn delete_pt() -> Self {
        Self::of_kind(EventKind::DeletePt)
    }

    /// Shorthand: `Respond` events.
    #[must_use]
    pub fn respond() -> Self {
        Self::of_kind(EventKind::Respond)
    }

    /// Shorthand: `Inquire` events.
    #[must_use]
    pub fn inquire() -> Self {
        Self::of_kind(EventKind::Inquire)
    }

    /// Shorthand: `Enforce` events.
    #[must_use]
    pub fn enforce() -> Self {
        Self::of_kind(EventKind::Enforce)
    }

    /// Shorthand: `Crash` events.
    #[must_use]
    pub fn crash() -> Self {
        Self::of_kind(EventKind::Crash)
    }

    /// Constrain the transaction.
    #[must_use]
    pub fn txn(mut self, t: TxnId) -> Self {
        self.txn = Some(t);
        self
    }

    /// Constrain the site (coordinator or participant, per event kind).
    #[must_use]
    pub fn site(mut self, s: SiteId) -> Self {
        self.site = Some(s);
        self
    }

    /// Constrain the outcome (for `Decide`, `Respond`, `Enforce`).
    #[must_use]
    pub fn outcome(mut self, o: Outcome) -> Self {
        self.outcome = Some(o);
        self
    }

    /// Does the event satisfy every constraint?
    #[must_use]
    pub fn matches(&self, e: &ActaEvent) -> bool {
        if let Some(k) = self.kind {
            if kind_of(e) != k {
                return false;
            }
        }
        if let Some(t) = self.txn {
            if e.txn() != Some(t) {
                return false;
            }
        }
        if let Some(s) = self.site {
            if e.site() != s {
                return false;
            }
        }
        if let Some(o) = self.outcome {
            let eo = match e {
                ActaEvent::Decide { outcome, .. }
                | ActaEvent::Respond { outcome, .. }
                | ActaEvent::Enforce { outcome, .. } => Some(*outcome),
                _ => None,
            };
            if eo != Some(o) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraints_are_conjunctive() {
        let e = ActaEvent::Decide {
            coordinator: SiteId::new(0),
            txn: TxnId::new(1),
            outcome: Outcome::Commit,
        };
        assert!(Pattern::any().matches(&e));
        assert!(Pattern::decide().matches(&e));
        assert!(Pattern::decide()
            .txn(TxnId::new(1))
            .outcome(Outcome::Commit)
            .matches(&e));
        assert!(!Pattern::decide().outcome(Outcome::Abort).matches(&e));
        assert!(!Pattern::decide().txn(TxnId::new(2)).matches(&e));
        assert!(!Pattern::inquire().matches(&e));
        assert!(!Pattern::decide().site(SiteId::new(9)).matches(&e));
    }

    #[test]
    fn outcome_constraint_fails_on_outcomeless_events() {
        let e = ActaEvent::Crash {
            site: SiteId::new(0),
        };
        assert!(!Pattern::any().outcome(Outcome::Commit).matches(&e));
    }
}
