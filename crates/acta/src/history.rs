//! Histories: totally ordered sequences of significant events with the
//! ACTA precedence relation.

use crate::event::ActaEvent;
use crate::predicate::Pattern;
use acp_types::TxnId;
use std::fmt;

/// The complete history `H` of an execution.
///
/// Events are stored in occurrence order; the precedence relation
/// `ε → ε'` of the formalism is index order. (The simulator timestamps
/// give a total order; concurrent events at distinct sites are ordered
/// by processing order, which is sound because the criteria below only
/// relate events that are causally ordered anyway.)
#[derive(Clone, Debug, Default)]
pub struct History {
    events: Vec<ActaEvent>,
}

impl History {
    /// An empty history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event (it becomes the latest in `→`).
    pub fn push(&mut self, event: ActaEvent) {
        self.events.push(event);
    }

    /// All events in precedence order.
    #[must_use]
    pub fn events(&self) -> &[ActaEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the history empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Indices of events matching a pattern.
    pub fn find<'a>(&'a self, pattern: &'a Pattern) -> impl Iterator<Item = usize> + 'a {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| pattern.matches(e))
            .map(|(i, _)| i)
    }

    /// Does some event match the pattern (∃ε ∈ H)?
    #[must_use]
    pub fn exists(&self, pattern: &Pattern) -> bool {
        self.find(pattern).next().is_some()
    }

    /// First index matching the pattern.
    #[must_use]
    pub fn first(&self, pattern: &Pattern) -> Option<usize> {
        self.find(pattern).next()
    }

    /// The precedence relation: does event `i` precede event `j`?
    #[must_use]
    pub fn precedes(&self, i: usize, j: usize) -> bool {
        i < j && j < self.events.len()
    }

    /// Restrict to the events of one transaction (projection `H|T`),
    /// preserving order. Site-level events (crashes/recoveries) are
    /// excluded.
    #[must_use]
    pub fn project(&self, txn: TxnId) -> History {
        History {
            events: self
                .events
                .iter()
                .filter(|e| e.txn() == Some(txn))
                .cloned()
                .collect(),
        }
    }

    /// All transactions mentioned in the history, deduplicated, in first
    /// appearance order.
    #[must_use]
    pub fn transactions(&self) -> Vec<TxnId> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for e in &self.events {
            if let Some(t) = e.txn() {
                if seen.insert(t) {
                    out.push(t);
                }
            }
        }
        out
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.events.iter().enumerate() {
            writeln!(f, "{i:>4}: {e}")?;
        }
        Ok(())
    }
}

impl FromIterator<ActaEvent> for History {
    fn from_iter<I: IntoIterator<Item = ActaEvent>>(iter: I) -> Self {
        History {
            events: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::{Outcome, SiteId};

    fn sample() -> History {
        let c = SiteId::new(0);
        let p = SiteId::new(1);
        let t = TxnId::new(1);
        let u = TxnId::new(2);
        [
            ActaEvent::Prepared {
                participant: p,
                txn: t,
            },
            ActaEvent::Decide {
                coordinator: c,
                txn: t,
                outcome: Outcome::Commit,
            },
            ActaEvent::Crash { site: p },
            ActaEvent::Decide {
                coordinator: c,
                txn: u,
                outcome: Outcome::Abort,
            },
            ActaEvent::Enforce {
                participant: p,
                txn: t,
                outcome: Outcome::Commit,
            },
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn projection_keeps_order_and_drops_site_events() {
        let h = sample();
        let p = h.project(TxnId::new(1));
        assert_eq!(p.len(), 3);
        assert!(matches!(p.events()[0], ActaEvent::Prepared { .. }));
        assert!(matches!(p.events()[2], ActaEvent::Enforce { .. }));
    }

    #[test]
    fn transactions_in_first_appearance_order() {
        let h = sample();
        assert_eq!(h.transactions(), vec![TxnId::new(1), TxnId::new(2)]);
    }

    #[test]
    fn precedence_is_index_order() {
        let h = sample();
        assert!(h.precedes(0, 1));
        assert!(!h.precedes(1, 1));
        assert!(!h.precedes(3, 2));
        assert!(!h.precedes(0, 99), "out-of-range successor");
    }

    #[test]
    fn find_with_pattern() {
        let h = sample();
        let decides = Pattern::decide();
        assert_eq!(h.find(&decides).count(), 2);
        let t1_decide = Pattern::decide().txn(TxnId::new(1));
        assert_eq!(h.first(&t1_decide), Some(1));
        assert!(h.exists(&Pattern::crash()));
    }
}
