//! # acp-acta
//!
//! An executable rendition of the ACTA formalism (Chrysanthis &
//! Ramamritham, ACM TODS 1994) as the paper uses it: transactions'
//! *significant events* — including log operations and crashes — are
//! collected into a complete history `H` with a precedence relation `→`,
//! and correctness criteria are first-order predicates over `H`.
//!
//! Three criteria from the paper are implemented:
//!
//! * **Functional correctness / atomicity** ([`atomicity`]): the
//!   coordinator and all participants reach consistent decisions.
//! * **Operational correctness, Definition 1** ([`operational`]):
//!   atomicity *plus* everyone can eventually forget terminated
//!   transactions and garbage collect.
//! * **Safe state, Definition 2** ([`safe_state`]): after the
//!   coordinator deletes a transaction from its protocol table, every
//!   inquiry is answered consistently with the decided outcome.
//!
//! Histories are produced by the simulator harness in `acp-core` and by
//! the model checker in `acp-check`; the checkers here are pure
//! functions over the recorded events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomicity;
pub mod event;
pub mod history;
pub mod operational;
pub mod predicate;
pub mod safe_state;

pub use atomicity::{check_atomicity, AtomicityViolation};
pub use event::ActaEvent;
pub use history::History;
pub use operational::{check_operational, FinalState, OperationalViolation};
pub use predicate::Pattern;
pub use safe_state::{check_safe_state, SafeStateViolation};
