//! Operational correctness: Definition 1 of the paper.
//!
//! > The integration of different ACPs is operationally correct if and
//! > only if
//! > 1. the coordinator and all the participants reach consistent
//! >    decisions regarding the outcome of transactions and regardless
//! >    of failures;
//! > 2. the coordinator can, eventually, discard all the information
//! >    pertaining to terminated transactions from its protocol table
//! >    and garbage collect its log;
//! > 3. all participants can, eventually, forget about transactions and
//! >    garbage collect their logs.
//!
//! Requirement 1 is [`crate::atomicity::check_atomicity`]. Requirements
//! 2 and 3 are liveness properties; they are checked against the *final
//! state* of a run that was given enough quiet time to finish: anything
//! still pinned then would be pinned forever (C2PC's defect, Theorem 2).

use crate::atomicity::{check_atomicity, AtomicityViolation};
use crate::event::ActaEvent;
use crate::history::History;
use acp_types::{SiteId, TxnId};
use std::collections::BTreeSet;
use std::fmt;

/// The end-of-run garbage-collection state of every site.
#[derive(Clone, Debug, Default)]
pub struct FinalState {
    /// Transactions still in some coordinator's protocol table, with the
    /// coordinator.
    pub protocol_table: Vec<(SiteId, TxnId)>,
    /// Transactions still pinning some site's log (records not yet
    /// garbage-collectable), with the site.
    pub log_pinned: Vec<(SiteId, TxnId)>,
}

/// How operational correctness failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OperationalViolation {
    /// Requirement 1 failed.
    Atomicity(AtomicityViolation),
    /// Requirement 2 failed: a terminated transaction is still in the
    /// coordinator's protocol table.
    ProtocolTableRetained {
        /// The coordinator.
        site: SiteId,
        /// The transaction.
        txn: TxnId,
    },
    /// Requirements 2/3 failed: a terminated transaction still pins a
    /// site's log.
    LogRetained {
        /// The site.
        site: SiteId,
        /// The transaction.
        txn: TxnId,
    },
    /// Requirement 3 failed: a participant enforced a decision but never
    /// reached its forget point.
    ParticipantNeverForgot {
        /// The participant.
        site: SiteId,
        /// The transaction.
        txn: TxnId,
    },
}

impl fmt::Display for OperationalViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperationalViolation::Atomicity(v) => write!(f, "{v}"),
            OperationalViolation::ProtocolTableRetained { site, txn } => {
                write!(
                    f,
                    "{txn} still in protocol table of {site} after quiescence"
                )
            }
            OperationalViolation::LogRetained { site, txn } => {
                write!(f, "{txn} still pins the log of {site} after quiescence")
            }
            OperationalViolation::ParticipantNeverForgot { site, txn } => {
                write!(f, "participant {site} enforced {txn} but never forgot it")
            }
        }
    }
}

/// Check Definition 1 over a quiesced run.
///
/// `terminated` lists the transactions for which the coordinator reached
/// a decision — only those are required to be forgettable (a transaction
/// still mid-flight when the run was cut off owes nobody anything).
#[must_use]
pub fn check_operational(history: &History, final_state: &FinalState) -> Vec<OperationalViolation> {
    let mut violations: Vec<OperationalViolation> = check_atomicity(history)
        .into_iter()
        .map(OperationalViolation::Atomicity)
        .collect();

    // Terminated transactions: those with a Decide event.
    let mut terminated: BTreeSet<TxnId> = BTreeSet::new();
    for e in history.events() {
        if let ActaEvent::Decide { txn, .. } = e {
            terminated.insert(*txn);
        }
    }

    // Requirement 2: protocol table must not retain terminated txns.
    for &(site, txn) in &final_state.protocol_table {
        if terminated.contains(&txn) {
            violations.push(OperationalViolation::ProtocolTableRetained { site, txn });
        }
    }

    // Requirements 2 & 3: logs must not be pinned by terminated txns.
    for &(site, txn) in &final_state.log_pinned {
        if terminated.contains(&txn) {
            violations.push(OperationalViolation::LogRetained { site, txn });
        }
    }

    // Requirement 3: every participant that enforced a terminated
    // transaction must have forgotten it.
    let mut enforced: BTreeSet<(SiteId, TxnId)> = BTreeSet::new();
    let mut forgotten: BTreeSet<(SiteId, TxnId)> = BTreeSet::new();
    for e in history.events() {
        match e {
            ActaEvent::Enforce {
                participant, txn, ..
            } => {
                enforced.insert((*participant, *txn));
            }
            ActaEvent::ForgetPart { participant, txn } => {
                forgotten.insert((*participant, *txn));
            }
            _ => {}
        }
    }
    for &(site, txn) in &enforced {
        if terminated.contains(&txn) && !forgotten.contains(&(site, txn)) {
            violations.push(OperationalViolation::ParticipantNeverForgot { site, txn });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::Outcome;

    fn base_history() -> History {
        let c = SiteId::new(0);
        let p = SiteId::new(1);
        let t = TxnId::new(1);
        [
            ActaEvent::Prepared {
                participant: p,
                txn: t,
            },
            ActaEvent::Decide {
                coordinator: c,
                txn: t,
                outcome: Outcome::Commit,
            },
            ActaEvent::Enforce {
                participant: p,
                txn: t,
                outcome: Outcome::Commit,
            },
            ActaEvent::ForgetPart {
                participant: p,
                txn: t,
            },
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn clean_run_passes() {
        let v = check_operational(&base_history(), &FinalState::default());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn retained_protocol_table_entry_flagged() {
        let fs = FinalState {
            protocol_table: vec![(SiteId::new(0), TxnId::new(1))],
            log_pinned: vec![],
        };
        let v = check_operational(&base_history(), &fs);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            OperationalViolation::ProtocolTableRetained { .. }
        ));
    }

    #[test]
    fn pinned_log_flagged() {
        let fs = FinalState {
            protocol_table: vec![],
            log_pinned: vec![(SiteId::new(1), TxnId::new(1))],
        };
        let v = check_operational(&base_history(), &fs);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], OperationalViolation::LogRetained { .. }));
    }

    #[test]
    fn unterminated_transactions_may_linger() {
        // TxnId 9 never decided: retaining it is fine (it is not
        // "terminated" in the Definition 1 sense).
        let fs = FinalState {
            protocol_table: vec![(SiteId::new(0), TxnId::new(9))],
            log_pinned: vec![(SiteId::new(1), TxnId::new(9))],
        };
        assert!(check_operational(&base_history(), &fs).is_empty());
    }

    #[test]
    fn participant_that_never_forgets_flagged() {
        let c = SiteId::new(0);
        let p = SiteId::new(1);
        let t = TxnId::new(1);
        let h: History = [
            ActaEvent::Decide {
                coordinator: c,
                txn: t,
                outcome: Outcome::Abort,
            },
            ActaEvent::Enforce {
                participant: p,
                txn: t,
                outcome: Outcome::Abort,
            },
        ]
        .into_iter()
        .collect();
        let v = check_operational(&h, &FinalState::default());
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            OperationalViolation::ParticipantNeverForgot { .. }
        ));
    }

    #[test]
    fn atomicity_violations_propagate() {
        let h: History = [
            ActaEvent::Decide {
                coordinator: SiteId::new(0),
                txn: TxnId::new(1),
                outcome: Outcome::Commit,
            },
            ActaEvent::Enforce {
                participant: SiteId::new(1),
                txn: TxnId::new(1),
                outcome: Outcome::Abort,
            },
            ActaEvent::ForgetPart {
                participant: SiteId::new(1),
                txn: TxnId::new(1),
            },
        ]
        .into_iter()
        .collect();
        let v = check_operational(&h, &FinalState::default());
        assert!(v
            .iter()
            .any(|x| matches!(x, OperationalViolation::Atomicity(_))));
    }
}
