//! Significant events.
//!
//! §1: "All ACPs can be specified and all theorems can be proven using
//! ACTA, by modeling log operations and system crashes as transactions'
//! significant events." This enum is that event vocabulary.

use acp_types::{Outcome, ProtocolKind, SiteId, TxnId};
use std::fmt;

/// A significant event in a transaction's (or site's) history.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ActaEvent {
    // ----- coordinator events -----
    /// `Decide_C(Outcome_T)`: the coordinator fixes the transaction's
    /// final outcome.
    Decide {
        /// The coordinator.
        coordinator: SiteId,
        /// The transaction.
        txn: TxnId,
        /// The decision.
        outcome: Outcome,
    },
    /// `DeletePT_C(T)`: the coordinator discards the transaction from
    /// its protocol table (it *forgets* the outcome).
    DeletePt {
        /// The coordinator.
        coordinator: SiteId,
        /// The transaction.
        txn: TxnId,
    },
    /// `Respond_C(Outcome_ti)`: the coordinator answers a participant's
    /// inquiry.
    Respond {
        /// The coordinator.
        coordinator: SiteId,
        /// The transaction.
        txn: TxnId,
        /// The inquiring participant.
        participant: SiteId,
        /// The reported outcome (possibly by presumption).
        outcome: Outcome,
        /// Whether the answer came from a presumption rather than the
        /// protocol table or the log.
        by_presumption: bool,
    },

    // ----- participant events -----
    /// The participant force-writes its prepared record and votes "Yes";
    /// the prepare-to-commit state becomes visible.
    Prepared {
        /// The participant.
        participant: SiteId,
        /// The transaction.
        txn: TxnId,
    },
    /// `INQ_ti`: the participant inquires about the outcome of its
    /// subtransaction.
    Inquire {
        /// The participant.
        participant: SiteId,
        /// The transaction.
        txn: TxnId,
        /// The participant's commit protocol.
        protocol: ProtocolKind,
    },
    /// The participant enforces (commits or aborts) its subtransaction.
    Enforce {
        /// The participant.
        participant: SiteId,
        /// The transaction.
        txn: TxnId,
        /// The enforced outcome.
        outcome: Outcome,
    },
    /// The participant forgets the transaction and may garbage collect.
    ForgetPart {
        /// The participant.
        participant: SiteId,
        /// The transaction.
        txn: TxnId,
    },

    // ----- log operations (modeled as significant events) -----
    /// A log write at a site.
    LogWrite {
        /// The writing site.
        site: SiteId,
        /// The transaction.
        txn: TxnId,
        /// Record kind tag (e.g. `"initiation"`, `"commit"`, `"end"`).
        kind: &'static str,
        /// Whether the write was forced.
        forced: bool,
    },

    // ----- failures -----
    /// A site crashes.
    Crash {
        /// The site.
        site: SiteId,
    },
    /// A site recovers.
    Recover {
        /// The site.
        site: SiteId,
    },
}

impl ActaEvent {
    /// The transaction the event concerns, if any.
    #[must_use]
    pub fn txn(&self) -> Option<TxnId> {
        match *self {
            ActaEvent::Decide { txn, .. }
            | ActaEvent::DeletePt { txn, .. }
            | ActaEvent::Respond { txn, .. }
            | ActaEvent::Prepared { txn, .. }
            | ActaEvent::Inquire { txn, .. }
            | ActaEvent::Enforce { txn, .. }
            | ActaEvent::ForgetPart { txn, .. }
            | ActaEvent::LogWrite { txn, .. } => Some(txn),
            ActaEvent::Crash { .. } | ActaEvent::Recover { .. } => None,
        }
    }

    /// The site at which the event occurs.
    #[must_use]
    pub fn site(&self) -> SiteId {
        match *self {
            ActaEvent::Decide { coordinator, .. }
            | ActaEvent::DeletePt { coordinator, .. }
            | ActaEvent::Respond { coordinator, .. } => coordinator,
            ActaEvent::Prepared { participant, .. }
            | ActaEvent::Inquire { participant, .. }
            | ActaEvent::Enforce { participant, .. }
            | ActaEvent::ForgetPart { participant, .. } => participant,
            ActaEvent::LogWrite { site, .. }
            | ActaEvent::Crash { site }
            | ActaEvent::Recover { site } => site,
        }
    }
}

impl fmt::Display for ActaEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActaEvent::Decide {
                coordinator,
                txn,
                outcome,
            } => {
                write!(f, "Decide_{coordinator}({outcome}_{txn})")
            }
            ActaEvent::DeletePt { coordinator, txn } => {
                write!(f, "DeletePT_{coordinator}({txn})")
            }
            ActaEvent::Respond {
                coordinator,
                txn,
                participant,
                outcome,
                by_presumption,
            } => {
                let tag = if *by_presumption { "*" } else { "" };
                write!(
                    f,
                    "Respond_{coordinator}({outcome}{tag}_{txn}@{participant})"
                )
            }
            ActaEvent::Prepared { participant, txn } => write!(f, "Prepared_{participant}({txn})"),
            ActaEvent::Inquire {
                participant,
                txn,
                protocol,
            } => {
                write!(f, "INQ_{participant}({txn},{protocol})")
            }
            ActaEvent::Enforce {
                participant,
                txn,
                outcome,
            } => {
                write!(f, "Enforce_{participant}({outcome}_{txn})")
            }
            ActaEvent::ForgetPart { participant, txn } => {
                write!(f, "Forget_{participant}({txn})")
            }
            ActaEvent::LogWrite {
                site,
                txn,
                kind,
                forced,
            } => {
                let mode = if *forced { "force" } else { "write" };
                write!(f, "Log_{site}({mode}:{kind}_{txn})")
            }
            ActaEvent::Crash { site } => write!(f, "Crash({site})"),
            ActaEvent::Recover { site } => write!(f, "Recover({site})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_and_site_extraction() {
        let e = ActaEvent::Decide {
            coordinator: SiteId::new(0),
            txn: TxnId::new(4),
            outcome: Outcome::Commit,
        };
        assert_eq!(e.txn(), Some(TxnId::new(4)));
        assert_eq!(e.site(), SiteId::new(0));
        let c = ActaEvent::Crash {
            site: SiteId::new(2),
        };
        assert_eq!(c.txn(), None);
        assert_eq!(c.site(), SiteId::new(2));
    }

    #[test]
    fn display_marks_presumption_responses() {
        let e = ActaEvent::Respond {
            coordinator: SiteId::new(0),
            txn: TxnId::new(1),
            participant: SiteId::new(2),
            outcome: Outcome::Commit,
            by_presumption: true,
        };
        assert!(e.to_string().contains("commit*"));
    }
}
