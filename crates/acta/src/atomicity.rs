//! Functional correctness: global atomicity.
//!
//! "All sites participating in a transaction's execution agree on the
//! final outcome of the transaction" (§1). Violations are exactly what
//! Theorem 1 predicts for U2PC — and what must never appear for PrAny.

use crate::event::ActaEvent;
use crate::history::History;
use acp_types::{Outcome, SiteId, TxnId};
use std::collections::BTreeMap;
use std::fmt;

/// A detected atomicity violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AtomicityViolation {
    /// The transaction whose atomicity broke.
    pub txn: TxnId,
    /// Description of the inconsistency.
    pub detail: String,
}

impl fmt::Display for AtomicityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "atomicity violation for {}: {}", self.txn, self.detail)
    }
}

/// Check global atomicity over a complete history.
///
/// For every transaction:
/// 1. all `Enforce` events carry the same outcome (no participant
///    commits while another aborts);
/// 2. if the coordinator decided, every enforcement matches the
///    decision;
/// 3. every `Respond` is consistent with the decision (a presumption
///    answer that contradicts the decided outcome is the paper's §2
///    failure scenario — it will also show up as (1) or (2) once the
///    misinformed participant enforces, but we flag it at the source);
/// 4. at most one decision is made (a re-sent decision after recovery
///    must repeat the original, which is folded into this check).
#[must_use]
pub fn check_atomicity(history: &History) -> Vec<AtomicityViolation> {
    let mut violations = Vec::new();
    let mut decisions: BTreeMap<TxnId, Outcome> = BTreeMap::new();
    let mut enforcement: BTreeMap<TxnId, BTreeMap<SiteId, Outcome>> = BTreeMap::new();

    for e in history.events() {
        match e {
            ActaEvent::Decide { txn, outcome, .. } => {
                if let Some(prev) = decisions.insert(*txn, *outcome) {
                    if prev != *outcome {
                        violations.push(AtomicityViolation {
                            txn: *txn,
                            detail: format!("coordinator decided {prev} then {outcome}"),
                        });
                    }
                }
            }
            ActaEvent::Enforce {
                participant,
                txn,
                outcome,
            } => {
                let per_site = enforcement.entry(*txn).or_default();
                if let Some(prev) = per_site.insert(*participant, *outcome) {
                    if prev != *outcome {
                        violations.push(AtomicityViolation {
                            txn: *txn,
                            detail: format!("{participant} enforced {prev} then {outcome}"),
                        });
                    }
                }
            }
            ActaEvent::Respond {
                txn,
                participant,
                outcome,
                ..
            } => {
                if let Some(&decided) = decisions.get(txn) {
                    if decided != *outcome {
                        violations.push(AtomicityViolation {
                            txn: *txn,
                            detail: format!(
                                "coordinator responded {outcome} to {participant} but decided {decided}"
                            ),
                        });
                    }
                }
            }
            _ => {}
        }
    }

    // Cross-participant agreement and decision conformance.
    for (txn, per_site) in &enforcement {
        let mut outcomes: Vec<(SiteId, Outcome)> = per_site.iter().map(|(s, o)| (*s, *o)).collect();
        outcomes.sort_by_key(|(site, _)| *site);
        if let Some((first_site, first)) = outcomes.first().copied() {
            for &(site, o) in &outcomes[1..] {
                if o != first {
                    violations.push(AtomicityViolation {
                        txn: *txn,
                        detail: format!("{first_site} enforced {first} but {site} enforced {o}"),
                    });
                }
            }
            if let Some(&decided) = decisions.get(txn) {
                for &(site, o) in &outcomes {
                    if o != decided {
                        violations.push(AtomicityViolation {
                            txn: *txn,
                            detail: format!(
                                "coordinator decided {decided} but {site} enforced {o}"
                            ),
                        });
                    }
                }
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> SiteId {
        SiteId::new(0)
    }

    fn t() -> TxnId {
        TxnId::new(1)
    }

    #[test]
    fn consistent_commit_is_clean() {
        let h: History = [
            ActaEvent::Decide {
                coordinator: c(),
                txn: t(),
                outcome: Outcome::Commit,
            },
            ActaEvent::Enforce {
                participant: SiteId::new(1),
                txn: t(),
                outcome: Outcome::Commit,
            },
            ActaEvent::Enforce {
                participant: SiteId::new(2),
                txn: t(),
                outcome: Outcome::Commit,
            },
        ]
        .into_iter()
        .collect();
        assert!(check_atomicity(&h).is_empty());
    }

    #[test]
    fn split_brain_enforcement_detected() {
        let h: History = [
            ActaEvent::Enforce {
                participant: SiteId::new(1),
                txn: t(),
                outcome: Outcome::Commit,
            },
            ActaEvent::Enforce {
                participant: SiteId::new(2),
                txn: t(),
                outcome: Outcome::Abort,
            },
        ]
        .into_iter()
        .collect();
        let v = check_atomicity(&h);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("enforced"));
    }

    #[test]
    fn enforcement_against_decision_detected() {
        let h: History = [
            ActaEvent::Decide {
                coordinator: c(),
                txn: t(),
                outcome: Outcome::Abort,
            },
            ActaEvent::Enforce {
                participant: SiteId::new(1),
                txn: t(),
                outcome: Outcome::Commit,
            },
        ]
        .into_iter()
        .collect();
        let v = check_atomicity(&h);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("decided abort"));
    }

    #[test]
    fn wrong_presumption_response_detected() {
        // The §2 scenario: commit decided, PrC participant inquires after
        // the coordinator forgot, coordinator answers abort by (PrN/PrA)
        // presumption.
        let h: History = [
            ActaEvent::Decide {
                coordinator: c(),
                txn: t(),
                outcome: Outcome::Commit,
            },
            ActaEvent::Respond {
                coordinator: c(),
                txn: t(),
                participant: SiteId::new(2),
                outcome: Outcome::Abort,
                by_presumption: true,
            },
        ]
        .into_iter()
        .collect();
        let v = check_atomicity(&h);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("responded abort"));
    }

    #[test]
    fn flip_flop_decision_detected() {
        let h: History = [
            ActaEvent::Decide {
                coordinator: c(),
                txn: t(),
                outcome: Outcome::Commit,
            },
            ActaEvent::Decide {
                coordinator: c(),
                txn: t(),
                outcome: Outcome::Abort,
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(check_atomicity(&h).len(), 1);
    }

    #[test]
    fn repeated_identical_decision_is_fine() {
        // Recovery re-initiates the decision phase with the recorded
        // decision (§4.2); same outcome twice is not a violation.
        let h: History = [
            ActaEvent::Decide {
                coordinator: c(),
                txn: t(),
                outcome: Outcome::Commit,
            },
            ActaEvent::Decide {
                coordinator: c(),
                txn: t(),
                outcome: Outcome::Commit,
            },
        ]
        .into_iter()
        .collect();
        assert!(check_atomicity(&h).is_empty());
    }

    #[test]
    fn independent_transactions_do_not_interfere() {
        let h: History = [
            ActaEvent::Decide {
                coordinator: c(),
                txn: TxnId::new(1),
                outcome: Outcome::Commit,
            },
            ActaEvent::Decide {
                coordinator: c(),
                txn: TxnId::new(2),
                outcome: Outcome::Abort,
            },
            ActaEvent::Enforce {
                participant: SiteId::new(1),
                txn: TxnId::new(1),
                outcome: Outcome::Commit,
            },
            ActaEvent::Enforce {
                participant: SiteId::new(1),
                txn: TxnId::new(2),
                outcome: Outcome::Abort,
            },
        ]
        .into_iter()
        .collect();
        assert!(check_atomicity(&h).is_empty());
    }
}
