//! # acp-engine
//!
//! Per-site transactional storage: the substrate a participant's
//! subtransactions actually execute against. The paper's sites are
//! database systems; atomicity violations must be *observable in data*,
//! not just in protocol bookkeeping — this crate makes them so.
//!
//! The engine is a key-value store with:
//!
//! * **no-wait strict two-phase locking** ([`lock`]): shared/exclusive
//!   locks acquired at access time and held to transaction end; a
//!   conflicting request fails immediately (no-wait ⇒ deadlock-free),
//!   and the caller votes "No"/aborts;
//! * **buffered writes (no-steal)** ([`txn`]): updates live in the
//!   transaction's write set until commit, so crash recovery never needs
//!   to undo — only redo winners;
//! * **write-ahead logging** ([`site`]): at *prepare*, the write set is
//!   appended as update records with before/after images and forced —
//!   exactly the durability point at which a participant may vote "Yes";
//! * **redo recovery** ([`site::SiteEngine::recover`]): rebuilds the
//!   store from the data log, applying committed transactions in commit
//!   order, re-staging in-doubt (prepared) transactions and re-acquiring
//!   their locks — "holding the locks of in-doubt transactions" is what
//!   makes blocking visible.
//!
//! The engine keeps its own data log, separate from the commit
//! protocol's log (a deliberate, documented deviation from the single
//! shared log a monolithic DBMS would use: the write-ahead ordering —
//! data forced before the prepared record — is preserved by the `Site`
//! composition in `acp-net`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod lock;
pub mod site;
pub mod store;
pub mod txn;

pub use error::EngineError;
pub use lock::{LockMode, LockTable};
pub use site::{RecoveredOutcome, SiteEngine};
pub use store::KvStore;
pub use txn::{TxnContext, TxnPhase};
