//! Engine errors.

use acp_types::TxnId;
use std::fmt;

/// Errors surfaced by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A lock request conflicted with another transaction (no-wait 2PL:
    /// the requester should abort or retry the whole transaction).
    LockConflict {
        /// The requesting transaction.
        requester: TxnId,
        /// A transaction currently holding the lock.
        holder: TxnId,
        /// The contended key.
        key: Vec<u8>,
    },
    /// Operation on a transaction the engine does not know.
    UnknownTxn(TxnId),
    /// Operation illegal in the transaction's current phase (e.g.
    /// writing after prepare).
    WrongPhase {
        /// The transaction.
        txn: TxnId,
        /// What was attempted.
        op: &'static str,
    },
    /// The underlying log failed.
    Wal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::LockConflict {
                requester,
                holder,
                key,
            } => write!(
                f,
                "{requester} lock conflict with {holder} on key of {} bytes",
                key.len()
            ),
            EngineError::UnknownTxn(t) => write!(f, "unknown transaction {t}"),
            EngineError::WrongPhase { txn, op } => {
                write!(f, "{op} not allowed in {txn}'s current phase")
            }
            EngineError::Wal(e) => write!(f, "wal error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<acp_wal::WalError> for EngineError {
    fn from(e: acp_wal::WalError) -> Self {
        EngineError::Wal(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::LockConflict {
            requester: TxnId::new(1),
            holder: TxnId::new(2),
            key: b"k".to_vec(),
        };
        assert!(e.to_string().contains("T1"));
        assert!(e.to_string().contains("T2"));
    }
}
