//! No-wait strict two-phase locking.
//!
//! Locks are acquired at access time and held until the transaction
//! terminates (strictness — required so that a prepared transaction's
//! effects stay invisible while it is in doubt, which is exactly the
//! blocking behaviour 2PC is infamous for). Conflicting requests fail
//! immediately instead of queueing: no waiting ⇒ no deadlocks, at the
//! cost of aborts under contention.

use crate::error::EngineError;
use acp_types::TxnId;
use std::collections::{BTreeMap, BTreeSet};

/// Lock modes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockMode {
    /// Shared (read) — compatible with other shared locks.
    Shared,
    /// Exclusive (write) — compatible with nothing.
    Exclusive,
}

#[derive(Clone, Debug)]
struct LockState {
    mode: LockMode,
    holders: BTreeSet<TxnId>,
}

/// A per-site lock table.
#[derive(Clone, Debug, Default)]
pub struct LockTable {
    locks: BTreeMap<Vec<u8>, LockState>,
}

impl LockTable {
    /// An empty lock table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire (or upgrade) a lock. Idempotent for locks already held in
    /// a sufficient mode. Fails immediately on conflict.
    pub fn acquire(&mut self, txn: TxnId, key: &[u8], mode: LockMode) -> Result<(), EngineError> {
        match self.locks.get_mut(key) {
            None => {
                self.locks.insert(
                    key.to_vec(),
                    LockState {
                        mode,
                        holders: BTreeSet::from([txn]),
                    },
                );
                Ok(())
            }
            Some(state) => {
                let sole_holder = state.holders.len() == 1 && state.holders.contains(&txn);
                match (state.mode, mode) {
                    // Re-acquire in same or weaker mode.
                    (LockMode::Exclusive, _) if sole_holder => Ok(()),
                    (LockMode::Shared, LockMode::Shared) => {
                        state.holders.insert(txn);
                        Ok(())
                    }
                    // Upgrade shared → exclusive, only as sole holder.
                    (LockMode::Shared, LockMode::Exclusive) if sole_holder => {
                        state.mode = LockMode::Exclusive;
                        Ok(())
                    }
                    _ => {
                        let holder = *state
                            .holders
                            .iter()
                            .find(|h| **h != txn)
                            .expect("conflict implies another holder");
                        Err(EngineError::LockConflict {
                            requester: txn,
                            holder,
                            key: key.to_vec(),
                        })
                    }
                }
            }
        }
    }

    /// Release every lock `txn` holds (called at commit/abort — the
    /// shrinking phase happens all at once, as strict 2PL requires).
    pub fn release_all(&mut self, txn: TxnId) {
        self.locks.retain(|_, state| {
            state.holders.remove(&txn);
            !state.holders.is_empty()
        });
    }

    /// Does `txn` hold a lock on `key`?
    #[must_use]
    pub fn holds(&self, txn: TxnId, key: &[u8]) -> bool {
        self.locks
            .get(key)
            .is_some_and(|s| s.holders.contains(&txn))
    }

    /// Number of locked keys.
    #[must_use]
    pub fn locked_keys(&self) -> usize {
        self.locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId::new(n)
    }

    #[test]
    fn shared_locks_are_compatible() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), b"k", LockMode::Shared).unwrap();
        lt.acquire(t(2), b"k", LockMode::Shared).unwrap();
        assert!(lt.holds(t(1), b"k"));
        assert!(lt.holds(t(2), b"k"));
    }

    #[test]
    fn exclusive_conflicts_with_everything() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), b"k", LockMode::Exclusive).unwrap();
        assert!(matches!(
            lt.acquire(t(2), b"k", LockMode::Shared),
            Err(EngineError::LockConflict { holder, .. }) if holder == t(1)
        ));
        assert!(lt.acquire(t(2), b"k", LockMode::Exclusive).is_err());
        // Re-acquisition by the holder is fine, in either mode.
        lt.acquire(t(1), b"k", LockMode::Exclusive).unwrap();
        lt.acquire(t(1), b"k", LockMode::Shared).unwrap();
    }

    #[test]
    fn upgrade_only_as_sole_holder() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), b"k", LockMode::Shared).unwrap();
        lt.acquire(t(1), b"k", LockMode::Exclusive).unwrap(); // sole → ok

        let mut lt = LockTable::new();
        lt.acquire(t(1), b"k", LockMode::Shared).unwrap();
        lt.acquire(t(2), b"k", LockMode::Shared).unwrap();
        assert!(lt.acquire(t(1), b"k", LockMode::Exclusive).is_err());
    }

    #[test]
    fn release_frees_conflicts() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), b"k", LockMode::Exclusive).unwrap();
        lt.acquire(t(1), b"j", LockMode::Shared).unwrap();
        lt.release_all(t(1));
        assert_eq!(lt.locked_keys(), 0);
        lt.acquire(t(2), b"k", LockMode::Exclusive).unwrap();
    }

    #[test]
    fn release_keeps_other_holders() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), b"k", LockMode::Shared).unwrap();
        lt.acquire(t(2), b"k", LockMode::Shared).unwrap();
        lt.release_all(t(1));
        assert!(lt.holds(t(2), b"k"));
        assert!(!lt.holds(t(1), b"k"));
    }
}
