//! The site engine: store + locks + transactions + WAL + recovery.

use crate::error::EngineError;
use crate::lock::{LockMode, LockTable};
use crate::store::KvStore;
use crate::txn::{TxnContext, TxnPhase};
use acp_types::{LogPayload, Outcome, TxnId};
use acp_wal::scan::UpdateImage;
use acp_wal::{Lsn, StableLog};
use std::collections::BTreeMap;

/// What recovery (driven by the commit-protocol layer) knows about a
/// transaction's fate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveredOutcome {
    /// Decision on record: enforce it.
    Decided(Outcome),
    /// Prepared but undecided: re-stage the write set, re-acquire locks,
    /// block until the protocol layer resolves it.
    InDoubt,
}

/// A transactional key-value engine for one site.
#[derive(Clone, Debug)]
pub struct SiteEngine<L: StableLog> {
    store: KvStore,
    locks: LockTable,
    txns: BTreeMap<TxnId, TxnContext>,
    /// First log position of each *live* (active or prepared)
    /// transaction's update records — the checkpoint truncation barrier.
    first_lsn: BTreeMap<TxnId, Lsn>,
    log: L,
}

impl<L: StableLog> SiteEngine<L> {
    /// A fresh engine over the given data log.
    pub fn new(log: L) -> Self {
        SiteEngine {
            store: KvStore::new(),
            locks: LockTable::new(),
            txns: BTreeMap::new(),
            first_lsn: BTreeMap::new(),
            log,
        }
    }

    /// Begin a local subtransaction.
    pub fn begin(&mut self, txn: TxnId) {
        self.txns.entry(txn).or_insert_with(|| TxnContext::new(txn));
    }

    /// Transactional read: shared lock, own writes visible.
    pub fn get(&mut self, txn: TxnId, key: &[u8]) -> Result<Option<Vec<u8>>, EngineError> {
        let ctx = self.txns.get(&txn).ok_or(EngineError::UnknownTxn(txn))?;
        if ctx.phase != TxnPhase::Active {
            return Err(EngineError::WrongPhase { txn, op: "get" });
        }
        self.locks.acquire(txn, key, LockMode::Shared)?;
        let ctx = self.txns.get(&txn).expect("checked above");
        Ok(match ctx.own_view(key) {
            Some(w) => w.after.clone(),
            None => self.store.get(key).map(<[u8]>::to_vec),
        })
    }

    /// Transactional write (upsert).
    pub fn put(&mut self, txn: TxnId, key: &[u8], value: &[u8]) -> Result<(), EngineError> {
        self.write(txn, key, Some(value.to_vec()))
    }

    /// Transactional delete.
    pub fn delete(&mut self, txn: TxnId, key: &[u8]) -> Result<(), EngineError> {
        self.write(txn, key, None)
    }

    fn write(&mut self, txn: TxnId, key: &[u8], after: Option<Vec<u8>>) -> Result<(), EngineError> {
        let ctx = self.txns.get(&txn).ok_or(EngineError::UnknownTxn(txn))?;
        if ctx.phase != TxnPhase::Active {
            return Err(EngineError::WrongPhase { txn, op: "write" });
        }
        self.locks.acquire(txn, key, LockMode::Exclusive)?;
        let before = self.store.get(key).map(<[u8]>::to_vec);
        let ctx = self.txns.get_mut(&txn).expect("checked above");
        ctx.buffer_write(key, before, after);
        Ok(())
    }

    /// Is the transaction read-only so far (eligible for the read-only
    /// vote)?
    pub fn is_read_only(&self, txn: TxnId) -> Result<bool, EngineError> {
        Ok(self
            .txns
            .get(&txn)
            .ok_or(EngineError::UnknownTxn(txn))?
            .is_read_only())
    }

    /// Prepare: append the write set to the data log with before/after
    /// images and force it. After this returns, the site may vote "Yes";
    /// the transaction can no longer be unilaterally aborted by the
    /// engine.
    pub fn prepare(&mut self, txn: TxnId) -> Result<(), EngineError> {
        self.stage_prepare(txn)?;
        self.log.flush()?; // one force for the whole write set
        self.txns.get_mut(&txn).expect("checked").phase = TxnPhase::Prepared;
        Ok(())
    }

    /// Like [`SiteEngine::prepare`], but leaves the write-set records
    /// in the log's volatile buffer instead of forcing them — for hosts
    /// that batch data-log durability across transactions (the reactor
    /// flushes once per tick). The caller must call
    /// [`SiteEngine::flush_log`] before externalizing a Yes vote whose
    /// write set was staged this way, or the force rule is violated.
    pub fn prepare_lazy(&mut self, txn: TxnId) -> Result<(), EngineError> {
        self.stage_prepare(txn)?;
        self.txns.get_mut(&txn).expect("checked").phase = TxnPhase::Prepared;
        Ok(())
    }

    fn stage_prepare(&mut self, txn: TxnId) -> Result<(), EngineError> {
        let ctx = self.txns.get(&txn).ok_or(EngineError::UnknownTxn(txn))?;
        if ctx.phase != TxnPhase::Active {
            return Err(EngineError::WrongPhase { txn, op: "prepare" });
        }
        let writes: Vec<UpdateImage> = ctx
            .writes
            .iter()
            .map(|(k, w)| (k.clone(), w.before.clone(), w.after.clone()))
            .collect();
        if !writes.is_empty() {
            self.first_lsn
                .entry(txn)
                .or_insert_with(|| self.log.next_lsn());
        }
        for (key, before, after) in writes {
            self.log.append(
                LogPayload::Update {
                    txn,
                    key,
                    before,
                    after,
                },
                false,
            )?;
        }
        Ok(())
    }

    /// Flush the data log's volatile buffer (no-op when it is empty).
    /// Pairs with [`SiteEngine::prepare_lazy`].
    pub fn flush_log(&mut self) -> Result<(), EngineError> {
        self.log.flush()?;
        Ok(())
    }

    /// Enforce the final outcome: apply (commit) or discard (abort) the
    /// write set, log the redo marker, release locks.
    ///
    /// Idempotent for unknown transactions (already resolved and
    /// forgotten — footnote 5's engine-side counterpart).
    pub fn resolve(&mut self, txn: TxnId, outcome: Outcome) -> Result<(), EngineError> {
        let Some(ctx) = self.txns.remove(&txn) else {
            return Ok(());
        };
        if outcome == Outcome::Commit {
            for (key, w) in &ctx.writes {
                self.store.apply(key, w.after.as_deref());
            }
            // Redo marker: which prepared write sets won. Non-forced —
            // if it is lost, the transaction is back in doubt and the
            // protocol layer re-resolves it after recovery.
            if ctx.phase == TxnPhase::Prepared && !ctx.writes.is_empty() {
                self.log
                    .append(LogPayload::PartDecision { txn, outcome }, false)?;
            }
        } else if ctx.phase == TxnPhase::Prepared && !ctx.writes.is_empty() {
            self.log
                .append(LogPayload::PartDecision { txn, outcome }, false)?;
        }
        self.first_lsn.remove(&txn);
        self.locks.release_all(txn);
        Ok(())
    }

    /// Unilateral abort of an *active* (not prepared) transaction.
    pub fn abort_active(&mut self, txn: TxnId) -> Result<(), EngineError> {
        match self.txns.get(&txn) {
            None => Ok(()),
            Some(ctx) if ctx.phase == TxnPhase::Prepared => Err(EngineError::WrongPhase {
                txn,
                op: "unilateral abort",
            }),
            Some(_) => {
                self.txns.remove(&txn);
                self.first_lsn.remove(&txn);
                self.locks.release_all(txn);
                Ok(())
            }
        }
    }

    /// Write a checkpoint — a forced snapshot of the committed store —
    /// and truncate the data log up to it (bounded by the oldest live
    /// transaction's first update record, whose redo information must
    /// survive until that transaction resolves). Returns the number of
    /// log records reclaimed.
    ///
    /// This is the storage-engine counterpart of the protocol-side end
    /// records: together they keep *both* logs of a site bounded, as
    /// Definition 1's requirement 3 demands.
    pub fn checkpoint(&mut self) -> Result<usize, EngineError> {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = self
            .store
            .iter()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        let checkpoint_lsn = self.log.next_lsn();
        self.log.append(LogPayload::Checkpoint { entries }, true)?;
        let barrier = self
            .first_lsn
            .values()
            .min()
            .copied()
            .unwrap_or(checkpoint_lsn)
            .min(checkpoint_lsn);
        let before = self.log.stats().truncated;
        if barrier > self.log.low_water_mark() {
            self.log.truncate_prefix(barrier)?;
        }
        Ok((self.log.stats().truncated - before) as usize)
    }

    /// Committed value, outside any transaction (for assertions).
    #[must_use]
    pub fn committed_get(&self, key: &[u8]) -> Option<&[u8]> {
        self.store.get(key)
    }

    /// The committed store (for whole-state assertions).
    #[must_use]
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Borrow the data log.
    #[must_use]
    pub fn log(&self) -> &L {
        &self.log
    }

    /// Is the transaction currently prepared (holding locks, in doubt)?
    #[must_use]
    pub fn is_prepared(&self, txn: TxnId) -> bool {
        self.txns
            .get(&txn)
            .is_some_and(|c| c.phase == TxnPhase::Prepared)
    }

    /// Number of keys currently locked (a measure of blocking).
    #[must_use]
    pub fn locked_keys(&self) -> usize {
        self.locks.locked_keys()
    }

    /// Crash: volatile state (store cache, lock table, active
    /// transactions) is lost; only the forced log survives.
    pub fn crash(&mut self) {
        self.store = KvStore::new();
        self.locks = LockTable::new();
        self.txns.clear();
        self.first_lsn.clear();
        self.log.lose_unflushed().expect("log crash");
    }

    /// Redo recovery. `outcomes` gives, per transaction, what the commit
    /// protocol layer knows from *its* log (decided or in doubt);
    /// transactions absent from the map with updates but no redo marker
    /// are treated as aborted (they never got a decision, and the
    /// protocol log has no prepared record — they were never voted on,
    /// or their fate is abort by presumption).
    ///
    /// Rebuilds the store by applying committed transactions' write sets
    /// in commit-marker order (for marker-less commits given via
    /// `outcomes`, after all marked ones), then re-stages in-doubt
    /// transactions and re-acquires their exclusive locks.
    pub fn recover(
        &mut self,
        outcomes: &BTreeMap<TxnId, RecoveredOutcome>,
    ) -> Result<(), EngineError> {
        let records = self.log.records()?;

        // Start from the latest checkpoint, if any.
        let checkpoint = acp_wal::scan::latest_checkpoint(&records);
        if let Some((_, entries)) = checkpoint {
            for (k, v) in entries {
                self.store.apply(k, Some(v));
            }
        }
        let checkpoint_lsn = checkpoint.map(|(l, _)| l);

        // Gather per-txn updates (in log order, with positions) and
        // marker positions. Markers before the checkpoint are already
        // reflected in the snapshot and must not be redone (their
        // updates may predate the snapshot's values).
        let mut updates: BTreeMap<TxnId, Vec<UpdateImage>> = BTreeMap::new();
        let mut first_positions: BTreeMap<TxnId, Lsn> = BTreeMap::new();
        let mut markers: Vec<(Lsn, TxnId, Outcome)> = Vec::new();
        for rec in &records {
            match &rec.payload {
                LogPayload::Update {
                    txn,
                    key,
                    before,
                    after,
                } => {
                    first_positions.entry(*txn).or_insert(rec.lsn);
                    updates.entry(*txn).or_default().push((
                        key.clone(),
                        before.clone(),
                        after.clone(),
                    ));
                }
                LogPayload::PartDecision { txn, outcome } => {
                    // Pre-checkpoint markers stay in the list so phase 2
                    // knows the transaction is resolved; phase 1 skips
                    // redoing them (the snapshot already reflects them).
                    markers.push((rec.lsn, *txn, *outcome));
                }
                _ => {}
            }
        }

        // Phase 1: redo committed transactions in commit order. Commits
        // whose marker precedes the checkpoint are already in the
        // snapshot; redoing them anyway is harmless (their write sets
        // cannot conflict with later-committed values under 2PL, and the
        // snapshot already includes any later value — so skip them to
        // keep replay minimal and provably ordered).
        let mut resolved: BTreeMap<TxnId, Outcome> = BTreeMap::new();
        for &(_, txn, outcome) in &markers {
            resolved.insert(txn, outcome);
        }
        for &(lsn, txn, outcome) in &markers {
            if checkpoint_lsn.is_some_and(|c| lsn < c) {
                continue; // reflected in the snapshot
            }
            if outcome == Outcome::Commit {
                if let Some(ws) = updates.get(&txn) {
                    for (key, _, after) in ws {
                        self.store.apply(key, after.as_deref());
                    }
                }
            }
        }
        // Marker-less transactions whose fate the protocol layer knows.
        for (&txn, &ro) in outcomes {
            if resolved.contains_key(&txn) {
                continue;
            }
            if let RecoveredOutcome::Decided(outcome) = ro {
                resolved.insert(txn, outcome);
                if outcome == Outcome::Commit {
                    if let Some(ws) = updates.get(&txn) {
                        for (key, _, after) in ws {
                            self.store.apply(key, after.as_deref());
                        }
                    }
                }
                // Re-write the redo marker lost in the crash.
                if updates.contains_key(&txn) {
                    self.log
                        .append(LogPayload::PartDecision { txn, outcome }, false)?;
                }
            }
        }

        // Phase 2: re-stage in-doubt transactions and re-lock their keys.
        for (&txn, &ro) in outcomes {
            if ro == RecoveredOutcome::InDoubt && !resolved.contains_key(&txn) {
                let mut ctx = TxnContext::new(txn);
                ctx.phase = TxnPhase::Prepared;
                if let Some(ws) = updates.get(&txn) {
                    for (key, before, after) in ws {
                        self.locks
                            .acquire(txn, key, LockMode::Exclusive)
                            .expect("recovery lock acquisition cannot conflict");
                        ctx.buffer_write(key, before.clone(), after.clone());
                    }
                    if let Some(&first) = first_positions.get(&txn) {
                        self.first_lsn.insert(txn, first);
                    }
                }
                self.txns.insert(txn, ctx);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_wal::MemLog;

    fn engine() -> SiteEngine<MemLog> {
        SiteEngine::new(MemLog::new())
    }

    fn t(n: u64) -> TxnId {
        TxnId::new(n)
    }

    #[test]
    fn read_your_own_writes_before_commit() {
        let mut e = engine();
        e.begin(t(1));
        e.put(t(1), b"k", b"v").unwrap();
        assert_eq!(e.get(t(1), b"k").unwrap().as_deref(), Some(b"v".as_slice()));
        assert_eq!(e.committed_get(b"k"), None, "no-steal: store untouched");
    }

    #[test]
    fn commit_applies_abort_discards() {
        let mut e = engine();
        e.begin(t(1));
        e.put(t(1), b"k", b"v").unwrap();
        e.prepare(t(1)).unwrap();
        e.resolve(t(1), Outcome::Commit).unwrap();
        assert_eq!(e.committed_get(b"k"), Some(b"v".as_slice()));

        e.begin(t(2));
        e.put(t(2), b"k", b"evil").unwrap();
        e.prepare(t(2)).unwrap();
        e.resolve(t(2), Outcome::Abort).unwrap();
        assert_eq!(e.committed_get(b"k"), Some(b"v".as_slice()));
    }

    #[test]
    fn writes_blocked_by_prepared_transaction() {
        let mut e = engine();
        e.begin(t(1));
        e.put(t(1), b"k", b"v").unwrap();
        e.prepare(t(1)).unwrap();
        // Another transaction cannot touch the key while T1 is in doubt —
        // the blocking behaviour that motivates all the GC/presumption
        // machinery.
        e.begin(t(2));
        assert!(matches!(
            e.get(t(2), b"k"),
            Err(EngineError::LockConflict { .. })
        ));
        e.resolve(t(1), Outcome::Commit).unwrap();
        assert_eq!(e.get(t(2), b"k").unwrap().as_deref(), Some(b"v".as_slice()));
    }

    #[test]
    fn prepared_transactions_cannot_write_or_unilaterally_abort() {
        let mut e = engine();
        e.begin(t(1));
        e.put(t(1), b"k", b"v").unwrap();
        e.prepare(t(1)).unwrap();
        assert!(matches!(
            e.put(t(1), b"j", b"x"),
            Err(EngineError::WrongPhase { .. })
        ));
        assert!(matches!(
            e.abort_active(t(1)),
            Err(EngineError::WrongPhase { .. })
        ));
    }

    #[test]
    fn active_transactions_abort_unilaterally() {
        let mut e = engine();
        e.begin(t(1));
        e.put(t(1), b"k", b"v").unwrap();
        e.abort_active(t(1)).unwrap();
        assert_eq!(e.locked_keys(), 0);
        assert_eq!(e.committed_get(b"k"), None);
    }

    #[test]
    fn read_only_detection_drives_the_read_only_vote() {
        let mut e = engine();
        e.begin(t(1));
        assert!(e.is_read_only(t(1)).unwrap());
        e.get(t(1), b"k").unwrap();
        assert!(e.is_read_only(t(1)).unwrap());
        e.put(t(1), b"k", b"v").unwrap();
        assert!(!e.is_read_only(t(1)).unwrap());
    }

    #[test]
    fn crash_loses_everything_recovery_redoes_committed() {
        let mut e = engine();
        e.begin(t(1));
        e.put(t(1), b"a", b"1").unwrap();
        e.prepare(t(1)).unwrap();
        e.resolve(t(1), Outcome::Commit).unwrap();
        // Make the redo marker durable by forcing via another prepare.
        e.begin(t(2));
        e.put(t(2), b"b", b"2").unwrap();
        e.prepare(t(2)).unwrap();

        e.crash();
        assert_eq!(e.committed_get(b"a"), None, "volatile store lost");

        let mut outcomes = BTreeMap::new();
        outcomes.insert(t(2), RecoveredOutcome::InDoubt);
        e.recover(&outcomes).unwrap();
        assert_eq!(
            e.committed_get(b"a"),
            Some(b"1".as_slice()),
            "committed data redone"
        );
        assert!(e.is_prepared(t(2)), "prepared txn re-staged in doubt");
        // Its keys are locked again.
        e.begin(t(3));
        assert!(e.get(t(3), b"b").is_err());

        // The protocol layer later resolves T2.
        e.resolve(t(2), Outcome::Commit).unwrap();
        assert_eq!(e.committed_get(b"b"), Some(b"2".as_slice()));
    }

    #[test]
    fn recovery_with_protocol_outcome_for_markerless_commit() {
        let mut e = engine();
        e.begin(t(1));
        e.put(t(1), b"a", b"1").unwrap();
        e.prepare(t(1)).unwrap();
        e.resolve(t(1), Outcome::Commit).unwrap();
        // Crash immediately: the (lazy) redo marker is lost.
        e.crash();
        let mut outcomes = BTreeMap::new();
        outcomes.insert(t(1), RecoveredOutcome::Decided(Outcome::Commit));
        e.recover(&outcomes).unwrap();
        assert_eq!(e.committed_get(b"a"), Some(b"1".as_slice()));
    }

    #[test]
    fn recovery_treats_unknown_prepared_writes_as_aborted() {
        let mut e = engine();
        e.begin(t(1));
        e.put(t(1), b"a", b"1").unwrap();
        e.prepare(t(1)).unwrap();
        e.crash();
        // Protocol layer says nothing about T1 (e.g. abort by
        // presumption already enforced and forgotten): not in doubt.
        e.recover(&BTreeMap::new()).unwrap();
        assert_eq!(e.committed_get(b"a"), None);
        assert!(!e.is_prepared(t(1)));
        assert_eq!(e.locked_keys(), 0);
    }

    #[test]
    fn commit_order_wins_over_prepare_order() {
        // T1 prepares first but T2 commits first on a disjoint key set;
        // then T1 commits. Same-key conflicts are impossible under 2PL,
        // but the marker ordering must still replay deterministically.
        let mut e = engine();
        e.begin(t(1));
        e.put(t(1), b"a", b"t1").unwrap();
        e.prepare(t(1)).unwrap();
        e.begin(t(2));
        e.put(t(2), b"b", b"t2").unwrap();
        e.prepare(t(2)).unwrap();
        e.resolve(t(2), Outcome::Commit).unwrap();
        e.resolve(t(1), Outcome::Commit).unwrap();
        // Force markers durable.
        e.begin(t(3));
        e.put(t(3), b"c", b"x").unwrap();
        e.prepare(t(3)).unwrap();
        e.crash();
        e.recover(&BTreeMap::new()).unwrap();
        assert_eq!(e.committed_get(b"a"), Some(b"t1".as_slice()));
        assert_eq!(e.committed_get(b"b"), Some(b"t2".as_slice()));
        assert_eq!(e.committed_get(b"c"), None);
    }

    #[test]
    fn resolve_is_idempotent_for_forgotten_transactions() {
        let mut e = engine();
        e.resolve(t(9), Outcome::Commit).unwrap();
        e.resolve(t(9), Outcome::Abort).unwrap();
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use acp_wal::MemLog;
    use std::collections::BTreeMap;

    fn t(n: u64) -> TxnId {
        TxnId::new(n)
    }

    fn commit_one(e: &mut SiteEngine<MemLog>, n: u64, key: &[u8], val: &[u8]) {
        e.begin(t(n));
        e.put(t(n), key, val).unwrap();
        e.prepare(t(n)).unwrap();
        e.resolve(t(n), Outcome::Commit).unwrap();
    }

    #[test]
    fn checkpoint_truncates_resolved_history() {
        let mut e = SiteEngine::new(MemLog::new());
        for i in 0..20 {
            commit_one(&mut e, i, format!("k{i}").as_bytes(), b"v");
        }
        let before = e.log().retained();
        let reclaimed = e.checkpoint().unwrap();
        assert!(reclaimed > 0);
        assert!(
            e.log().retained() < before,
            "{} !< {before}",
            e.log().retained()
        );
    }

    #[test]
    fn recovery_from_checkpoint_alone_restores_store() {
        let mut e = SiteEngine::new(MemLog::new());
        for i in 0..10 {
            commit_one(
                &mut e,
                i,
                format!("k{i}").as_bytes(),
                format!("v{i}").as_bytes(),
            );
        }
        e.checkpoint().unwrap();
        e.crash();
        e.recover(&BTreeMap::new()).unwrap();
        for i in 0..10 {
            assert_eq!(
                e.committed_get(format!("k{i}").as_bytes()),
                Some(format!("v{i}").as_bytes()),
                "k{i}"
            );
        }
    }

    #[test]
    fn post_checkpoint_commits_redo_on_top_of_snapshot() {
        let mut e = SiteEngine::new(MemLog::new());
        commit_one(&mut e, 1, b"a", b"old");
        e.checkpoint().unwrap();
        commit_one(&mut e, 2, b"a", b"new");
        commit_one(&mut e, 3, b"b", b"fresh");
        // Force the tail durable, then crash.
        e.begin(t(9));
        e.put(t(9), b"x", b"y").unwrap();
        e.prepare(t(9)).unwrap();
        e.crash();
        e.recover(&BTreeMap::new()).unwrap();
        assert_eq!(e.committed_get(b"a"), Some(b"new".as_slice()));
        assert_eq!(e.committed_get(b"b"), Some(b"fresh".as_slice()));
        assert_eq!(
            e.committed_get(b"x"),
            None,
            "unresolved prepared txn not applied"
        );
    }

    #[test]
    fn live_transactions_block_truncation_past_their_records() {
        let mut e = SiteEngine::new(MemLog::new());
        // A prepared (in-doubt) transaction whose records must survive.
        e.begin(t(1));
        e.put(t(1), b"doubt", b"d").unwrap();
        e.prepare(t(1)).unwrap();
        // Plenty of resolved history after it.
        for i in 2..12 {
            commit_one(&mut e, i, format!("k{i}").as_bytes(), b"v");
        }
        e.checkpoint().unwrap();
        // The prepared txn's update record is still in the log.
        let summaries = acp_wal::scan::analyze(&e.log().records().unwrap());
        assert!(
            summaries.get(&t(1)).is_some_and(|s| !s.updates.is_empty()),
            "in-doubt write set must survive the checkpoint"
        );
        // And crash+recovery can still commit it.
        e.crash();
        let mut outcomes = BTreeMap::new();
        outcomes.insert(t(1), RecoveredOutcome::InDoubt);
        e.recover(&outcomes).unwrap();
        e.resolve(t(1), Outcome::Commit).unwrap();
        assert_eq!(e.committed_get(b"doubt"), Some(b"d".as_slice()));
    }

    #[test]
    fn repeated_checkpoints_keep_log_bounded() {
        let mut e = SiteEngine::new(MemLog::new());
        let mut max_retained = 0;
        for round in 0..10 {
            for i in 0..20 {
                commit_one(&mut e, round * 100 + i, format!("k{i}").as_bytes(), b"v");
            }
            e.checkpoint().unwrap();
            max_retained = max_retained.max(e.log().retained());
        }
        // Bounded: never more than one round's records + snapshot.
        assert!(max_retained < 70, "retained grew to {max_retained}");
        e.crash();
        e.recover(&BTreeMap::new()).unwrap();
        assert_eq!(e.store().len(), 20);
    }

    #[test]
    fn pre_checkpoint_markers_are_not_redone_over_snapshot() {
        // k committed as "v1", then "v2", checkpoint, crash. If recovery
        // redid the pre-checkpoint commits over the snapshot in marker
        // order it would still end at "v2" — but the skip keeps replay
        // minimal; verify the end state either way.
        let mut e = SiteEngine::new(MemLog::new());
        commit_one(&mut e, 1, b"k", b"v1");
        commit_one(&mut e, 2, b"k", b"v2");
        e.checkpoint().unwrap();
        e.crash();
        e.recover(&BTreeMap::new()).unwrap();
        assert_eq!(e.committed_get(b"k"), Some(b"v2".as_slice()));
    }
}
