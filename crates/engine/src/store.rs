//! The committed key-value state.

use std::collections::BTreeMap;

/// An ordered key-value store holding only *committed* data.
///
/// Uncommitted updates never touch the store (no-steal); they live in
/// the owning transaction's write set until commit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl KvStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Committed value for `key`.
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(Vec::as_slice)
    }

    /// Apply a committed update: `Some(v)` upserts, `None` deletes.
    pub fn apply(&mut self, key: &[u8], value: Option<&[u8]>) {
        match value {
            Some(v) => {
                self.map.insert(key.to_vec(), v.to_vec());
            }
            None => {
                self.map.remove(key);
            }
        }
    }

    /// Number of live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the store empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over committed entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.map.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_and_delete() {
        let mut s = KvStore::new();
        s.apply(b"a", Some(b"1"));
        s.apply(b"b", Some(b"2"));
        assert_eq!(s.get(b"a"), Some(b"1".as_slice()));
        s.apply(b"a", Some(b"9"));
        assert_eq!(s.get(b"a"), Some(b"9".as_slice()));
        s.apply(b"a", None);
        assert_eq!(s.get(b"a"), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut s = KvStore::new();
        s.apply(b"c", Some(b"3"));
        s.apply(b"a", Some(b"1"));
        let keys: Vec<&[u8]> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"c".as_slice()]);
    }
}
