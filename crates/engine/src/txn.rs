//! Transaction contexts: buffered write sets and lifecycle phases.

use acp_types::TxnId;
use std::collections::BTreeMap;

/// Lifecycle of a local subtransaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnPhase {
    /// Executing reads and (buffered) writes.
    Active,
    /// Write set forced to the log; the site has voted "Yes" and may no
    /// longer unilaterally abort. Locks are pinned.
    Prepared,
}

/// A buffered update: before image (for audit/undo information in the
/// log) and after image (the new value; `None` deletes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BufferedWrite {
    /// Value before this transaction's first write to the key.
    pub before: Option<Vec<u8>>,
    /// Value after (None = delete).
    pub after: Option<Vec<u8>>,
}

/// Per-transaction execution state.
#[derive(Clone, Debug)]
pub struct TxnContext {
    /// The transaction id.
    pub id: TxnId,
    /// Current phase.
    pub phase: TxnPhase,
    /// Buffered writes, keyed by key. Later writes to the same key keep
    /// the original before image.
    pub writes: BTreeMap<Vec<u8>, BufferedWrite>,
}

impl TxnContext {
    /// A fresh active transaction.
    #[must_use]
    pub fn new(id: TxnId) -> Self {
        TxnContext {
            id,
            phase: TxnPhase::Active,
            writes: BTreeMap::new(),
        }
    }

    /// Buffer a write. `before` is the committed value at first touch.
    pub fn buffer_write(&mut self, key: &[u8], before: Option<Vec<u8>>, after: Option<Vec<u8>>) {
        match self.writes.get_mut(key) {
            Some(w) => w.after = after, // keep original before image
            None => {
                self.writes
                    .insert(key.to_vec(), BufferedWrite { before, after });
            }
        }
    }

    /// This transaction's view of `key`: buffered write if any, else
    /// `None` (caller falls back to the store).
    #[must_use]
    pub fn own_view(&self, key: &[u8]) -> Option<&BufferedWrite> {
        self.writes.get(key)
    }

    /// Is the write set empty (a read-only transaction)?
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrites_keep_first_before_image() {
        let mut t = TxnContext::new(TxnId::new(1));
        t.buffer_write(b"k", Some(b"old".to_vec()), Some(b"v1".to_vec()));
        t.buffer_write(b"k", Some(b"v1".to_vec()), Some(b"v2".to_vec()));
        let w = t.own_view(b"k").unwrap();
        assert_eq!(w.before.as_deref(), Some(b"old".as_slice()));
        assert_eq!(w.after.as_deref(), Some(b"v2".as_slice()));
    }

    #[test]
    fn read_only_detection() {
        let mut t = TxnContext::new(TxnId::new(1));
        assert!(t.is_read_only());
        t.buffer_write(b"k", None, Some(b"v".to_vec()));
        assert!(!t.is_read_only());
    }
}
