//! E10 — end-to-end commit latency/throughput on the threaded actor
//! runtime (real threads, channels and file-backed WALs). The
//! per-protocol comparison shows the shape the paper's §1 motivates:
//! commit processing is where the time goes, and the variants differ by
//! their forced writes and message rounds.

use acp_engine::SiteEngine;
use acp_net::{Cluster, ClusterConfig};
use acp_types::{CoordinatorKind, Outcome, ProtocolKind, SelectionPolicy, TxnId};
use acp_wal::MemLog;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_cluster");
    g.sample_size(20);
    for (name, kind, protos) in [
        (
            "prany_mixed",
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            vec![ProtocolKind::PrA, ProtocolKind::PrC],
        ),
        (
            "prn_pair",
            CoordinatorKind::Single(ProtocolKind::PrN),
            vec![ProtocolKind::PrN; 2],
        ),
        (
            "prc_pair",
            CoordinatorKind::Single(ProtocolKind::PrC),
            vec![ProtocolKind::PrC; 2],
        ),
    ] {
        g.bench_function(BenchmarkId::new("commit_roundtrip", name), |b| {
            let config = ClusterConfig::new(kind, &protos);
            let mut cluster = Cluster::spawn(&config);
            let parts = cluster.participants();
            b.iter(|| {
                let txn = cluster.next_txn();
                for &p in &parts {
                    cluster.apply(p, txn, b"bench-key", b"bench-value");
                }
                let outcome = cluster.commit(txn, &parts).expect("decision");
                assert_eq!(outcome, Outcome::Commit);
            });
            let _ = cluster.shutdown();
        });
    }
    g.finish();
}

fn bench_storage_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage_engine");
    g.bench_function("txn_put_prepare_commit", |b| {
        let mut engine = SiteEngine::new(MemLog::new());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let txn = TxnId::new(i);
            engine.begin(txn);
            engine
                .put(txn, format!("k{}", i % 64).as_bytes(), b"v")
                .expect("put");
            engine.prepare(txn).expect("prepare");
            engine.resolve(txn, Outcome::Commit).expect("resolve");
            black_box(&engine);
        });
    });
    g.bench_function("read_txn", |b| {
        let mut engine = SiteEngine::new(MemLog::new());
        let seed = TxnId::new(1);
        engine.begin(seed);
        engine.put(seed, b"k", b"v").expect("put");
        engine.prepare(seed).expect("prepare");
        engine.resolve(seed, Outcome::Commit).expect("resolve");
        let mut i = 1u64;
        b.iter(|| {
            i += 1;
            let txn = TxnId::new(i);
            engine.begin(txn);
            let v = engine.get(txn, b"k").expect("get");
            engine.abort_active(txn).expect("end");
            black_box(v)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cluster, bench_storage_engine);
criterion_main!(benches);
