//! Model-checker benchmarks (the violation-search face of E5): how fast
//! the bounded exploration finds Theorem 1 counterexamples versus
//! exhaustively clearing PrAny.

use acp_check::{check, CheckConfig};
use acp_types::{CoordinatorKind, ProtocolKind, SelectionPolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_checker(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_checker");
    g.sample_size(10);
    let pop = [ProtocolKind::PrA, ProtocolKind::PrC];
    for (name, kind) in [
        (
            "u2pc_prn_find_violation",
            CoordinatorKind::U2pc(ProtocolKind::PrN),
        ),
        (
            "u2pc_prc_find_violation",
            CoordinatorKind::U2pc(ProtocolKind::PrC),
        ),
        (
            "prany_exhaustive_clean",
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        ),
        (
            "c2pc_exhaustive_clean",
            CoordinatorKind::C2pc(ProtocolKind::PrN),
        ),
    ] {
        g.bench_function(BenchmarkId::new("explore", name), |b| {
            let config = CheckConfig::new(kind, &pop);
            b.iter(|| check(black_box(&config)));
        });
    }

    // Budget scaling: timer budget drives the frontier.
    for timers in [1u8, 2, 3] {
        g.bench_with_input(
            BenchmarkId::new("prany_timer_budget", timers),
            &timers,
            |b, &timers| {
                let mut config =
                    CheckConfig::new(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict), &pop);
                config.timer_fires = timers;
                b.iter(|| check(black_box(&config)));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
