//! Thread-scaling of the parallel model checker (the timing face of
//! E5): the same bounded exploration at 1/2/4/8 workers, at the default
//! failure bounds and at the deeper `crashes = 2` bound whose frontier
//! is wide enough to feed every worker. The report is identical at
//! every point — only wall-clock moves. Speedup is bounded by the
//! host's core count; recorded numbers live in `BENCH_checker.json`.

use acp_check::{check, CheckConfig, CheckState};
use acp_core::{Coordinator, Participant};
use acp_types::{CoordinatorKind, ProtocolKind, SelectionPolicy, SiteId, TxnId};
use acp_wal::MemLog;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::hint::black_box;

const POP: [ProtocolKind; 2] = [ProtocolKind::PrA, ProtocolKind::PrC];
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("checker_scaling");
    g.sample_size(10);

    // Default bounds (crashes=1): the exploration the tests and E5
    // table run.
    for threads in THREADS {
        g.bench_with_input(
            BenchmarkId::new("prany_default", threads),
            &threads,
            |b, &t| {
                let config =
                    CheckConfig::new(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict), &POP)
                        .with_threads(t);
                b.iter(|| check(black_box(&config)));
            },
        );
    }

    // Deeper bound (crashes=2): a much larger state space with wide
    // BFS levels — the configuration parallelism is for.
    for threads in THREADS {
        g.bench_with_input(
            BenchmarkId::new("prany_crashes2", threads),
            &threads,
            |b, &t| {
                let mut config =
                    CheckConfig::new(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict), &POP)
                        .with_threads(t);
                config.crashes = 2;
                b.iter(|| check(black_box(&config)));
            },
        );
    }

    // A violating exploration at the deeper bound, for contrast with
    // the clean one (counterexample collection on the hot path).
    for threads in THREADS {
        g.bench_with_input(
            BenchmarkId::new("u2pc_prc_crashes2", threads),
            &threads,
            |b, &t| {
                let mut config =
                    CheckConfig::new(CoordinatorKind::U2pc(ProtocolKind::PrC), &POP)
                        .with_threads(t);
                config.crashes = 2;
                b.iter(|| check(black_box(&config)));
            },
        );
    }
    g.finish();
}

/// A mid-protocol state: PrAny coordinator over PrA+PrC, prepares in
/// flight — representative of what the exploration fingerprints tens of
/// thousands of times per run.
fn sample_state() -> CheckState {
    let coord_site = SiteId::new(0);
    let kind = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
    let mut coord = Coordinator::new(coord_site, kind, MemLog::new());
    let mut parts = std::collections::BTreeMap::new();
    let mut sites = Vec::new();
    for (i, proto) in [ProtocolKind::PrA, ProtocolKind::PrC].into_iter().enumerate() {
        let site = SiteId::new(i as u32 + 1);
        coord.register_site(site, proto);
        parts.insert(site, Participant::new(site, proto, MemLog::new()));
        sites.push(site);
    }
    let mut state = CheckState::new(coord, parts, 1, 1, 2);
    let actions = state.coord.begin_commit(TxnId::new(1), &sites);
    state.absorb(coord_site, actions);
    state
}

/// The fingerprint rewrite, old path vs. new: the checker used to
/// render every engine to a `String` (including the full log) and hash
/// that — `canonical_state()` preserves exactly that rendering for the
/// paranoid collision guard, so hashing it measures the old cost;
/// `seal()` is the direct-hash replacement.
fn bench_fingerprint(c: &mut Criterion) {
    let mut g = c.benchmark_group("checker_fingerprint");
    g.sample_size(20);
    let mut state = sample_state();

    g.bench_function("hash_state_direct", |b| {
        b.iter(|| {
            state.seal();
            black_box(state.fingerprint())
        });
    });

    g.bench_function("render_string_then_hash", |b| {
        b.iter(|| {
            let s = black_box(&state).canonical_state();
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            black_box(h.finish())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_scaling, bench_fingerprint);
criterion_main!(benches);
