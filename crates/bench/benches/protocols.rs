//! Protocol benchmarks (E1–E4, E8 performance face): end-to-end
//! simulated commit processing per protocol and outcome, scaling with
//! participant count, and the engine-level message-processing rate.

use acp_bench::one_txn_scenario;
use acp_core::harness::run_scenario;
use acp_core::{Coordinator, Participant};
use acp_sim::SimTime;
use acp_types::{CoordinatorKind, Payload, ProtocolKind, SelectionPolicy, SiteId, TxnId, Vote};
use acp_wal::MemLog;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// One full simulated transaction per iteration, per protocol/outcome.
fn bench_one_txn(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_one_txn");
    let cases: [(&str, CoordinatorKind, Vec<ProtocolKind>); 5] = [
        (
            "PrN",
            CoordinatorKind::Single(ProtocolKind::PrN),
            vec![ProtocolKind::PrN; 2],
        ),
        (
            "PrA",
            CoordinatorKind::Single(ProtocolKind::PrA),
            vec![ProtocolKind::PrA; 2],
        ),
        (
            "PrC",
            CoordinatorKind::Single(ProtocolKind::PrC),
            vec![ProtocolKind::PrC; 2],
        ),
        (
            "PrAny-mixed",
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            vec![ProtocolKind::PrA, ProtocolKind::PrC],
        ),
        (
            "C2PC-mixed",
            CoordinatorKind::C2pc(ProtocolKind::PrN),
            vec![ProtocolKind::PrA, ProtocolKind::PrC],
        ),
    ];
    for (name, kind, protos) in &cases {
        for abort in [false, true] {
            let label = format!("{name}/{}", if abort { "abort" } else { "commit" });
            g.bench_function(BenchmarkId::new("run", label), |b| {
                let scenario = one_txn_scenario(*kind, protos, abort);
                b.iter(|| run_scenario(black_box(&scenario)));
            });
        }
    }
    g.finish();
}

/// Scaling with participant count under PrAny.
fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_scaling");
    for n in [2usize, 4, 8, 16] {
        let protos: Vec<ProtocolKind> = (0..n).map(|i| ProtocolKind::ALL[i % 3]).collect();
        g.bench_with_input(
            BenchmarkId::new("prany_participants", n),
            &protos,
            |b, protos| {
                let scenario = one_txn_scenario(
                    CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
                    protos,
                    false,
                );
                b.iter(|| run_scenario(black_box(&scenario)));
            },
        );
    }
    g.finish();
}

/// A 50-transaction pipelined batch.
fn bench_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_batch");
    g.sample_size(20);
    for (name, kind) in [
        (
            "PrAny",
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        ),
        ("PrN", CoordinatorKind::Single(ProtocolKind::PrN)),
    ] {
        g.bench_function(BenchmarkId::new("50_txns", name), |b| {
            let protos = if name == "PrN" {
                vec![ProtocolKind::PrN; 3]
            } else {
                vec![ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC]
            };
            let mut scenario = acp_core::harness::Scenario::new(kind, &protos);
            for i in 0..50u64 {
                scenario.add_txn(TxnId::new(i + 1), SimTime::from_micros(1_000 + 400 * i));
            }
            b.iter(|| run_scenario(black_box(&scenario)));
        });
    }
    g.finish();
}

/// Raw engine message-processing rate (no simulator): coordinator +
/// participants driven directly.
fn bench_engine_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_hot_path");
    g.bench_function("prany_commit_round", |b| {
        b.iter(|| {
            let mut coord = Coordinator::new(
                SiteId::new(0),
                CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
                MemLog::new(),
            );
            coord.register_site(SiteId::new(1), ProtocolKind::PrA);
            coord.register_site(SiteId::new(2), ProtocolKind::PrC);
            let mut p1 = Participant::new(SiteId::new(1), ProtocolKind::PrA, MemLog::new());
            let mut p2 = Participant::new(SiteId::new(2), ProtocolKind::PrC, MemLog::new());
            let txn = TxnId::new(1);
            coord.begin_commit(txn, &[SiteId::new(1), SiteId::new(2)]);
            p1.on_prepare(SiteId::new(0), txn);
            p2.on_prepare(SiteId::new(0), txn);
            coord.on_message(
                SiteId::new(1),
                &Payload::Vote {
                    txn,
                    vote: Vote::Yes,
                },
            );
            let actions = coord.on_message(
                SiteId::new(2),
                &Payload::Vote {
                    txn,
                    vote: Vote::Yes,
                },
            );
            p1.on_message(
                SiteId::new(0),
                &Payload::Decision {
                    txn,
                    outcome: acp_types::Outcome::Commit,
                },
            );
            p2.on_message(
                SiteId::new(0),
                &Payload::Decision {
                    txn,
                    outcome: acp_types::Outcome::Commit,
                },
            );
            coord.on_message(SiteId::new(1), &Payload::Ack { txn });
            black_box(actions)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_one_txn,
    bench_scaling,
    bench_batch,
    bench_engine_hot_path
);
criterion_main!(benches);
