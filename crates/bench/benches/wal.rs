//! WAL substrate benchmarks: append/force throughput, codec speed and
//! recovery-scan speed for both log implementations.

use acp_types::{LogPayload, Outcome, SiteId, TxnId};
use acp_wal::encode::{decode_payload, encode_payload};
use acp_wal::tempdir::TempDir;
use acp_wal::{FileLog, MemLog, StableLog};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn payload(i: u64) -> LogPayload {
    LogPayload::PartDecision {
        txn: TxnId::new(i),
        outcome: if i.is_multiple_of(2) {
            Outcome::Commit
        } else {
            Outcome::Abort
        },
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_codec");
    let p = LogPayload::Prepared {
        txn: TxnId::new(42),
        coordinator: SiteId::new(7),
    };
    let encoded = encode_payload(&p);
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_payload", |b| {
        b.iter(|| encode_payload(black_box(&p)))
    });
    g.bench_function("decode_payload", |b| {
        b.iter(|| decode_payload(black_box(&encoded)).expect("decode"))
    });
    g.finish();
}

fn bench_memlog(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_memlog");
    g.bench_function("append_lazy", |b| {
        b.iter_batched(
            MemLog::new,
            |mut log| {
                for i in 0..100 {
                    log.append(payload(i), false).expect("append");
                }
                log
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("append_forced", |b| {
        b.iter_batched(
            MemLog::new,
            |mut log| {
                for i in 0..100 {
                    log.append(payload(i), true).expect("append");
                }
                log
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("scan_1000", |b| {
        let mut log = MemLog::new();
        for i in 0..1000 {
            log.append(payload(i), true).expect("append");
        }
        b.iter(|| acp_wal::scan::analyze(&log.records().expect("records")));
    });
    g.finish();
}

fn bench_filelog(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_filelog");
    g.sample_size(20);
    let dir = TempDir::new("bench").expect("tempdir");
    g.bench_function("append_forced", |b| {
        let mut n = 0u32;
        b.iter_batched(
            || {
                n += 1;
                FileLog::create(dir.path().join(format!("w{n}"))).expect("create")
            },
            |mut log| {
                for i in 0..20 {
                    log.append(payload(i), true).expect("append");
                }
                log
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("reopen_500_records", |b| {
        let path = dir.path().join("reopen");
        let mut log = FileLog::create(&path).expect("create");
        for i in 0..500 {
            log.append(payload(i), i.is_multiple_of(10))
                .expect("append");
        }
        log.flush().expect("flush");
        drop(log);
        b.iter(|| FileLog::open(&path).expect("open"));
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_memlog, bench_filelog);
criterion_main!(benches);
