//! E8 — fault-injection campaign: crashes × message loss × torn writes
//! across every coordinator kind.
//!
//! Each cell of the matrix runs a batch of seeded randomized scenarios
//! under one fault regime (clean, 20% loss, single crash, crash-during-
//! recovery double crash, loss + double crash) and reports PASS only if
//! no prepared site was left in doubt at quiescence and no correctness
//! predicate (atomicity, operational, safe-state) found a violation. A final
//! section drives the [`acp_wal::FaultyLog`] storage-fault substrate
//! with randomized torn tails, partial fsyncs and bit flips, counting
//! how many corrupted records the recovery scan accepted (must be 0).
//!
//! ```sh
//! cargo run --release -p acp-bench --bin exp_faults [seeds]
//! ```
//!
//! The output is deterministic for a given seed count, so
//! `scripts/verify.sh` can diff a regeneration against the committed
//! `results/exp_faults.txt`.

use acp_acta::safe_state::check_all_safe_states;
use acp_acta::{check_atomicity, check_operational};
use acp_bench::{row, sep};
use acp_core::harness::{run_scenario, Scenario};
use acp_sim::{FailureSchedule, NetworkConfig, SimTime};
use acp_types::{
    CoordinatorKind, LogPayload, Outcome, ProtocolKind, SelectionPolicy, SiteId, TxnId,
};
use acp_wal::{Fault, FaultyLog, StableLog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::path::Path;

const MIXED: [ProtocolKind; 3] = [ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC];

/// The five fault regimes of the matrix.
#[derive(Clone, Copy)]
enum Regime {
    Clean,
    Loss,
    Crash,
    DoubleCrash,
    LossAndDoubleCrash,
}

impl Regime {
    const ALL: [Regime; 5] = [
        Regime::Clean,
        Regime::Loss,
        Regime::Crash,
        Regime::DoubleCrash,
        Regime::LossAndDoubleCrash,
    ];

    fn name(self) -> &'static str {
        match self {
            Regime::Clean => "clean",
            Regime::Loss => "loss 0.2",
            Regime::Crash => "crash",
            Regime::DoubleCrash => "double-crash",
            Regime::LossAndDoubleCrash => "loss+double-crash",
        }
    }
}

struct CellStats {
    runs: u64,
    stuck: u64,
    atomicity: u64,
    operational: u64,
    safe_state: u64,
}

/// The participant population each coordinator kind claims to handle
/// soundly: a single-protocol or straw-man integrated coordinator is
/// only specified for a homogeneous population of its base protocol
/// (mixing presumptions under them is exactly what Theorems 1 and 2
/// break); PrAny exists to take the mixed population.
fn population(kind: CoordinatorKind) -> [ProtocolKind; 3] {
    match kind {
        CoordinatorKind::Single(p) | CoordinatorKind::U2pc(p) | CoordinatorKind::C2pc(p) => {
            [p, p, p]
        }
        CoordinatorKind::PrAny(_) => MIXED,
    }
}

/// One randomized scenario: two transactions (the second sometimes a
/// deliberate abort), faults drawn from `rng` per the regime.
fn run_cell_seed(kind: CoordinatorKind, regime: Regime, seed: u64) -> CellStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = Scenario::new(kind, &population(kind));
    s.seed = seed;
    let t1 = TxnId::new(1);
    let t2 = TxnId::new(2);
    s.add_txn(t1, SimTime::from_millis(1));
    s.add_txn(t2, SimTime::from_millis(4));
    if rng.random::<f64>() < 0.3 {
        s.txns[1].abort_at = Some(SimTime::from_micros(4_250));
    }

    match regime {
        Regime::Clean => {}
        Regime::Loss => s.network = NetworkConfig::lossy(0.2),
        Regime::Crash => {
            let victim = SiteId::new(rng.random_range(0..=3));
            let crash_at = SimTime::from_micros(rng.random_range(900..2_600));
            s.failures =
                FailureSchedule::single(victim, crash_at, crash_at + SimTime::from_millis(150));
        }
        Regime::DoubleCrash => {
            let victim = SiteId::new(rng.random_range(0..=3));
            let crash_at = SimTime::from_micros(rng.random_range(900..2_600));
            s.failures = FailureSchedule::double_crash(
                victim,
                crash_at,
                crash_at + SimTime::from_millis(40),
                SimTime::from_micros(rng.random_range(0..500)),
                SimTime::from_millis(110),
            );
        }
        Regime::LossAndDoubleCrash => {
            s.network = NetworkConfig::lossy(0.1);
            let victim = SiteId::new(rng.random_range(0..=3));
            let crash_at = SimTime::from_micros(rng.random_range(900..2_600));
            s.failures = FailureSchedule::double_crash(
                victim,
                crash_at,
                crash_at + SimTime::from_millis(40),
                SimTime::from_micros(rng.random_range(0..500)),
                SimTime::from_millis(110),
            );
        }
    }

    let out = run_scenario(&s);
    // Termination: every site that *prepared* (is in doubt) must have
    // learned and enforced an outcome by quiescence. A transaction the
    // double crash swallowed before anyone prepared is not stuck — no
    // site holds locks for it and the client simply resubmits. (PrN/PrA
    // coordinators write no initiation record, so a crash straight
    // after `begin_commit` legitimately erases the attempt.)
    let stuck = out
        .history
        .events()
        .iter()
        .filter_map(|e| match e {
            acp_acta::ActaEvent::Prepared { participant, txn } => Some((*participant, *txn)),
            _ => None,
        })
        .filter(|key| !out.enforced.contains_key(key))
        .count() as u64;
    CellStats {
        runs: 1,
        stuck,
        atomicity: check_atomicity(&out.history).len() as u64,
        operational: check_operational(&out.history, &out.final_state).len() as u64,
        safe_state: check_all_safe_states(&out.history, SiteId::new(0)).len() as u64,
    }
}

fn run_cell(kind: CoordinatorKind, regime: Regime, seeds: u64) -> CellStats {
    let mut total = CellStats {
        runs: 0,
        stuck: 0,
        atomicity: 0,
        operational: 0,
        safe_state: 0,
    };
    for seed in 0..seeds {
        let s = run_cell_seed(kind, regime, seed);
        total.runs += s.runs;
        total.stuck += s.stuck;
        total.atomicity += s.atomicity;
        total.operational += s.operational;
        total.safe_state += s.safe_state;
    }
    total
}

/// Randomized storage-fault campaign against [`FaultyLog`]: append a
/// random record sequence, queue random faults, crash, and count how
/// many recovered records differ from what was actually appended (a
/// corrupted record the CRC framing failed to reject).
fn wal_campaign(seeds: u64) -> (u64, u64, u64, u64) {
    let (mut faults, mut lost, mut survivors, mut corrupted_accepted) = (0u64, 0u64, 0u64, 0u64);
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(0xFA01 + seed);
        let mut log = FaultyLog::new();
        let mut appended: Vec<LogPayload> = Vec::new();
        for i in 0..rng.random_range(4..16u64) {
            let txn = TxnId::new(i + 1);
            let payload = match rng.random_range(0..4u32) {
                0 => LogPayload::Prepared {
                    txn,
                    coordinator: SiteId::new(0),
                },
                1 => LogPayload::PartDecision {
                    txn,
                    outcome: if rng.random::<bool>() {
                        Outcome::Commit
                    } else {
                        Outcome::Abort
                    },
                },
                2 => LogPayload::End { txn },
                _ => LogPayload::PartEnd { txn },
            };
            let force = rng.random::<f64>() < 0.6;
            appended.push(payload.clone());
            log.append(payload, force).expect("append");
        }
        for _ in 0..rng.random_range(1..=3u32) {
            let fault = match rng.random_range(0..3u32) {
                0 => Fault::TornTail {
                    bytes: rng.random_range(1..64),
                },
                1 => Fault::PartialFsync {
                    drop_bytes: rng.random_range(1..48),
                },
                // Flips land past the 16-byte header: header damage is
                // *detected* (recovery refuses the whole log) rather
                // than recovered-around, so it would end the campaign
                // early instead of exercising the frame scan.
                _ => Fault::BitFlip {
                    offset: rng.random_range(16..log.image().len().max(17) as u64),
                    mask: rng.random_range(1..=255u32) as u8,
                },
            };
            log.inject(fault);
        }
        // Partial fsyncs only bite at a flush; force one so the queued
        // fault has a batch to damage before the crash.
        let _ = log.flush();
        let report = log.crash_and_recover().expect("recover");
        faults += log.faults_applied();
        lost += (report.lost_buffered + report.lost_durable) as u64;
        survivors += report.survivors as u64;
        // Every survivor must be byte-identical to the record appended
        // at its position: recovery keeps a *prefix*, never an altered
        // or reordered record.
        let recovered = log.records().expect("records");
        if recovered.len() > appended.len() {
            corrupted_accepted += (recovered.len() - appended.len()) as u64;
        }
        for (i, rec) in recovered.iter().enumerate() {
            if appended.get(i) != Some(&rec.payload) {
                corrupted_accepted += 1;
            }
        }
    }
    (faults, lost, survivors, corrupted_accepted)
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);

    let kinds = [
        CoordinatorKind::Single(ProtocolKind::PrN),
        CoordinatorKind::Single(ProtocolKind::PrA),
        CoordinatorKind::Single(ProtocolKind::PrC),
        CoordinatorKind::U2pc(ProtocolKind::PrA),
        CoordinatorKind::C2pc(ProtocolKind::PrN),
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
    ];

    let mut doc = String::new();
    let _ = writeln!(
        doc,
        "E8 — fault-injection campaign, {seeds} seeds per cell\n\
         population: homogeneous per coordinator kind, mixed [PrN, PrA, PrC] for PrAny\n\
         2 txns per run (30% deliberate aborts)\n"
    );

    let widths = [14, 18, 6, 10, 8, 12, 12, 8];
    let _ = writeln!(
        doc,
        "{}",
        row(
            &[
                "coordinator".into(),
                "regime".into(),
                "runs".into(),
                "in-doubt".into(),
                "atomic".into(),
                "operational".into(),
                "safe-state".into(),
                "verdict".into(),
            ],
            &widths
        )
    );
    let _ = writeln!(doc, "{}", sep(&widths));

    let mut failures = 0u64;
    for kind in kinds {
        for regime in Regime::ALL {
            let s = run_cell(kind, regime, seeds);
            let pass = s.runs > 0
                && s.stuck == 0
                && s.atomicity == 0
                && s.operational == 0
                && s.safe_state == 0;
            if !pass {
                failures += 1;
            }
            let _ = writeln!(
                doc,
                "{}",
                row(
                    &[
                        format!("{kind}"),
                        regime.name().into(),
                        s.runs.to_string(),
                        s.stuck.to_string(),
                        s.atomicity.to_string(),
                        s.operational.to_string(),
                        s.safe_state.to_string(),
                        if pass { "PASS" } else { "FAIL" }.to_string(),
                    ],
                    &widths
                )
            );
        }
    }

    let (faults, lost, survivors, corrupted) = wal_campaign(seeds * 4);
    let _ = writeln!(
        doc,
        "\ntorn-write WAL campaign ({} logs): {faults} storage faults applied, \
         {lost} records destroyed, {survivors} survived recovery, \
         {corrupted} corrupted records accepted — {}",
        seeds * 4,
        if corrupted == 0 { "PASS" } else { "FAIL" }
    );
    if corrupted != 0 {
        failures += 1;
    }

    let _ = writeln!(
        doc,
        "\noverall: {}",
        if failures == 0 {
            "ALL CELLS PASS".to_string()
        } else {
            format!("{failures} CELLS FAILED")
        }
    );

    print!("{doc}");
    let results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(results.join("exp_faults.txt"), &doc).expect("write exp_faults.txt");
    eprintln!("wrote fault matrix to results/exp_faults.txt");
    if failures != 0 {
        std::process::exit(1);
    }
}
