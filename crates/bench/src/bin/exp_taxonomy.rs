//! E11 — Figure 5: the taxonomy of atomic commitment in universal
//! distributed environments.
//!
//! ```sh
//! cargo run -p acp-bench --bin exp_taxonomy
//! ```

use acp_types::taxonomy::render_taxonomy;

fn main() {
    print!("{}", render_taxonomy());
}
