//! E1–E4: regenerate the protocol schedules of Figures 1–4 as traces,
//! and render the full figure artifact set (ASCII schedules, Mermaid
//! sequence diagrams, raw event streams, cost metrics) from the typed
//! `acp-obs` event stream into `results/figures/`.
//!
//! ```sh
//! cargo run -p acp-bench --bin exp_figures
//! ```
//!
//! stdout keeps the historical simulator-trace format (captured in
//! `results/exp_figures.txt`); the files under `results/figures/` are
//! the observability-layer renderings, byte-stable across runs and
//! thread counts (pinned by the `obs_figures` golden test and the
//! `scripts/verify.sh` drift check).

use acp_bench::figures::render_paper_figures;
use acp_bench::{default_threads, one_txn_scenario};
use acp_core::harness::run_scenario;
use acp_types::{CoordinatorKind, ProtocolKind, SelectionPolicy};
use std::path::Path;

fn show(title: &str, kind: CoordinatorKind, protos: &[ProtocolKind], abort: bool) {
    println!("==== {title} ====");
    let mut s = one_txn_scenario(kind, protos, abort);
    s.max_events = 10_000;
    let out = run_scenario(&s);
    print!("{}", out.trace.render());
    println!();
}

fn main() {
    // Figure 2: basic 2PC / presumed nothing.
    show(
        "Figure 2 — PrN, commit",
        CoordinatorKind::Single(ProtocolKind::PrN),
        &[ProtocolKind::PrN; 2],
        false,
    );
    show(
        "Figure 2 — PrN, abort",
        CoordinatorKind::Single(ProtocolKind::PrN),
        &[ProtocolKind::PrN; 2],
        true,
    );
    // Figure 3: presumed abort.
    show(
        "Figure 3 — PrA, commit",
        CoordinatorKind::Single(ProtocolKind::PrA),
        &[ProtocolKind::PrA; 2],
        false,
    );
    show(
        "Figure 3 — PrA, abort",
        CoordinatorKind::Single(ProtocolKind::PrA),
        &[ProtocolKind::PrA; 2],
        true,
    );
    // Figure 4: presumed commit.
    show(
        "Figure 4a — PrC, commit",
        CoordinatorKind::Single(ProtocolKind::PrC),
        &[ProtocolKind::PrC; 2],
        false,
    );
    show(
        "Figure 4b — PrC, abort",
        CoordinatorKind::Single(ProtocolKind::PrC),
        &[ProtocolKind::PrC; 2],
        true,
    );
    // Figure 1: Presumed Any over a PrA + PrC population.
    show(
        "Figure 1a — PrAny (PrA + PrC participants), commit",
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &[ProtocolKind::PrA, ProtocolKind::PrC],
        false,
    );
    show(
        "Figure 1b — PrAny (PrA + PrC participants), abort",
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
        &[ProtocolKind::PrA, ProtocolKind::PrC],
        true,
    );

    // Render the observability-layer figure set into results/figures/.
    let arts = render_paper_figures(default_threads());
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/figures");
    std::fs::create_dir_all(&dir).expect("create results/figures");
    for (name, contents) in &arts.files {
        std::fs::write(dir.join(name), contents).expect("write figure");
    }
    eprintln!(
        "wrote {} figure artifacts to {}",
        arts.files.len(),
        dir.display()
    );
}
