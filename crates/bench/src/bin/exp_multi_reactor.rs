//! E14 — the sharded multi-reactor runtime: the E13 event loop scaled
//! across reactor threads.
//!
//! Every cell drives the *same* sans-IO engines over file WALs with
//! group commit enabled; what the sweep varies is the partition: the
//! coordinator sliced by transaction id and the participants
//! partitioned by site id across N reactor threads connected by
//! lock-free mailboxes, each shard owning its own timer wheel and
//! fsync domain.
//!
//! The sweep runs reactor counts {1, 2, 4} × requested concurrency
//! {64, 512} closed-loop over a fixed PrAny site set (PrN + PrA + PrC)
//! and records, per cell, aggregate committed-transaction throughput,
//! cross-shard mailbox traffic, the cluster-wide in-flight peak (the
//! shared gauge) and the per-shard fsync-domain counters proving each
//! shard is one coalesced force domain. Results land in
//! `BENCH_multi_reactor.json`.
//!
//! **Read the numbers with the meta note in mind**: on a single-CPU
//! host the N reactor threads time-slice one core, so the sweep
//! demonstrates *low partition overhead* (multi-reactor throughput
//! stays within a constant factor of single-reactor throughput), not
//! parallel speedup — the same caveat `BENCH_checker.json` records for
//! the checker's thread sweep.
//!
//! Acceptance (exits non-zero when violated): every transaction
//! commits at every cell; at N ≥ 2 the partition routes real
//! cross-shard mail (`mailbox_sends > 0`); every shard that forced
//! anything coalesced (per-shard fsync rounds strictly below the
//! records flushed through them at 512 concurrency); and multi-reactor
//! throughput stays overhead-bounded (≥ 0.4× the single-reactor cell
//! at the same concurrency).
//!
//! `ACP_MULTI_REACTOR_SMOKE=1` runs a small correctness-only slice
//! (reactor counts {1, 2} × concurrency 8, used by
//! `scripts/verify.sh`); the full campaign is machine-timed and
//! regenerated manually like the other BENCH_*.json files.
//!
//! ```sh
//! cargo run --release -p acp-bench --bin exp_multi_reactor
//! ```

use acp_bench::{row, sep};
use acp_net::{MultiReactorCluster, MultiReactorConfig, NetDelays, ReactorConfig};
use acp_obs::{Counter, ProtoLabel};
use acp_types::{CoordinatorKind, Outcome, ProtocolKind, SelectionPolicy, TxnId};
use acp_wal::DomainStats;
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// Reactor-thread sweep.
const REACTORS: [usize; 3] = [1, 2, 4];

/// Requested-concurrency sweep (per cell, across the whole cluster).
const CONCURRENCY: [usize; 2] = [64, 512];

fn kind() -> CoordinatorKind {
    CoordinatorKind::PrAny(SelectionPolicy::PaperStrict)
}

const PROTOS: [ProtocolKind; 3] = [ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC];

/// Long protocol timeouts: the sweep measures runtime throughput, not
/// timeout handling, so no timer may fire during a clean run.
fn bench_delays() -> NetDelays {
    NetDelays {
        vote_timeout: Duration::from_secs(30),
        ack_resend: Duration::from_secs(10),
        inquiry_retry: Duration::from_secs(10),
        apply_retry: Duration::from_secs(10),
        ..NetDelays::default()
    }
}

/// Transactions per cell (4x the window, floor 256).
fn total_for(c: usize) -> u64 {
    (4 * c as u64).max(256)
}

struct ShardCell {
    shard: usize,
    fsync: DomainStats,
    logical_forces: u64,
    physical_syncs: u64,
    /// Peak occupancy in any single protocol-table shard of this
    /// reactor's coordinator slice (sampled per snapshot tick).
    table_peak: u64,
}

struct Cell {
    reactors: usize,
    requested: usize,
    txns: u64,
    committed: u64,
    elapsed_ms: u64,
    commits_per_sec: f64,
    /// Cluster-wide peak of simultaneously-open client commits (the
    /// shared cross-reactor gauge).
    max_inflight: u64,
    /// Envelopes pushed across shard boundaries through the lock-free
    /// mailboxes.
    mailbox_sends: u64,
    logical_forces: u64,
    physical_syncs: u64,
    per_shard: Vec<ShardCell>,
    /// Merged live-metrics curve: (shard, host µs since spawn,
    /// decisions reached, forced writes) per snapshot.
    timeline: Vec<(usize, u64, u64, u64)>,
}

impl Cell {
    fn syncs_per_txn(&self) -> f64 {
        self.physical_syncs as f64 / self.txns.max(1) as f64
    }
}

fn key(n: u64) -> Vec<u8> {
    format!("k{n:06}").into_bytes()
}

/// Closed-loop driver in windows of `requested`: stage every window's
/// writes, burst the commit requests, await every decision.
fn cell(reactors: usize, requested: usize, total: u64) -> Cell {
    let mut reactor = ReactorConfig::new(kind(), &PROTOS);
    reactor.cluster.delays = bench_delays();
    reactor.cluster.group_commit = true;
    // Each shard snapshots its own registry on its own delivered
    // decisions; the merged timeline carries all of them.
    reactor.snapshot_every_commits = (total / (8 * reactors as u64)).max(1);
    let config = MultiReactorConfig::new(reactor, reactors);
    let cluster = MultiReactorCluster::spawn_observed(&config, None);
    let parts = cluster.participants();

    let start = Instant::now();
    let mut committed = 0u64;
    let mut next = 1u64;
    while next <= total {
        let batch = (requested as u64).min(total - next + 1);
        for i in 0..batch {
            let txn = TxnId::new(next + i);
            for site in &parts {
                cluster.apply(*site, txn, &key(next + i), b"v");
            }
        }
        let pending: Vec<_> = (0..batch)
            .map(|i| cluster.commit_async(TxnId::new(next + i), &parts))
            .collect();
        for rx in pending {
            if rx.recv_timeout(Duration::from_secs(60)) == Ok(Outcome::Commit) {
                committed += 1;
            }
        }
        next += batch;
    }
    let elapsed = start.elapsed();

    let report = cluster.shutdown();
    let per_shard = report
        .per_shard
        .iter()
        .map(|s| ShardCell {
            shard: s.shard,
            fsync: s.fsync,
            logical_forces: s.logical_forces,
            physical_syncs: s.physical_syncs,
            table_peak: report
                .registries
                .get(s.shard)
                .map_or(0, |r| {
                    ProtoLabel::ALL
                        .iter()
                        .map(|&p| r.get(p, Counter::TablePeakShardOccupancy))
                        .max()
                        .unwrap_or(0)
                }),
        })
        .collect();
    Cell {
        reactors,
        requested,
        txns: total,
        committed,
        elapsed_ms: elapsed.as_millis() as u64,
        commits_per_sec: committed as f64 / elapsed.as_secs_f64().max(1e-9),
        max_inflight: report.max_inflight,
        mailbox_sends: report.stats.mailbox_sends,
        logical_forces: report.cluster.logical_forces,
        physical_syncs: report.cluster.physical_syncs,
        per_shard,
        timeline: report
            .timeline
            .iter()
            .map(|(shard, s)| {
                (
                    *shard,
                    s.at_us,
                    s.total(Counter::DecisionsReached),
                    s.total(Counter::ForcedWrites),
                )
            })
            .collect(),
    }
}

fn print_cell(c: &Cell, widths: &[usize]) {
    println!(
        "{}",
        row(
            &[
                c.reactors.to_string(),
                c.requested.to_string(),
                format!("{}/{}", c.committed, c.txns),
                format!("{:.0}", c.commits_per_sec),
                c.max_inflight.to_string(),
                c.mailbox_sends.to_string(),
                format!("{:.3}", c.syncs_per_txn()),
                format!("{}ms", c.elapsed_ms),
            ],
            widths
        )
    );
}

fn bench_json(cells: &[Cell], ratios: &[(usize, usize, f64)], pass: bool) -> String {
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"multi_reactor\",");
    let _ = writeln!(
        j,
        "  \"site_set\": \"PrAny(PaperStrict) over PrN+PrA+PrC, group commit on\","
    );
    let _ = writeln!(
        j,
        "  \"meta\": {{\"host_cpus\": {host_cpus}, \"note\": \"single-CPU container: reactor \
         threads time-slice one core, so throughput is flat by construction; the sweep \
         demonstrates low partition overhead and per-shard fsync coalescing, not parallel \
         speedup. Determinism across reactor counts is pinned by tests/multi_reactor.rs.\"}},"
    );
    let _ = writeln!(j, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let mut shards = String::new();
        for (k, s) in c.per_shard.iter().enumerate() {
            let _ = write!(
                shards,
                "{{\"shard\": {}, \"fsync_rounds\": {}, \"leader_flushes\": {}, \
                 \"follower_flushes\": {}, \"records\": {}, \"max_members\": {}, \
                 \"solo_rounds\": {}, \"logical_forces\": {}, \"physical_syncs\": {}, \
                 \"table_peak_shard_occupancy\": {}}}",
                s.shard,
                s.fsync.rounds,
                s.fsync.leader_flushes,
                s.fsync.follower_flushes,
                s.fsync.records,
                s.fsync.max_members,
                s.fsync.solo_rounds,
                s.logical_forces,
                s.physical_syncs,
                s.table_peak,
            );
            if k + 1 < c.per_shard.len() {
                shards.push_str(", ");
            }
        }
        let mut curve = String::new();
        for (k, &(shard, at_us, decided, forces)) in c.timeline.iter().enumerate() {
            let _ = write!(
                curve,
                "{{\"shard\": {shard}, \"at_us\": {at_us}, \"decided\": {decided}, \
                 \"forced_writes\": {forces}}}"
            );
            if k + 1 < c.timeline.len() {
                curve.push_str(", ");
            }
        }
        let _ = writeln!(
            j,
            "    {{\"reactors\": {}, \"requested_concurrency\": {}, \"txns\": {}, \
             \"committed\": {}, \"elapsed_ms\": {}, \"commits_per_sec\": {:.1}, \
             \"max_inflight\": {}, \"mailbox_sends\": {}, \"logical_forces\": {}, \
             \"physical_syncs\": {}, \"syncs_per_txn\": {:.3}, \"per_shard\": [{shards}], \
             \"timeline\": [{curve}]}}{comma}",
            c.reactors,
            c.requested,
            c.txns,
            c.committed,
            c.elapsed_ms,
            c.commits_per_sec,
            c.max_inflight,
            c.mailbox_sends,
            c.logical_forces,
            c.physical_syncs,
            c.syncs_per_txn(),
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"acceptance\": {{");
    let _ = writeln!(
        j,
        "    \"criterion\": \"all txns commit; cross-shard mail flows at N >= 2; per-shard \
         fsync rounds < records at 512 concurrency; multi-reactor throughput >= 0.4x \
         single-reactor at equal concurrency (overhead-bounded on a 1-CPU host)\","
    );
    for (n, conc, ratio) in ratios {
        let _ = writeln!(j, "    \"throughput_ratio_n{n}_c{conc}\": {ratio:.2},");
    }
    let _ = writeln!(j, "    \"pass\": {pass}");
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");
    j
}

fn main() {
    let smoke = std::env::var_os("ACP_MULTI_REACTOR_SMOKE").is_some();
    let (reactor_sweep, conc_sweep): (Vec<usize>, Vec<usize>) = if smoke {
        (vec![1, 2], vec![8])
    } else {
        (REACTORS.to_vec(), CONCURRENCY.to_vec())
    };

    println!("E14 — sharded multi-reactor runtime: reactor-count sweep");
    println!("site set: PrAny(PaperStrict) over PrN+PrA+PrC, group commit on\n");
    let widths = [9, 10, 14, 12, 10, 10, 11, 10];
    println!(
        "{}",
        row(
            &[
                "reactors".into(),
                "requested".into(),
                "committed".into(),
                "txns/sec".into(),
                "inflight".into(),
                "mailbox".into(),
                "syncs/txn".into(),
                "elapsed".into(),
            ],
            &widths
        )
    );
    println!("{}", sep(&widths));

    let mut cells: Vec<Cell> = Vec::new();
    for &conc in &conc_sweep {
        for &n in &reactor_sweep {
            let total = if smoke { 48 } else { total_for(conc) };
            let c = cell(n, conc, total);
            print_cell(&c, &widths);
            cells.push(c);
        }
    }

    let all_committed = cells.iter().all(|c| c.committed == c.txns);
    let mail_flows = cells
        .iter()
        .filter(|c| c.reactors >= 2)
        .all(|c| c.mailbox_sends > 0);

    if smoke {
        let snapshots_ok = cells.iter().all(|c| !c.timeline.is_empty());
        let coalesced = cells
            .iter()
            .all(|c| c.per_shard.iter().all(|s| s.fsync.records >= s.fsync.rounds));
        println!(
            "\nsmoke acceptance (all commit, cross-shard mail, metrics stream, \
             domains coalesce): {}",
            if all_committed && mail_flows && snapshots_ok && coalesced {
                "PASS"
            } else {
                "FAIL"
            }
        );
        eprintln!("smoke mode: skipping the full campaign and BENCH_multi_reactor.json");
        if !(all_committed && mail_flows && snapshots_ok && coalesced) {
            std::process::exit(1);
        }
        return;
    }

    // Per-shard coalescing at high concurrency: every shard that
    // forced anything closed strictly fewer rounds than it flushed
    // records — one force domain per shard, not one per transaction.
    let coalesced = cells
        .iter()
        .filter(|c| c.requested >= 512)
        .all(|c| {
            c.per_shard
                .iter()
                .filter(|s| s.fsync.records > 0)
                .all(|s| s.fsync.rounds < s.fsync.records)
        });

    // Overhead bound: multi-reactor throughput vs the single-reactor
    // cell at the same concurrency.
    let base = |conc: usize| -> f64 {
        cells
            .iter()
            .find(|c| c.reactors == 1 && c.requested == conc)
            .map_or(f64::INFINITY, |c| c.commits_per_sec)
    };
    let ratios: Vec<(usize, usize, f64)> = cells
        .iter()
        .filter(|c| c.reactors > 1)
        .map(|c| (c.reactors, c.requested, c.commits_per_sec / base(c.requested)))
        .collect();
    let overhead_ok = ratios.iter().all(|&(_, _, r)| r >= 0.4);

    let pass = all_committed && mail_flows && coalesced && overhead_ok;
    let json = bench_json(&cells, &ratios, pass);
    let bench_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_multi_reactor.json");
    std::fs::write(&bench_path, &json).expect("write BENCH_multi_reactor.json");
    eprintln!("wrote BENCH_multi_reactor.json");

    for (n, conc, r) in &ratios {
        println!("\nthroughput ratio N={n} vs N=1 at concurrency {conc}: {r:.2}x");
    }
    println!(
        "acceptance (all commit, cross-shard mail, per-shard coalescing, overhead-bounded): {}",
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass {
        std::process::exit(1);
    }
}
