//! E13 — runtime backends: threaded actors vs. the reactor event loop.
//!
//! Both backends run the *same* sans-IO protocol engines over file
//! WALs with group commit enabled; what differs is who drives them.
//! The threaded runtime dedicates an OS thread per site and an OS
//! thread per concurrent client, so its concurrency is bounded by the
//! thread budget. The reactor multiplexes every site on one thread and
//! represents an in-flight transaction as a table entry plus a timer
//! wheel slot, so thousands of transactions can be open at once.
//!
//! The sweep drives both backends closed-loop at 1..4096 requested
//! concurrency over a fixed PrAny site set (PrN + PrA + PrC) and
//! records committed-transaction throughput, peak in-flight
//! transactions and fsync amortization per cell into
//! `BENCH_runtime.json`.
//!
//! Acceptance (exits non-zero when violated): every transaction
//! commits, the reactor sustains >= 4096 concurrent in-flight
//! transactions, and at 512+ concurrency the reactor's throughput is
//! >= 5x the threaded backend's. The threaded backend cannot spawn
//! 4096 client threads; its 4096 cell runs capped at the thread
//! budget, recorded per cell as `"capped": true`.
//!
//! `ACP_RUNTIME_SMOKE=1` runs a small correctness-only slice (used by
//! `scripts/verify.sh`); the full campaign is machine-timed and
//! regenerated manually like the other BENCH_*.json files.
//!
//! ```sh
//! cargo run --release -p acp-bench --bin exp_runtime
//! ```

use acp_bench::{row, sep};
use acp_net::{Cluster, ClusterConfig, NetDelays, ReactorCluster, ReactorConfig};
use acp_obs::{Counter, CountingSink, MetricsRegistry, MetricsTimeline, TraceSink};
use acp_types::{CoordinatorKind, Outcome, ProtocolKind, SelectionPolicy, TxnId};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Requested-concurrency sweep.
const CONCURRENCY: [usize; 5] = [1, 8, 64, 512, 4096];

/// Most client threads the threaded driver will spawn. Cells that
/// request more run capped and are marked `"capped": true`.
const THREAD_BUDGET: usize = 1024;

fn kind() -> CoordinatorKind {
    CoordinatorKind::PrAny(SelectionPolicy::PaperStrict)
}

const PROTOS: [ProtocolKind; 3] = [ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC];

/// Long protocol timeouts: the sweep measures runtime throughput, not
/// timeout handling, so no timer may fire during a clean run even when
/// thousands of prepares queue behind one another.
fn bench_delays() -> NetDelays {
    NetDelays {
        vote_timeout: Duration::from_secs(30),
        ack_resend: Duration::from_secs(10),
        inquiry_retry: Duration::from_secs(10),
        apply_retry: Duration::from_secs(10),
        ..NetDelays::default()
    }
}

/// Transactions per cell: enough work that every requested level
/// actually saturates (4x the window, floor 256).
fn total_for(c: usize) -> u64 {
    (4 * c as u64).max(256)
}

struct Cell {
    mode: &'static str,
    requested: usize,
    effective: usize,
    capped: bool,
    txns: u64,
    committed: u64,
    elapsed_ms: u64,
    commits_per_sec: f64,
    /// Peak simultaneously-open transactions (reactor only; the
    /// threaded backend's concurrency is its client thread count).
    max_inflight: usize,
    logical_forces: u64,
    physical_syncs: u64,
    /// Live metrics snapshots streamed by the reactor while the cell
    /// ran: (host µs since spawn, decisions reached, forced writes).
    /// Empty for the threaded backend, which has no snapshot surface.
    timeline: Vec<(u64, u64, u64)>,
}

impl Cell {
    fn syncs_per_txn(&self) -> f64 {
        self.physical_syncs as f64 / self.txns.max(1) as f64
    }
}

fn key(n: u64) -> Vec<u8> {
    format!("k{n:06}").into_bytes()
}

/// Reactor driver: closed-loop in windows of `requested`. Each window
/// stages its writes, then bursts the commit requests and awaits every
/// decision — so a window genuinely has `requested` transactions open
/// in the coordinator at once before the first decision can land
/// (prepares are deferred until the batch forces at tick end).
fn reactor_cell(requested: usize, total: u64) -> Cell {
    let mut config = ReactorConfig::new(kind(), &PROTOS);
    config.cluster.delays = bench_delays();
    config.cluster.group_commit = true;
    // Live metrics surface: the reactor snapshots the counting
    // registry into the timeline every eighth of the workload, giving
    // each cell a forces-per-txn curve over host time.
    config.snapshot_every_commits = (total / 8).max(1);
    let registry = Arc::new(MetricsRegistry::new());
    let timeline = Arc::new(MetricsTimeline::new());
    let sink: Arc<dyn TraceSink> = Arc::new(CountingSink::new(Arc::clone(&registry)));
    let cluster =
        ReactorCluster::spawn_observed(&config, sink, Arc::clone(&registry), Arc::clone(&timeline));
    let parts = cluster.participants();

    let start = Instant::now();
    let mut committed = 0u64;
    let mut next = 1u64;
    while next <= total {
        let batch = (requested as u64).min(total - next + 1);
        for i in 0..batch {
            let txn = TxnId::new(next + i);
            for site in &parts {
                cluster.apply(*site, txn, &key(next + i), b"v");
            }
        }
        let pending: Vec<_> = (0..batch)
            .map(|i| cluster.commit_async(TxnId::new(next + i), &parts))
            .collect();
        for rx in pending {
            if rx.recv_timeout(Duration::from_secs(60)) == Ok(Outcome::Commit) {
                committed += 1;
            }
        }
        next += batch;
    }
    let elapsed = start.elapsed();

    let report = cluster.shutdown();
    Cell {
        mode: "reactor",
        requested,
        effective: requested,
        capped: false,
        txns: total,
        committed,
        elapsed_ms: elapsed.as_millis() as u64,
        commits_per_sec: committed as f64 / elapsed.as_secs_f64().max(1e-9),
        max_inflight: report.stats.max_inflight,
        logical_forces: report.cluster.logical_forces,
        physical_syncs: report.cluster.physical_syncs,
        timeline: timeline
            .snapshots()
            .iter()
            .map(|s| {
                (
                    s.at_us,
                    s.total(Counter::DecisionsReached),
                    s.total(Counter::ForcedWrites),
                )
            })
            .collect(),
    }
}

/// Threaded driver: one client OS thread per requested unit of
/// concurrency (capped at [`THREAD_BUDGET`]), each looping over a
/// shared transaction counter with blocking commits.
fn threaded_cell(requested: usize, total: u64) -> Cell {
    let mut config = ClusterConfig::new(kind(), &PROTOS);
    config.delays = bench_delays();
    config.group_commit = true;
    let cluster = Arc::new(Cluster::spawn(&config));
    let parts = cluster.participants();
    let effective = requested.min(THREAD_BUDGET);
    let next = Arc::new(AtomicU64::new(1));
    let committed = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    let workers: Vec<_> = (0..effective)
        .map(|_| {
            let cluster = Arc::clone(&cluster);
            let parts = parts.clone();
            let next = Arc::clone(&next);
            let committed = Arc::clone(&committed);
            std::thread::spawn(move || loop {
                let n = next.fetch_add(1, Ordering::Relaxed);
                if n > total {
                    break;
                }
                let txn = TxnId::new(n);
                for site in &parts {
                    cluster.apply(*site, txn, &key(n), b"v");
                }
                if cluster.commit(txn, &parts) == Some(Outcome::Commit) {
                    committed.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client worker");
    }
    let elapsed = start.elapsed();

    let cluster = Arc::try_unwrap(cluster).ok().expect("clients joined");
    let report = cluster.shutdown();
    Cell {
        mode: "threaded",
        requested,
        effective,
        capped: effective < requested,
        txns: total,
        committed: committed.load(Ordering::Relaxed),
        elapsed_ms: elapsed.as_millis() as u64,
        commits_per_sec: committed.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64().max(1e-9),
        max_inflight: 0,
        logical_forces: report.logical_forces,
        physical_syncs: report.physical_syncs,
        timeline: Vec::new(),
    }
}

fn print_cell(c: &Cell, widths: &[usize]) {
    println!(
        "{}",
        row(
            &[
                c.mode.into(),
                c.requested.to_string(),
                if c.capped {
                    format!("{} (cap)", c.effective)
                } else {
                    c.effective.to_string()
                },
                format!("{}/{}", c.committed, c.txns),
                format!("{:.0}", c.commits_per_sec),
                if c.mode == "reactor" {
                    c.max_inflight.to_string()
                } else {
                    "-".into()
                },
                format!("{:.3}", c.syncs_per_txn()),
                format!("{}ms", c.elapsed_ms),
            ],
            widths
        )
    );
}

fn bench_json(cells: &[Cell], sustained: usize, speedups: &[(usize, f64)], pass: bool) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"runtime\",");
    let _ = writeln!(
        j,
        "  \"site_set\": \"PrAny(PaperStrict) over PrN+PrA+PrC, group commit on\","
    );
    let _ = writeln!(j, "  \"thread_budget\": {THREAD_BUDGET},");
    let _ = writeln!(j, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let mut curve = String::new();
        for (k, &(at_us, decided, forces)) in c.timeline.iter().enumerate() {
            let _ = write!(
                curve,
                "{{\"at_us\": {at_us}, \"decided\": {decided}, \"forced_writes\": {forces}, \
                 \"forces_per_txn\": {:.3}}}",
                forces as f64 / decided.max(1) as f64,
            );
            if k + 1 < c.timeline.len() {
                curve.push_str(", ");
            }
        }
        let _ = writeln!(
            j,
            "    {{\"mode\": \"{}\", \"requested_concurrency\": {}, \"effective_concurrency\": {}, \
             \"capped\": {}, \"txns\": {}, \"committed\": {}, \"elapsed_ms\": {}, \
             \"commits_per_sec\": {:.1}, \"max_inflight\": {}, \"logical_forces\": {}, \
             \"physical_syncs\": {}, \"syncs_per_txn\": {:.3}, \"timeline\": [{curve}]}}{comma}",
            c.mode,
            c.requested,
            c.effective,
            c.capped,
            c.txns,
            c.committed,
            c.elapsed_ms,
            c.commits_per_sec,
            c.max_inflight,
            c.logical_forces,
            c.physical_syncs,
            c.syncs_per_txn(),
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"acceptance\": {{");
    let _ = writeln!(
        j,
        "    \"criterion\": \"all txns commit; reactor sustains >= 4096 concurrent in-flight \
         txns; reactor throughput >= 5x threaded at 512+ concurrency\","
    );
    let _ = writeln!(j, "    \"sustained_inflight\": {sustained},");
    for (conc, s) in speedups {
        let _ = writeln!(j, "    \"speedup_at_{conc}\": {s:.2},");
    }
    let _ = writeln!(j, "    \"pass\": {pass}");
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");
    j
}

fn main() {
    let smoke = std::env::var_os("ACP_RUNTIME_SMOKE").is_some();
    let sweep: Vec<usize> = if smoke {
        vec![1, 8]
    } else {
        CONCURRENCY.to_vec()
    };

    println!("E13 — runtime backends: threaded actors vs. reactor event loop");
    println!("site set: PrAny(PaperStrict) over PrN+PrA+PrC, group commit on\n");
    let widths = [10, 10, 10, 14, 12, 10, 11, 10];
    println!(
        "{}",
        row(
            &[
                "mode".into(),
                "requested".into(),
                "effective".into(),
                "committed".into(),
                "txns/sec".into(),
                "inflight".into(),
                "syncs/txn".into(),
                "elapsed".into(),
            ],
            &widths
        )
    );
    println!("{}", sep(&widths));

    let mut cells: Vec<Cell> = Vec::new();
    for &c in &sweep {
        let total = if smoke { 48 } else { total_for(c) };
        let r = reactor_cell(c, total);
        print_cell(&r, &widths);
        cells.push(r);
        let t = threaded_cell(c, total);
        print_cell(&t, &widths);
        cells.push(t);
    }

    let all_committed = cells.iter().all(|c| c.committed == c.txns);

    if smoke {
        let inflight_ok = cells
            .iter()
            .any(|c| c.mode == "reactor" && c.requested == 8 && c.max_inflight >= 2);
        let snapshots_ok = cells
            .iter()
            .filter(|c| c.mode == "reactor")
            .all(|c| !c.timeline.is_empty());
        println!(
            "\nsmoke acceptance (all commit, reactor multiplexes, metrics stream): {}",
            if all_committed && inflight_ok && snapshots_ok {
                "PASS"
            } else {
                "FAIL"
            }
        );
        eprintln!("smoke mode: skipping the full campaign and BENCH_runtime.json");
        if !(all_committed && inflight_ok && snapshots_ok) {
            std::process::exit(1);
        }
        return;
    }

    let sustained = cells
        .iter()
        .filter(|c| c.mode == "reactor")
        .map(|c| c.max_inflight)
        .max()
        .unwrap_or(0);
    let speedup_at = |conc: usize| -> f64 {
        let r = cells
            .iter()
            .find(|c| c.mode == "reactor" && c.requested == conc)
            .map_or(0.0, |c| c.commits_per_sec);
        let t = cells
            .iter()
            .find(|c| c.mode == "threaded" && c.requested == conc)
            .map_or(f64::INFINITY, |c| c.commits_per_sec);
        r / t
    };
    let speedups: Vec<(usize, f64)> = [512usize, 4096]
        .iter()
        .map(|&c| (c, speedup_at(c)))
        .collect();
    let pass =
        all_committed && sustained >= 4096 && speedups.iter().all(|&(_, s)| s >= 5.0);

    let json = bench_json(&cells, sustained, &speedups, pass);
    let bench_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_runtime.json");
    std::fs::write(&bench_path, &json).expect("write BENCH_runtime.json");
    eprintln!("wrote BENCH_runtime.json");

    println!("\nsustained in-flight (reactor): {sustained}");
    for (conc, s) in &speedups {
        println!("reactor/threaded speedup at {conc}: {s:.2}x");
    }
    println!(
        "acceptance (all commit, >= 4096 in-flight, >= 5x at 512+): {}",
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass {
        std::process::exit(1);
    }
}
