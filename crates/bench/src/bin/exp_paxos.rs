//! E16 — Paxos Commit as the paper's non-blocking replicated
//! coordinator, demonstrated twice over.
//!
//! **Part A (in-process, deterministic):** the analytic cost model.
//! For every cluster shape `n × f` in a small grid, a clean
//! single-transaction commit runs under the simulator harness and its
//! measured counters — forced writes and log records at the leader,
//! the `2f` remote acceptors and the `n` participants, plus total
//! coordination messages — must match [`predict_paxos`]'s closed-form
//! E8 numbers *exactly*. `f = 0` is the degenerate row: Paxos Commit
//! collapses to plain 2PC/PrN costs.
//!
//! **Part B (multi-process, real kill -9):** the coordinator-kill
//! matrix over OS processes, one per failure domain, joined only by
//! loopback TCP and their own WAL files (`exp_paxos node …` children,
//! as in `exp_socket`). For each `f ∈ {0, 1}` the same schedule runs:
//! the leader decides commit, every decision frame to the participants
//! is dropped by an injected wire fault, and then the leader process
//! is `kill -9`ed.
//!
//! * `f = 0` (that *is* 2PC): nobody left knows the outcome — the
//!   participants are provably still in doubt when we look 2.5 s
//!   later. Only restarting the leader process, which recovers the
//!   decision from its WAL and answers the participants' inquiries,
//!   unblocks them.
//! * `f = 1` (3 acceptors): the decision survives on the acceptor
//!   quorum; a remote acceptor's completion watchdog runs the failover
//!   round and the participants learn the commit with the leader still
//!   dead — observed before any restart.
//!
//! Each campaign then restarts the leader from its WALs and pushes a
//! clean mixed load through it (commit and vetoed-abort paths), merges
//! the per-process trace files and replays the cross-process ACTA
//! predicates ([`trace_check::check_merged`]), with seeded corruptions
//! proving the predicates have teeth.
//!
//! `ACP_PAXOS_SMOKE=1` runs a shortened load (for `scripts/verify.sh`);
//! the full run also writes `BENCH_paxos.json`.
//!
//! ```sh
//! cargo run --release -p acp-bench --bin exp_paxos
//! ```

#[cfg(unix)]
mod run {
    use acp_bench::trace_check::{check_merged, load_merged, Ev};
    use acp_bench::{row, sep};
    use acp_core::cost::predict_paxos;
    use acp_core::paxos::sim::{run_paxos_scenario, PaxosScenario};
    use acp_net::wire::{
        shared_history, AddressBook, FaultRule, NodeConfig, SocketNode, WireFaults,
    };
    use acp_net::NetDelays;
    use acp_obs::{JsonLinesSink, JsonValue, TraceSink};
    use acp_sim::SimTime;
    use acp_types::{
        CoordinatorKind, CostCounters, Outcome, ProtocolKind, SiteId, TxnId, Vote,
    };
    use acp_wal::tempdir::TempDir;
    use std::collections::BTreeSet;
    use std::fmt::Write as _;
    use std::io::{BufRead, BufReader, Write as _};
    use std::net::SocketAddr;
    use std::path::{Path, PathBuf};
    use std::process::{exit, Child, ChildStdin, ChildStdout, Command, Stdio};
    use std::sync::Arc;
    use std::time::{Duration, SystemTime, UNIX_EPOCH};

    /// Participants in the multi-process campaigns (sites 1 and 2; the
    /// remote acceptors, when `f = 1`, sit at sites 3 and 4).
    const N_PARTS: usize = 2;

    /// The campaign cluster: `N_PARTS` PrN participants under a Paxos
    /// Commit coordinator of tolerance `f`. Delays keep clean runs
    /// timer-silent but let the acceptor watchdog and the participants'
    /// recovery inquiries fire within the campaign's patience.
    fn cluster(f: usize) -> acp_net::ClusterConfig {
        let mut c = acp_net::ClusterConfig::new(
            CoordinatorKind::Single(ProtocolKind::PrN),
            &[ProtocolKind::PrN; N_PARTS],
        );
        c.paxos_f = Some(f);
        c.delays = NetDelays {
            vote_timeout: Duration::from_secs(60),
            ack_resend: Duration::from_millis(200),
            inquiry_retry: Duration::from_millis(250),
            apply_retry: Duration::from_secs(60),
            paxos_completion: Duration::from_millis(300),
        };
        c
    }

    /// Println + flush: children talk to the parent through a pipe, where
    /// stdout is block-buffered and an unflushed line deadlocks the run.
    fn say(line: &str) {
        let mut out = std::io::stdout();
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }

    // ---------------------------------------------------------------- child

    /// `exp_paxos node --hosted 0 --paxos-f 1 --peers F --wal D --trace T
    /// --epoch-us E [--drop-decisions]`
    ///
    /// Spawns the node, announces `LISTEN addr=…`, then serves parent
    /// commands on stdin: `go <first-txn> <count>` runs a load slice
    /// (leader only), `quit` (or EOF) shuts down gracefully and prints
    /// the final `REPORT wire=…` line. `--drop-decisions` installs the
    /// campaign's wire fault: every decision frame from this node to a
    /// participant site is silently dropped.
    fn child_main(args: &[String]) -> ! {
        let get = |flag: &str| -> String {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .unwrap_or_else(|| panic!("missing {flag}"))
                .clone()
        };
        let hosted: Vec<SiteId> = get("--hosted")
            .split(',')
            .map(|s| SiteId::new(s.parse().expect("site id")))
            .collect();
        let f: usize = get("--paxos-f").parse().expect("paxos f");
        let wal_dir = PathBuf::from(get("--wal"));
        std::fs::create_dir_all(&wal_dir).expect("wal dir");
        let trace = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(get("--trace"))
            .expect("open trace file");
        let sink: Arc<dyn TraceSink> = Arc::new(JsonLinesSink::new(trace));
        let mut config = NodeConfig::new(
            cluster(f),
            hosted,
            AddressBook::File(PathBuf::from(get("--peers"))),
            wal_dir,
        );
        config.epoch_unix_us = Some(get("--epoch-us").parse().expect("epoch"));
        if args.iter().any(|a| a == "--drop-decisions") {
            let mut faults = WireFaults::none();
            for p in 1..=N_PARTS as u32 {
                faults = faults.rule(FaultRule::drop_all(SiteId::new(p), "decision"));
            }
            config.faults = faults;
        }
        let mut node =
            SocketNode::spawn_with(config, Some(sink), shared_history()).expect("spawn node");
        say(&format!("LISTEN addr={}", node.local_addr()));

        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.unwrap_or_default();
            let words: Vec<&str> = line.split_whitespace().collect();
            match words.as_slice() {
                ["go", first, count] => child_load(
                    &mut node,
                    first.parse().expect("first txn"),
                    count.parse().expect("txn count"),
                ),
                ["quit"] => break,
                [] => {}
                other => say(&format!("ERROR unknown command {other:?}")),
            }
        }
        let report = node.shutdown();
        say(&format!("REPORT wire={}", report.wire.to_json()));
        exit(0)
    }

    /// One load slice at the leader: `count` transactions starting at id
    /// `first`, one write per participant each, every fifth vetoed by a
    /// rotating participant so both decision paths cross the wire.
    fn child_load(node: &mut SocketNode, first: u64, count: u64) {
        node.set_next_txn(first);
        let parts = node.participants();
        let (mut committed, mut aborted, mut timeouts) = (0u64, 0u64, 0u64);
        for _ in 0..count {
            let txn = node.next_txn();
            for &p in &parts {
                node.apply(p, txn, format!("k{}", txn.raw()).as_bytes(), b"v");
            }
            if txn.raw() % 5 == 0 {
                let victim = parts[(txn.raw() as usize / 5) % parts.len()];
                node.set_intent(victim, txn, Vote::No);
            }
            let outcome = node.commit(txn, &parts);
            match outcome {
                Some(Outcome::Commit) => committed += 1,
                Some(Outcome::Abort) => aborted += 1,
                None => timeouts += 1,
            }
            say(&format!(
                "TXN {} {}",
                txn.raw(),
                match outcome {
                    Some(Outcome::Commit) => "commit",
                    Some(Outcome::Abort) => "abort",
                    None => "timeout",
                }
            ));
        }
        say(&format!(
            "DONE committed={committed} aborted={aborted} timeouts={timeouts}"
        ));
    }

    // ------------------------------------------------- part A: cost model

    /// Run the clean-commit grid under the deterministic sim harness and
    /// compare every counter against the closed-form model. Returns the
    /// number of mismatching cells.
    fn analytic_grid() -> u64 {
        println!(
            "Part A — analytic cost model: one clean commit per cluster shape, measured\n\
             sim counters vs predict_paxos (forces/records per role, total messages)\n"
        );
        let widths = [10, 12, 14, 14, 10, 10];
        let header =
            ["cluster", "leader f/r", "acceptors f/r", "parts f/r", "messages", "model"]
                .map(String::from);
        println!("{}", row(&header, &widths));
        println!("{}", sep(&widths));

        fn sum<'a>(iter: impl Iterator<Item = &'a CostCounters>) -> CostCounters {
            iter.fold(CostCounters::default(), |mut a, c| {
                a += *c;
                a
            })
        }
        let txn = TxnId::new(1);
        let mut mismatches = 0u64;
        for f in 0..=2usize {
            for n in 1..=3usize {
                let mut s = PaxosScenario::new(n, f);
                s.add_txn(txn, SimTime::from_millis(1));
                let out = run_paxos_scenario(&s);
                let decided = out.decided.get(&txn) == Some(&Outcome::Commit)
                    && out.in_doubt.is_empty();
                let model = predict_paxos(n, f, Outcome::Commit);
                let leader = out.leader_costs[&txn];
                let acc = sum(out.acceptor_costs.values());
                let parts = sum(out.participant_costs.values());
                let messages = out.total_costs(txn).messages();
                let exact = decided
                    && leader.forced_writes == model.leader_forces
                    && leader.log_records == model.leader_records
                    && acc.forced_writes == model.acceptor_forces
                    && acc.log_records == model.acceptor_records
                    && parts.forced_writes == model.part_forces
                    && parts.log_records == model.part_records
                    && messages == model.messages;
                mismatches += u64::from(!exact);
                println!(
                    "{}",
                    row(
                        &[
                            format!("n={n} f={f}"),
                            format!("{}/{}", leader.forced_writes, leader.log_records),
                            format!("{}/{}", acc.forced_writes, acc.log_records),
                            format!("{}/{}", parts.forced_writes, parts.log_records),
                            messages.to_string(),
                            if exact { "exact".into() } else { "MISMATCH".into() },
                        ],
                        &widths
                    )
                );
            }
        }
        mismatches
    }

    // ---------------------------------------------- part B: kill campaigns

    /// A spawned child node and the plumbing to talk to it.
    struct Node {
        child: Child,
        stdin: ChildStdin,
        out: BufReader<ChildStdout>,
        addr: SocketAddr,
        /// Sites this child hosts (address-book entries to point at it).
        sites: Vec<u32>,
    }

    impl Node {
        #[allow(clippy::too_many_arguments)]
        fn spawn(
            exe: &Path,
            dir: &Path,
            name: &str,
            sites: &[u32],
            f: usize,
            epoch_us: u64,
            drop_decisions: bool,
        ) -> Node {
            let hosted: Vec<String> = sites.iter().map(u32::to_string).collect();
            let mut args = vec![
                "node".to_string(),
                "--hosted".into(),
                hosted.join(","),
                "--paxos-f".into(),
                f.to_string(),
                "--peers".into(),
                dir.join("peers").display().to_string(),
                "--wal".into(),
                dir.join(format!("wal-{name}")).display().to_string(),
                "--trace".into(),
                dir.join(format!("trace-{name}.jsonl")).display().to_string(),
                "--epoch-us".into(),
                epoch_us.to_string(),
            ];
            if drop_decisions {
                args.push("--drop-decisions".into());
            }
            let mut child = Command::new(exe)
                .args(&args)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn child node");
            let stdin = child.stdin.take().expect("child stdin");
            let mut out = BufReader::new(child.stdout.take().expect("child stdout"));
            let addr = read_prefixed(&mut out, "LISTEN addr=")
                .expect("child LISTEN line")
                .parse()
                .expect("listen addr");
            Node { child, stdin, out, addr, sites: sites.to_vec() }
        }

        fn send(&mut self, cmd: &str) {
            let _ = writeln!(self.stdin, "{cmd}");
            let _ = self.stdin.flush();
        }

        /// SIGKILL — the paper's site failure: volatile state gone, only
        /// the forced WAL records survive.
        fn kill9(&mut self) {
            self.child.kill().expect("kill -9 child");
            let _ = self.child.wait();
        }

        fn quit(mut self) -> String {
            self.send("quit");
            let report = read_prefixed(&mut self.out, "REPORT ").unwrap_or_default();
            let _ = self.child.wait();
            report
        }
    }

    /// Read child stdout lines until one starts with `prefix`; returns the
    /// remainder of that line, or `None` on EOF (the child died).
    fn read_prefixed(out: &mut BufReader<ChildStdout>, prefix: &str) -> Option<String> {
        loop {
            let mut line = String::new();
            if out.read_line(&mut line).ok()? == 0 {
                return None;
            }
            if let Some(rest) = line.trim_end().strip_prefix(prefix) {
                return Some(rest.to_string());
            }
        }
    }

    /// Parse a child's `DONE committed=X aborted=Y timeouts=Z` line.
    fn parse_done(rest: &str) -> (u64, u64, u64) {
        let field = |name: &str| {
            rest.split_whitespace()
                .find_map(|w| w.strip_prefix(&format!("{name}=")))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        (field("committed"), field("aborted"), field("timeouts"))
    }

    /// Rewrite the rendezvous file atomically (write-then-rename); dial
    /// retries re-read it, so a restarted leader on a fresh port becomes
    /// reachable without connection-level coordination.
    fn write_peers(dir: &Path, nodes: &[&Node]) {
        let path = dir.join("peers");
        let tmp = dir.join("peers.tmp");
        let mut body = String::new();
        for n in nodes {
            for &s in &n.sites {
                let _ = writeln!(body, "{s} {}", n.addr);
            }
        }
        std::fs::write(&tmp, body).expect("write peers");
        std::fs::rename(&tmp, &path).expect("rename peers");
    }

    /// Sites whose trace shows a forced enforcement record
    /// (`part-commit` / `part-abort`) for `txn`.
    fn enforced_sites(events: &[Ev], txn: u64) -> BTreeSet<u64> {
        events
            .iter()
            .filter(|e| {
                (e.ty() == "force_write" || e.ty() == "non_forced_write")
                    && (e.str("record") == "part-commit" || e.str("record") == "part-abort")
                    && e.txn() == txn
            })
            .map(Ev::site)
            .collect()
    }

    /// Seeded corruptions of the merged trace: each must be flagged by
    /// [`check_merged`], proving the cross-process predicates can fail.
    fn merged_mutations(clean: &[Ev]) -> Vec<(&'static str, Vec<Ev>)> {
        let mut out = Vec::new();
        let mut m = clean.to_vec();
        if let Some(e) = m.iter_mut().find(|e| {
            e.ty() == "force_write"
                && (e.str("record") == "part-commit" || e.str("record") == "part-abort")
        }) {
            let flipped =
                if e.str("record") == "part-commit" { "part-abort" } else { "part-commit" };
            e.0.insert("record".into(), JsonValue::Str(flipped.into()));
            out.push(("participant enforces against the decision", m));
        }
        let mut m = clean.to_vec();
        if let Some(i) = m
            .iter()
            .position(|e| e.ty() == "force_write" && e.str("record") == "prepared")
        {
            m.remove(i);
            out.push(("yes vote without forced prepared", m));
        }
        out
    }

    /// Everything the parent learned from one `f`-campaign.
    struct Campaign {
        f: usize,
        /// Participant sites that had enforced the kill transaction when
        /// we looked, leader still dead.
        enforced_while_dead: BTreeSet<u64>,
        /// Site that re-drove the decision with the leader dead (`f = 1`
        /// failover evidence), if any.
        failover_decider: Option<u64>,
        /// Participant sites enforced after the leader restart.
        enforced_final: BTreeSet<u64>,
        leader_recovered: bool,
        clean: (u64, u64, u64),
        violations: Vec<String>,
        merged: Vec<Ev>,
        torn: usize,
        failures: u64,
    }

    /// One coordinator-kill campaign: decide commit, drop the decision
    /// frames, `kill -9` the leader process, watch, restart, reload.
    fn campaign(exe: &Path, f: usize, load: u64) -> Campaign {
        let tmp = TempDir::new(&format!("exp-paxos-f{f}")).expect("tempdir");
        let dir = tmp.path().to_path_buf();
        let epoch_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("clock")
            .as_micros() as u64;
        let kill_txn = 1u64;
        let mut failures = 0u64;

        // One process per failure domain. Only the doomed first leader
        // incarnation carries the decision-dropping wire fault.
        let mut leader = Node::spawn(exe, &dir, "leader", &[0], f, epoch_us, true);
        let p1 = Node::spawn(exe, &dir, "part-1", &[1], f, epoch_us, false);
        let p2 = Node::spawn(exe, &dir, "part-2", &[2], f, epoch_us, false);
        let acceptors =
            (f > 0).then(|| Node::spawn(exe, &dir, "acceptors", &[3, 4], f, epoch_us, false));
        let mut members: Vec<&Node> = vec![&leader, &p1, &p2];
        if let Some(a) = &acceptors {
            members.push(a);
        }
        write_peers(&dir, &members);

        // The kill transaction: decided commit at the leader (the client
        // reply is process-local, so the fault cannot touch it), decision
        // frames to both participants dropped — then SIGKILL.
        leader.send(&format!("go {kill_txn} 1"));
        let done = read_prefixed(&mut leader.out, "DONE ").expect("kill-txn DONE");
        if parse_done(&done).0 != 1 {
            println!("  !! f={f}: the kill transaction did not commit at the leader");
            failures += 1;
        }
        leader.kill9();

        // Watch window, leader dead: f = 0 must still be in doubt; f = 1
        // must commit via the acceptor watchdog's failover round.
        std::thread::sleep(Duration::from_millis(if f == 0 { 2500 } else { 4000 }));
        let part_traces: Vec<PathBuf> = ["part-1", "part-2"]
            .iter()
            .map(|n| dir.join(format!("trace-{n}.jsonl")))
            .collect();
        let (mid, _) = load_merged(&part_traces);
        let enforced_while_dead = enforced_sites(&mid, kill_txn);

        // Restart the leader from its WALs (fault-free this time) on a
        // fresh port; republish the address book. For f = 0 this is the
        // only way out: recovery re-reads the decision and the
        // participants' inquiry retries finally get an answer.
        let mut leader = Node::spawn(exe, &dir, "leader", &[0], f, epoch_us, false);
        let mut members: Vec<&Node> = vec![&leader, &p1, &p2];
        if let Some(a) = &acceptors {
            members.push(a);
        }
        write_peers(&dir, &members);
        std::thread::sleep(Duration::from_millis(2500));

        // Clean mixed load through the restarted leader: the cluster must
        // be fully serviceable again (commit and vetoed-abort paths).
        leader.send(&format!("go {} {load}", kill_txn + 1));
        let done = read_prefixed(&mut leader.out, "DONE ").expect("reload DONE");
        let clean = parse_done(&done);

        // Graceful teardown, then merge every process's trace (both leader
        // incarnations append to the same file) and replay the
        // cross-process ACTA predicates.
        let _ = leader.quit();
        let _ = p1.quit();
        let _ = p2.quit();
        if let Some(a) = acceptors {
            let _ = a.quit();
        }
        let mut traces = part_traces;
        traces.push(dir.join("trace-leader.jsonl"));
        if f > 0 {
            traces.push(dir.join("trace-acceptors.jsonl"));
        }
        let (merged, torn) = load_merged(&traces);
        let violations = check_merged(&merged);
        let enforced_final = enforced_sites(&merged, kill_txn);
        let leader_recovered = merged
            .iter()
            .any(|e| e.ty() == "recovery_step" && e.site() == 0);
        let failover_decider = merged
            .iter()
            .find(|e| e.ty() == "decision_reached" && e.txn() == kill_txn && e.site() != 0)
            .map(Ev::site);

        Campaign {
            f,
            enforced_while_dead,
            failover_decider,
            enforced_final,
            leader_recovered,
            clean,
            violations,
            merged,
            torn,
            failures,
        }
    }

    #[allow(clippy::too_many_lines)]
    pub fn main() {
        let args: Vec<String> = std::env::args().collect();
        if args.get(1).map(String::as_str) == Some("node") {
            child_main(&args[2..]);
        }
        let smoke = std::env::var_os("ACP_PAXOS_SMOKE").is_some();
        let load = if smoke { 4u64 } else { 24 };
        let exe = std::env::current_exe().expect("own path");

        println!(
            "E16 — Paxos Commit: a non-blocking replicated coordinator over {N_PARTS} PrN \
             participants\n"
        );
        let analytic_mismatches = analytic_grid();
        let mut failures = analytic_mismatches;

        println!(
            "\nPart B — coordinator-kill matrix over OS processes: decide commit, drop the\n\
             decision frames, kill -9 the leader; watch, then restart it from its WALs\n"
        );
        let all_parts: BTreeSet<u64> = (1..=N_PARTS as u64).collect();
        let widths = [14, 26, 22, 16, 10];
        let header = [
            "campaign",
            "while the leader is dead",
            "after leader restart",
            "reload (c/a/t)",
            "checks",
        ]
        .map(String::from);
        println!("{}", row(&header, &widths));
        println!("{}", sep(&widths));

        let mut campaigns = Vec::new();
        for f in [0usize, 1] {
            let mut c = campaign(&exe, f, load);

            // Expectations, per tolerance.
            if f == 0 {
                if !c.enforced_while_dead.is_empty() {
                    println!(
                        "  !! f=0: participants {:?} enforced with the leader dead — 2PC must block",
                        c.enforced_while_dead
                    );
                    c.failures += 1;
                }
            } else {
                if c.enforced_while_dead != all_parts {
                    println!(
                        "  !! f=1: only {:?} enforced with the leader dead — failover must commit",
                        c.enforced_while_dead
                    );
                    c.failures += 1;
                }
                if c.failover_decider.is_none() {
                    println!("  !! f=1: no decision_reached from a surviving acceptor in the trace");
                    c.failures += 1;
                }
            }
            if c.enforced_final != all_parts {
                println!(
                    "  !! f={f}: participants {:?} enforced after restart (want {:?})",
                    c.enforced_final, all_parts
                );
                c.failures += 1;
            }
            if !c.leader_recovered {
                println!("  !! f={f}: no recovery_step from site 0 — the restart did not recover");
                c.failures += 1;
            }
            if c.clean.0 == 0 || c.clean.1 == 0 || c.clean.2 != 0 {
                println!(
                    "  !! f={f}: reload must exercise both decision paths without timeouts, got \
                     {:?}",
                    c.clean
                );
                c.failures += 1;
            }
            for v in &c.violations {
                println!("  !! f={f}: {v}");
            }
            c.failures += c.violations.len() as u64;

            let while_dead = if c.enforced_while_dead.is_empty() {
                "blocked (in doubt)".to_string()
            } else {
                format!(
                    "commit via failover @{}",
                    c.failover_decider.map_or_else(|| "?".to_string(), |s| s.to_string())
                )
            };
            println!(
                "{}",
                row(
                    &[
                        if f == 0 { "f=0 (2PC)".into() } else { format!("f={f} (3 acc)") },
                        while_dead,
                        format!("enforced @{:?}", c.enforced_final),
                        format!("{}/{}/{}", c.clean.0, c.clean.1, c.clean.2),
                        if c.failures == 0 { "ok".into() } else { format!("{} FAIL", c.failures) },
                    ],
                    &widths
                )
            );
            failures += c.failures;
            campaigns.push(c);
        }

        // The predicates must have teeth: seeded corruptions of the f = 1
        // merged trace must each be flagged.
        println!("\nMutation controls (each must be flagged):");
        let f1 = &campaigns[1];
        for (name, mutated) in merged_mutations(&f1.merged) {
            let caught = !check_merged(&mutated).is_empty();
            println!("  {:44} {}", name, if caught { "flagged" } else { "MISSED" });
            failures += u64::from(!caught);
        }
        for c in &campaigns {
            println!(
                "\nf={}: merged {} trace events ({} torn/partial lines skipped), {} violation(s)",
                c.f,
                c.merged.len(),
                c.torn,
                c.violations.len()
            );
        }

        if smoke {
            println!("\nsmoke mode: skipping BENCH_paxos.json");
        } else {
            let mut j = String::from("{\n");
            let _ = writeln!(j, "  \"bench\": \"paxos\",");
            let _ = writeln!(
                j,
                "  \"config\": {{\"participants\": {N_PARTS}, \"grid\": \"n=1..3 x f=0..2\", \
                 \"kill_matrix_f\": [0, 1], \"reload_txns\": {load}}},"
            );
            let _ = writeln!(j, "  \"campaigns\": [");
            for (i, c) in campaigns.iter().enumerate() {
                let _ = writeln!(
                    j,
                    "    {{\"f\": {}, \"blocked_while_dead\": {}, \"failover_decider\": {}, \
                     \"enforced_after_restart\": {}, \"leader_recovered\": {}, \
                     \"reload\": [{}, {}, {}], \"violations\": {}}}{}",
                    c.f,
                    c.enforced_while_dead.is_empty(),
                    c.failover_decider.map_or_else(|| "null".to_string(), |s| s.to_string()),
                    c.enforced_final.len(),
                    c.leader_recovered,
                    c.clean.0,
                    c.clean.1,
                    c.clean.2,
                    c.violations.len(),
                    if i + 1 < campaigns.len() { "," } else { "" }
                );
            }
            let _ = writeln!(j, "  ],");
            let _ = writeln!(
                j,
                "  \"acceptance\": {{\"analytic_mismatches\": {analytic_mismatches}, \
                 \"pass\": {}}}\n}}",
                failures == 0
            );
            let bench_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_paxos.json");
            std::fs::write(&bench_path, &j).expect("write BENCH_paxos.json");
            println!("\nwrote {}", bench_path.display());
        }

        if failures > 0 {
            println!("\nexp_paxos FAILED: {failures} check(s)");
            exit(1);
        }
        println!(
            "\nexp_paxos OK: cost model exact on the 9-cell grid; f=0 blocked until its leader \
             restarted, f=1 committed through failover with the leader dead; 0 violations"
        );
    }
}

#[cfg(unix)]
fn main() {
    run::main();
}

#[cfg(not(unix))]
fn main() {
    eprintln!("exp_paxos: the paxos campaign is unix-only");
}
