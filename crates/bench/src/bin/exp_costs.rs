//! E8 — the cost table: analytic model vs. measured execution, per
//! protocol × outcome, for homogeneous and mixed populations, plus the
//! modeled critical-path latency.
//!
//! ```sh
//! cargo run --release -p acp-bench --bin exp_costs
//! ```

use acp_bench::{row, run_one, sep};
use acp_core::cost::{predict, Population};
use acp_types::{CoordinatorKind, Outcome, ProtocolKind, SelectionPolicy, TxnId};

const T: TxnId = TxnId(1);

fn entry(kind: CoordinatorKind, outcome: Outcome, pop: Population, widths: &[usize]) {
    let protos: Vec<ProtocolKind> = pop.entries().iter().map(|e| e.protocol).collect();
    let out = run_one(kind, &protos, outcome == Outcome::Abort);
    assert_eq!(out.decided[&T], outcome);
    let measured = out.total_costs(T);
    let coord = out.coordinator_costs[&T];
    let predicted = predict(kind, outcome, pop);

    let ok = coord.forced_writes == predicted.coord_forces
        && measured.forced_writes == predicted.total_forces()
        && measured.log_records == predicted.total_records()
        && measured.messages() == predicted.messages;
    println!(
        "{}",
        row(
            &[
                kind.to_string(),
                outcome.to_string(),
                format!("{}/{}/{}", pop.prn, pop.pra, pop.prc),
                format!("{} ({})", measured.forced_writes, predicted.total_forces()),
                format!("{} ({})", coord.forced_writes, predicted.coord_forces),
                format!("{} ({})", measured.log_records, predicted.total_records()),
                format!("{} ({})", measured.messages(), predicted.messages),
                if ok { "match" } else { "MISMATCH" }.to_string(),
            ],
            widths
        )
    );
}

fn main() {
    println!("E8 — commit-processing costs, measured (predicted)\n");
    println!("population column: #PrN/#PrA/#PrC participants\n");
    let widths = [12, 8, 12, 14, 16, 14, 12, 10];
    println!(
        "{}",
        row(
            &[
                "coordinator".into(),
                "outcome".into(),
                "population".into(),
                "forces".into(),
                "coord forces".into(),
                "log records".into(),
                "messages".into(),
                "model".into(),
            ],
            &widths
        )
    );
    println!("{}", sep(&widths));

    for outcome in [Outcome::Commit, Outcome::Abort] {
        for (kind, pop) in [
            (
                CoordinatorKind::Single(ProtocolKind::PrN),
                Population::new(3, 0, 0),
            ),
            (
                CoordinatorKind::Single(ProtocolKind::PrA),
                Population::new(0, 3, 0),
            ),
            (
                CoordinatorKind::Single(ProtocolKind::PrC),
                Population::new(0, 0, 3),
            ),
            (
                CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
                Population::new(1, 1, 1),
            ),
            (
                CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
                Population::new(1, 1, 0),
            ),
            (
                CoordinatorKind::PrAny(SelectionPolicy::Optimized),
                Population::new(1, 1, 0),
            ),
        ] {
            entry(kind, outcome, pop, &widths);
        }
    }

    // Modeled critical-path commit latency: sequential forces on the
    // commit path (initiation → prepare-force → commit-force) plus two
    // message round trips. Latency parameters: 5ms per force, 0.2ms per
    // one-way message (the shape, not absolute numbers, is the claim).
    println!("\nModeled commit latency (force=5ms, one-way message=0.2ms):\n");
    let widths = [12, 12, 20, 16];
    println!(
        "{}",
        row(
            &[
                "coordinator".into(),
                "population".into(),
                "critical-path forces".into(),
                "latency (ms)".into(),
            ],
            &widths
        )
    );
    println!("{}", sep(&widths));
    for (kind, pop) in [
        (
            CoordinatorKind::Single(ProtocolKind::PrN),
            Population::new(3, 0, 0),
        ),
        (
            CoordinatorKind::Single(ProtocolKind::PrA),
            Population::new(0, 3, 0),
        ),
        (
            CoordinatorKind::Single(ProtocolKind::PrC),
            Population::new(0, 0, 3),
        ),
        (
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            Population::new(1, 1, 1),
        ),
    ] {
        let p = predict(kind, Outcome::Commit, pop);
        // Critical path to the *decision*: initiation force (if any) +
        // participant prepared force + coordinator decision force, plus
        // prepare + vote one-way trips.
        let init = u64::from(p.coord_forces >= 2); // initiation present
        let forces_on_path = init + 1 /* prepared */ + 1 /* decision */;
        let latency_ms = forces_on_path as f64 * 5.0 + 2.0 * 0.2;
        println!(
            "{}",
            row(
                &[
                    kind.to_string(),
                    format!("{}/{}/{}", pop.prn, pop.pra, pop.prc),
                    forces_on_path.to_string(),
                    format!("{latency_ms:.1}"),
                ],
                &widths
            )
        );
    }
}
