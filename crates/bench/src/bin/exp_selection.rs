//! E9 — §4.1 protocol selection: the distribution of commit modes a
//! PrAny coordinator picks as a function of the site population, and
//! the forced-write saving of the Optimized selection policy.
//!
//! ```sh
//! cargo run --release -p acp-bench --bin exp_selection
//! ```

use acp_bench::{default_threads, parallel_map, row, sep};
use acp_core::cost::{predict, Population};
use acp_core::select_mode;
use acp_types::{CommitMode, CoordinatorKind, Outcome, ParticipantEntry, SelectionPolicy, SiteId};
use acp_workload::PopulationMix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One table cell: the mode distribution for a (population, policy)
/// pair. Each cell owns its RNG (fixed seed), so cells are independent
/// and are fanned across the thread pool by `main`; the rendered row is
/// identical to a serial run.
fn distribution(mix: PopulationMix, policy: SelectionPolicy, label: &str, widths: &[usize]) -> String {
    let mut rng = StdRng::seed_from_u64(7);
    let mut counts = [0u32; 4]; // PrN, PrA, PrC, PrAny
    let trials = 20_000;
    for _ in 0..trials {
        let n = 2 + (rand::Rng::random_range(&mut rng, 0..3));
        let entries: Vec<ParticipantEntry> = mix
            .sample_n(&mut rng, n)
            .into_iter()
            .enumerate()
            .map(|(i, p)| ParticipantEntry::new(SiteId::new(i as u32 + 1), p))
            .collect();
        match select_mode(policy, &entries) {
            CommitMode::PrN => counts[0] += 1,
            CommitMode::PrA => counts[1] += 1,
            CommitMode::PrC => counts[2] += 1,
            CommitMode::PrAny => counts[3] += 1,
        }
    }
    let pct = |c: u32| format!("{:.1}%", 100.0 * f64::from(c) / f64::from(trials));
    row(
        &[
            label.to_string(),
            policy.to_string(),
            pct(counts[0]),
            pct(counts[1]),
            pct(counts[2]),
            pct(counts[3]),
        ],
        widths,
    )
}

fn main() {
    println!("E9 — commit-mode selection distribution (transactions of 2–4 participants)\n");
    let widths = [14, 14, 8, 8, 8, 8];
    println!(
        "{}",
        row(
            &[
                "population".into(),
                "policy".into(),
                "PrN".into(),
                "PrA".into(),
                "PrC".into(),
                "PrAny".into(),
            ],
            &widths
        )
    );
    println!("{}", sep(&widths));
    let mut cells = Vec::new();
    for (mix, label) in [
        (PopulationMix::uniform(), "uniform"),
        (PopulationMix::mdbs(), "mdbs 40/40/20"),
        (
            PopulationMix {
                prn: 0.8,
                pra: 0.2,
                prc: 0.0,
            },
            "PrN-heavy",
        ),
    ] {
        for policy in [SelectionPolicy::PaperStrict, SelectionPolicy::Optimized] {
            cells.push((mix, policy, label));
        }
    }
    for line in parallel_map(cells, default_threads(), |(mix, policy, label)| {
        distribution(mix, policy, label, &widths)
    }) {
        println!("{line}");
    }

    // Ablation: expected coordinator forces per commit for a PrN+PrA mix
    // under each policy.
    println!("\nAblation — PrN+PrA mix (1/1/0), commit:\n");
    for policy in [SelectionPolicy::PaperStrict, SelectionPolicy::Optimized] {
        let p = predict(
            CoordinatorKind::PrAny(policy),
            Outcome::Commit,
            Population::new(1, 1, 0),
        );
        println!(
            "  {policy:<14} coordinator forces = {}, total forces = {}, messages = {}",
            p.coord_forces,
            p.total_forces(),
            p.messages
        );
    }
    println!(
        "\nThe Optimized policy avoids the initiation-record force for populations mixing \
         only PrN and PrA; any population containing PrC still runs full PrAny \
         (the naive PrN+PrC→PrC shortcut is unsafe — see acp-core::coordinator::select docs)."
    );
}
