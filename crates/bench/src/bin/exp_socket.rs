//! E15 — the socket backend as the paper's actual deployment model:
//! coordinator and participants as **separate OS processes** whose only
//! shared state is the network and their own WAL files.
//!
//! The parent process spawns three child processes of this same binary
//! (`exp_socket node …`): a coordinator node (site 0, PrAny) and two
//! participant nodes (sites 1+2, and site 3 — a PrA/PrC/PrN mix). Each
//! child binds an ephemeral loopback port, announces it on stdout, and
//! the parent distributes the address book through a rendezvous file.
//! Every child appends its `ProtocolEvent` stream to its own
//! JSON-lines trace file, stamped on a shared epoch so the parent can
//! merge the per-process files into one global history.
//!
//! The campaign then does to processes what the simulator does to
//! virtual sites:
//!
//! 1. a clean load phase (mixed commits and vetoed aborts);
//! 2. `kill -9` of a **participant** process mid-load, restart from its
//!    WALs on a fresh port, address book rewritten, load continues;
//! 3. `kill -9` of the **coordinator** process mid-load, restart and
//!    WAL recovery, a fresh (disjoint) transaction range afterwards.
//!
//! Afterwards the parent merges the trace files
//! ([`trace_check::load_merged`] — torn tails from the kills are
//! legitimate and skipped) and replays the cross-process ACTA
//! predicates ([`trace_check::check_merged`]): decisions never
//! contradict across coordinator incarnations, every participant
//! enforcement agrees with the global decision, yes votes and acks
//! follow their forced records. Two seeded corruptions prove the
//! predicates have teeth. Recovery evidence (a `recovery_step` from
//! both victims' sites) must appear, or the kills did not actually
//! exercise the restart procedure.
//!
//! `ACP_SOCKET_SMOKE=1` runs a shortened load (for `scripts/verify.sh`);
//! the full run also writes `BENCH_socket.json`.
//!
//! ```sh
//! cargo run --release -p acp-bench --bin exp_socket
//! ```


#[cfg(unix)]
mod run {
    use acp_bench::trace_check::{check_merged, load_merged, Ev};
    use acp_bench::{row, sep};
    use acp_net::wire::{shared_history, AddressBook, NodeConfig, SocketNode};
    use acp_obs::{JsonLinesSink, JsonValue, TraceSink};
    use acp_types::{CoordinatorKind, Outcome, ProtocolKind, SelectionPolicy, SiteId, Vote};
    use acp_wal::tempdir::TempDir;
    use std::fmt::Write as _;
    use std::io::{BufRead, BufReader, Write as _};
    use std::net::SocketAddr;
    use std::path::{Path, PathBuf};
    use std::process::{exit, Child, ChildStdin, ChildStdout, Command, Stdio};
    use std::sync::Arc;
    use std::time::{Duration, SystemTime, UNIX_EPOCH};

    /// The fixed demo cluster: a PrAny coordinator over one participant of
    /// each presumption. Parent and children construct this identically.
    fn cluster() -> acp_net::ClusterConfig {
        acp_net::ClusterConfig::new(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC, ProtocolKind::PrN],
        )
    }

    /// Println + flush: children talk to the parent through a pipe, where
    /// stdout is block-buffered and an unflushed line deadlocks the run.
    fn say(line: &str) {
        let mut out = std::io::stdout();
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }

    // ---------------------------------------------------------------- child

    /// `exp_socket node --hosted 1,2 --peers F --wal D --trace T --epoch-us E`
    ///
    /// Spawns the node, announces `LISTEN addr=…`, then serves parent
    /// commands on stdin: `go <first-txn> <count>` runs a load slice
    /// (coordinator only), `quit` (or EOF — the parent died) shuts down
    /// gracefully and prints the final `REPORT wire=…` line.
    fn child_main(args: &[String]) -> ! {
        let get = |flag: &str| -> String {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .unwrap_or_else(|| panic!("missing {flag}"))
                .clone()
        };
        let hosted: Vec<SiteId> = get("--hosted")
            .split(',')
            .map(|s| SiteId::new(s.parse().expect("site id")))
            .collect();
        let wal_dir = PathBuf::from(get("--wal"));
        std::fs::create_dir_all(&wal_dir).expect("wal dir");
        let trace = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(get("--trace"))
            .expect("open trace file");
        let sink: Arc<dyn TraceSink> = Arc::new(JsonLinesSink::new(trace));
        let mut config = NodeConfig::new(
            cluster(),
            hosted,
            AddressBook::File(PathBuf::from(get("--peers"))),
            wal_dir,
        );
        config.epoch_unix_us = Some(get("--epoch-us").parse().expect("epoch"));
        let mut node =
            SocketNode::spawn_with(config, Some(sink), shared_history()).expect("spawn node");
        say(&format!("LISTEN addr={}", node.local_addr()));

        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.unwrap_or_default();
            let words: Vec<&str> = line.split_whitespace().collect();
            match words.as_slice() {
                ["go", first, count] => child_load(
                    &mut node,
                    first.parse().expect("first txn"),
                    count.parse().expect("txn count"),
                ),
                ["quit"] => break,
                [] => {}
                other => say(&format!("ERROR unknown command {other:?}")),
            }
        }
        let report = node.shutdown();
        say(&format!("REPORT wire={}", report.wire.to_json()));
        exit(0)
    }

    /// One load slice at the coordinator: `count` transactions starting at
    /// id `first`, one write per participant each, every fifth vetoed by a
    /// rotating participant so both decisions and both presumption paths
    /// cross the wire.
    fn child_load(node: &mut SocketNode, first: u64, count: u64) {
        node.set_next_txn(first);
        let parts = node.participants();
        let (mut committed, mut aborted, mut timeouts) = (0u64, 0u64, 0u64);
        for _ in 0..count {
            let txn = node.next_txn();
            for &p in &parts {
                node.apply(p, txn, format!("k{}", txn.raw()).as_bytes(), b"v");
            }
            let veto = txn.raw() % 5 == 0;
            if veto {
                let victim = parts[(txn.raw() as usize / 5) % parts.len()];
                node.set_intent(victim, txn, Vote::No);
            }
            let outcome = node.commit(txn, &parts);
            match outcome {
                Some(Outcome::Commit) => committed += 1,
                Some(Outcome::Abort) => aborted += 1,
                None => timeouts += 1,
            }
            say(&format!(
                "TXN {} {}",
                txn.raw(),
                match outcome {
                    Some(Outcome::Commit) => "commit",
                    Some(Outcome::Abort) => "abort",
                    None => "timeout",
                }
            ));
        }
        say(&format!(
            "DONE committed={committed} aborted={aborted} timeouts={timeouts}"
        ));
    }

    // --------------------------------------------------------------- parent

    /// A spawned child node and the plumbing to talk to it.
    struct Node {
        child: Child,
        stdin: ChildStdin,
        out: BufReader<ChildStdout>,
        addr: SocketAddr,
        /// Sites this child hosts (address-book entries to point at it).
        sites: Vec<u32>,
    }

    impl Node {
        fn spawn(exe: &Path, dir: &Path, name: &str, sites: &[u32], epoch_us: u64) -> Node {
            let hosted: Vec<String> = sites.iter().map(u32::to_string).collect();
            let mut child = Command::new(exe)
                .args([
                    "node",
                    "--hosted",
                    &hosted.join(","),
                    "--peers",
                    &dir.join("peers").display().to_string(),
                    "--wal",
                    &dir.join(format!("wal-{name}")).display().to_string(),
                    "--trace",
                    &dir.join(format!("trace-{name}.jsonl")).display().to_string(),
                    "--epoch-us",
                    &epoch_us.to_string(),
                ])
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn child node");
            let stdin = child.stdin.take().expect("child stdin");
            let mut out = BufReader::new(child.stdout.take().expect("child stdout"));
            let addr = read_prefixed(&mut out, "LISTEN addr=")
                .expect("child LISTEN line")
                .parse()
                .expect("listen addr");
            Node { child, stdin, out, addr, sites: sites.to_vec() }
        }

        fn send(&mut self, cmd: &str) {
            let _ = writeln!(self.stdin, "{cmd}");
            let _ = self.stdin.flush();
        }

        /// SIGKILL — the paper's site failure: volatile state gone, only
        /// the forced WAL records survive.
        fn kill9(&mut self) {
            self.child.kill().expect("kill -9 child");
            let _ = self.child.wait();
        }

        fn quit(mut self) -> String {
            self.send("quit");
            let report = read_prefixed(&mut self.out, "REPORT ").unwrap_or_default();
            let _ = self.child.wait();
            report
        }
    }

    /// Read child stdout lines until one starts with `prefix`; returns the
    /// remainder of that line, or `None` on EOF (the child died).
    fn read_prefixed(out: &mut BufReader<ChildStdout>, prefix: &str) -> Option<String> {
        loop {
            let mut line = String::new();
            if out.read_line(&mut line).ok()? == 0 {
                return None;
            }
            if let Some(rest) = line.trim_end().strip_prefix(prefix) {
                return Some(rest.to_string());
            }
        }
    }

    /// Read `TXN …` progress lines until `n` have been seen (so a kill can
    /// be placed provably mid-load), or until EOF.
    fn await_txns(out: &mut BufReader<ChildStdout>, n: usize) {
        for _ in 0..n {
            if read_prefixed(out, "TXN ").is_none() {
                return;
            }
        }
    }

    /// Parse a child's `DONE committed=X aborted=Y timeouts=Z` line.
    fn parse_done(rest: &str) -> (u64, u64, u64) {
        let field = |name: &str| {
            rest.split_whitespace()
                .find_map(|w| w.strip_prefix(&format!("{name}=")))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        (field("committed"), field("aborted"), field("timeouts"))
    }

    /// Rewrite the rendezvous file atomically (write-then-rename), exactly
    /// like a deployment would republish a membership view: dial retries
    /// re-read it, so restarted nodes become reachable without any
    /// connection-level coordination.
    fn write_peers(dir: &Path, nodes: &[&Node]) {
        let path = dir.join("peers");
        let tmp = dir.join("peers.tmp");
        let mut body = String::new();
        for n in nodes {
            for &s in &n.sites {
                let _ = writeln!(body, "{s} {}", n.addr);
            }
        }
        std::fs::write(&tmp, body).expect("write peers");
        std::fs::rename(&tmp, &path).expect("rename peers");
    }

    /// Seeded corruptions of the merged trace: each must be flagged by
    /// [`check_merged`], proving the cross-process predicates can fail.
    fn merged_mutations(clean: &[Ev]) -> Vec<(&'static str, Vec<Ev>)> {
        let mut out = Vec::new();
        let mut m = clean.to_vec();
        if let Some(e) = m.iter_mut().find(|e| {
            e.ty() == "force_write" && (e.str("record") == "part-commit" || e.str("record") == "part-abort")
        }) {
            let flipped = if e.str("record") == "part-commit" { "part-abort" } else { "part-commit" };
            e.0.insert("record".into(), JsonValue::Str(flipped.into()));
            out.push(("participant enforces against the decision", m));
        }
        let mut m = clean.to_vec();
        if let Some(i) = m
            .iter()
            .position(|e| e.ty() == "force_write" && e.str("record") == "prepared")
        {
            m.remove(i);
            out.push(("yes vote without forced prepared", m));
        }
        out
    }

    #[allow(clippy::too_many_lines)]
    pub fn main() {
        let args: Vec<String> = std::env::args().collect();
        if args.get(1).map(String::as_str) == Some("node") {
            child_main(&args[2..]);
        }
        let smoke = std::env::var_os("ACP_SOCKET_SMOKE").is_some();
        // Transactions per phase: clean / participant-kill / coordinator-kill.
        let (p1, p2, p3) = if smoke { (8u64, 10, 10) } else { (40u64, 50, 50) };
        let exe = std::env::current_exe().expect("own path");
        let tmp = TempDir::new("exp-socket").expect("tempdir");
        let dir = tmp.path().to_path_buf();
        let epoch_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("clock")
            .as_micros() as u64;

        println!(
            "E15 — multi-process socket cluster: PrAny coordinator + PrA/PrC/PrN \
             participants as separate OS processes\n"
        );

        // Spawn the three node processes, then publish the address book.
        let mut coord = Node::spawn(&exe, &dir, "coord", &[0], epoch_us);
        let mut part_a = Node::spawn(&exe, &dir, "part-a", &[1, 2], epoch_us);
        let part_b = Node::spawn(&exe, &dir, "part-b", &[3], epoch_us);
        write_peers(&dir, &[&coord, &part_a, &part_b]);

        let widths = [34, 10, 8, 8, 8];
        let header = ["phase", "committed", "aborted", "timeout", "kills"].map(String::from);
        println!("{}", row(&header, &widths));
        println!("{}", sep(&widths));
        let mut totals = (0u64, 0u64, 0u64);
        let mut phase_row = |name: &str, done: (u64, u64, u64), kills: u64| {
            totals = (totals.0 + done.0, totals.1 + done.1, totals.2 + done.2);
            println!(
                "{}",
                row(
                    &[
                        name.to_string(),
                        done.0.to_string(),
                        done.1.to_string(),
                        done.2.to_string(),
                        kills.to_string(),
                    ],
                    &widths
                )
            );
        };

        // Phase 1: clean load.
        coord.send(&format!("go 1 {p1}"));
        let done = read_prefixed(&mut coord.out, "DONE ").expect("phase 1 DONE");
        phase_row("clean load", parse_done(&done), 0);

        // Phase 2: kill -9 a participant process mid-load; restart it from
        // its WALs on a fresh port and republish the address book.
        let mut next = p1 + 1;
        coord.send(&format!("go {next} {p2}"));
        await_txns(&mut coord.out, 3);
        part_a.kill9();
        std::thread::sleep(Duration::from_millis(200));
        let part_a = Node::spawn(&exe, &dir, "part-a", &[1, 2], epoch_us);
        write_peers(&dir, &[&coord, &part_a, &part_b]);
        let done = read_prefixed(&mut coord.out, "DONE ").expect("phase 2 DONE");
        phase_row("participant kill -9 + restart", parse_done(&done), 1);

        // Phase 3: kill -9 the coordinator mid-load. Its in-flight slice
        // dies with it; the restarted incarnation recovers the coordinator
        // WAL (answering any in-doubt inquiries from what it forced — or by
        // presumption for what it legitimately forgot) and then drives a
        // fresh, disjoint transaction range.
        next += p2;
        coord.send(&format!("go {next} {p3}"));
        await_txns(&mut coord.out, 3);
        coord.kill9();
        std::thread::sleep(Duration::from_millis(200));
        let mut coord = Node::spawn(&exe, &dir, "coord", &[0], epoch_us);
        write_peers(&dir, &[&coord, &part_a, &part_b]);
        next += p3; // the killed slice's ids stay retired — ranges are disjoint
        coord.send(&format!("go {next} {p3}"));
        let done = read_prefixed(&mut coord.out, "DONE ").expect("phase 3 DONE");
        phase_row("coordinator kill -9 + recovery", parse_done(&done), 1);

        // Graceful teardown: every node flushes and reports.
        let coord_report = coord.quit();
        let a_report = part_a.quit();
        let b_report = part_b.quit();

        // Merge the per-process traces and replay the cross-process ACTA
        // predicates over the stitched global history.
        let traces: Vec<PathBuf> = ["coord", "part-a", "part-b"]
            .iter()
            .map(|n| dir.join(format!("trace-{n}.jsonl")))
            .collect();
        let (merged, torn) = load_merged(&traces);
        let violations = check_merged(&merged);
        let recovered_sites: Vec<u64> = {
            let mut s: Vec<u64> = merged
                .iter()
                .filter(|e| e.ty() == "recovery_step")
                .map(Ev::site)
                .collect();
            s.sort_unstable();
            s.dedup();
            s
        };

        println!("\nMerged trace: {} events across 3 process files ({torn} torn/partial lines skipped)", merged.len());
        println!("  wire coord : {coord_report}");
        println!("  wire part-a: {a_report}");
        println!("  wire part-b: {b_report}");
        println!("\nCross-process ACTA predicates: {} violation(s)", violations.len());
        for v in &violations {
            println!("    !! {v}");
        }

        println!("\nMutation controls (each must be flagged):");
        let mut failures = violations.len() as u64;
        for (name, mutated) in merged_mutations(&merged) {
            let caught = !check_merged(&mutated).is_empty();
            println!("  {:44} {}", name, if caught { "flagged" } else { "MISSED" });
            failures += u64::from(!caught);
        }

        // The kills must have exercised real WAL recovery: both the killed
        // participant's sites and the coordinator re-ran the restart
        // procedure in their second incarnation.
        let coord_recovered = recovered_sites.contains(&0);
        let part_recovered = recovered_sites.contains(&1) || recovered_sites.contains(&2);
        println!(
            "\nRecovery evidence: sites {recovered_sites:?} ran recovery steps \
             (coordinator: {coord_recovered}, killed participant: {part_recovered})"
        );
        failures += u64::from(!coord_recovered) + u64::from(!part_recovered);
        if totals.0 == 0 {
            println!("!! no transaction committed across the whole campaign");
            failures += 1;
        }
        if totals.1 == 0 {
            println!("!! no vetoed transaction aborted — both decision paths must cross the wire");
            failures += 1;
        }

        if smoke {
            println!("\nsmoke mode: skipping BENCH_socket.json");
        } else {
            let mut j = String::from("{\n");
            let _ = writeln!(j, "  \"bench\": \"socket\",");
            let _ = writeln!(
                j,
                "  \"config\": {{\"processes\": 3, \"cluster\": \"PrAny over PrA,PrC,PrN\", \
                 \"phases\": [{p1}, {p2}, {p3}], \"kills\": 2}},"
            );
            let _ = writeln!(
                j,
                "  \"results\": {{\"committed\": {}, \"aborted\": {}, \"timeouts\": {}, \
                 \"merged_events\": {}, \"torn_lines\": {torn}}},",
                totals.0,
                totals.1,
                totals.2,
                merged.len()
            );
            let _ = writeln!(
                j,
                "  \"acceptance\": {{\"violations\": {}, \"coordinator_recovered\": {coord_recovered}, \
                 \"participant_recovered\": {part_recovered}, \"pass\": {}}}\n}}",
                violations.len(),
                failures == 0
            );
            let bench_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_socket.json");
            std::fs::write(&bench_path, &j).expect("write BENCH_socket.json");
            println!("\nwrote {}", bench_path.display());
        }

        if failures > 0 {
            println!("\nexp_socket FAILED: {failures} check(s)");
            exit(1);
        }
        println!(
            "\nexp_socket OK: {} txns ({} committed, {} aborted) across 3 processes, \
             2 kill -9 recoveries, 0 violations",
            totals.0 + totals.1 + totals.2,
            totals.0,
            totals.1
        );
    }

}

#[cfg(unix)]
fn main() {
    run::main();
}

#[cfg(not(unix))]
fn main() {
    eprintln!("exp_socket: the socket backend is unix-only");
}
