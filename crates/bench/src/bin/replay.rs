//! Trace replayer — re-checks the ACTA safe-state and atomicity
//! predicates over the committed trace corpus, so a regression that
//! silently changes protocol behaviour (or a bug in the checkers
//! themselves) fails CI even when the figure pipeline still renders.
//!
//! Two corpora are replayed:
//!
//! 1. `results/figures/traces.jsonl` — the eight committed figure
//!    panels. Each panel's `ProtocolEvent` stream is re-validated
//!    against event-level renditions of the paper's log rules: forces
//!    precede externalisation, presumptions excuse exactly the forces
//!    the paper says they excuse, and the coordinator only forgets
//!    (GCs) after it is safe to do so. A set of mutation controls then
//!    proves the predicates have teeth: each seeded corruption must be
//!    flagged.
//! 2. The Theorem 1 counterexample traces — a crash sweep over the
//!    U2PC/PrC coordinator regenerates histories with atomicity
//!    violations; `check_atomicity` + `check_all_safe_states` must
//!    flag them, and the same sweep under PrAny must stay clean.
//!
//! ```sh
//! cargo run --release -p acp-bench --bin replay
//! ```

use acp_acta::check_atomicity;
use acp_acta::safe_state::check_all_safe_states;
use acp_bench::{row, sep};
use acp_core::harness::{run_scenario, Scenario};
use acp_obs::parse_flat_json;
use acp_sim::{FailureSchedule, SimTime};
use acp_types::{CoordinatorKind, ProtocolKind, SelectionPolicy, SiteId, TxnId};
use std::collections::BTreeMap;
use std::path::Path;
use std::process::exit;

/// One flat-JSON trace event, kept as the parsed key/value map plus
/// accessors for the fields the predicates consult.
#[derive(Clone)]
struct Ev(BTreeMap<String, acp_obs::JsonValue>);

impl Ev {
    fn str(&self, key: &str) -> &str {
        self.0.get(key).and_then(|v| v.as_str()).unwrap_or("")
    }
    fn num(&self, key: &str) -> u64 {
        self.0.get(key).and_then(|v| v.as_u64()).unwrap_or(u64::MAX)
    }
    fn ty(&self) -> &str {
        self.str("type")
    }
    fn at_us(&self) -> u64 {
        self.num("at_us")
    }
    fn site(&self) -> u64 {
        self.num("site")
    }
    fn txn(&self) -> u64 {
        self.num("txn")
    }
}

struct Panel {
    slug: String,
    events: Vec<Ev>,
}

fn load_panels(path: &Path) -> Vec<Panel> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let mut panels: Vec<Panel> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let map = parse_flat_json(line)
            .unwrap_or_else(|| panic!("{}:{}: unparseable line", path.display(), i + 1));
        if map.get("meta").and_then(|v| v.as_str()) == Some("panel") {
            let slug = map
                .get("slug")
                .and_then(|v| v.as_str())
                .expect("panel meta has slug")
                .to_string();
            panels.push(Panel { slug, events: Vec::new() });
        } else {
            panels
                .last_mut()
                .expect("event line before any panel meta")
                .events
                .push(Ev(map));
        }
    }
    panels
}

/// Event-level safe-state predicates over one panel. Returns human
/// readable violation strings; empty means the panel replays clean.
///
/// The checks are trace-shaped renditions of the ACTA predicates the
/// simulator-side checkers (`acp-acta`) evaluate over histories:
/// write-ahead forcing, presumption-consistent decision logging, and
/// forget-only-after-safe garbage collection (Definition 2).
fn check_panel(events: &[Ev]) -> Vec<String> {
    let mut v = Vec::new();

    // 1. Per-site clocks are monotone in trace order.
    let mut clocks: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        let c = clocks.entry(e.site()).or_insert(0);
        if e.at_us() < *c {
            v.push(format!(
                "site {} clock regressed: {} -> {}",
                e.site(),
                *c,
                e.at_us()
            ));
        }
        *c = (*c).max(e.at_us());
    }

    // 2. Exactly one decision per transaction, reached by the
    //    coordinator (site 0 in every committed panel).
    let mut decisions: BTreeMap<u64, (usize, String)> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.ty() == "decision_reached" {
            if let Some((_, prev)) = decisions.get(&e.txn()) {
                v.push(format!(
                    "txn {} decided twice ({} then {})",
                    e.txn(),
                    prev,
                    e.str("outcome")
                ));
            }
            decisions.insert(e.txn(), (i, e.str("outcome").to_string()));
        }
    }
    if decisions.is_empty() {
        v.push("panel has no decision_reached event".into());
    }

    // 3. Log rule: a Yes vote is externalised only after the prepared
    //    record is forced at that participant (every protocol forces
    //    the prepared record — presumptions only relax decision
    //    records).
    for (i, e) in events.iter().enumerate() {
        if e.ty() == "vote_cast" && e.str("vote") == "yes" {
            let forced = events[..i].iter().any(|p| {
                p.ty() == "force_write"
                    && p.site() == e.site()
                    && p.txn() == e.txn()
                    && p.str("record") == "prepared"
            });
            if !forced {
                v.push(format!(
                    "site {} voted yes on txn {} without a forced prepared record",
                    e.site(),
                    e.txn()
                ));
            }
        }
    }

    // 4. A commit decision requires a yes vote from every participant
    //    that was sent a prepare, cast before the decision.
    for (&txn, &(di, ref outcome)) in &decisions {
        if outcome != "commit" {
            continue;
        }
        let invited: Vec<u64> = events[..di]
            .iter()
            .filter(|p| p.ty() == "msg_send" && p.str("kind") == "prepare" && p.txn() == txn)
            .map(|p| p.num("to"))
            .collect();
        for p in invited {
            let voted = events[..di].iter().any(|e| {
                e.ty() == "vote_cast" && e.site() == p && e.txn() == txn && e.str("vote") == "yes"
            });
            if !voted {
                v.push(format!(
                    "txn {txn} committed without a yes vote from site {p}"
                ));
            }
        }
    }

    // 5. Presumption rule at the coordinator: a commit decision is
    //    always forced before the decision is externalised; an abort
    //    decision is forced only when nothing presumes it (PrN).
    for (&txn, &(di, ref outcome)) in &decisions {
        let proto = events[di].str("proto").to_string();
        let needs_force = outcome == "commit" || proto == "PrN";
        if !needs_force {
            continue;
        }
        let first_send = events[di..]
            .iter()
            .position(|e| e.ty() == "msg_send" && e.str("kind") == "decision" && e.txn() == txn)
            .map(|p| di + p)
            .unwrap_or(events.len());
        let forced = events[di..first_send].iter().any(|e| {
            e.ty() == "force_write" && e.site() == 0 && e.txn() == txn && e.str("record") == *outcome
        });
        if !forced {
            v.push(format!(
                "txn {txn} {outcome} decision ({proto}) externalised before the decision record was forced"
            ));
        }
    }

    // 6. Acks follow forces: a participant acks the decision only
    //    after forcing its own decision record (participants whose
    //    presumption matches the outcome write it non-forced and stay
    //    silent).
    for (i, e) in events.iter().enumerate() {
        if e.ty() == "msg_send" && e.str("kind") == "ack" {
            let forced = events[..i].iter().any(|p| {
                p.ty() == "force_write"
                    && p.site() == e.site()
                    && p.txn() == e.txn()
                    && p.str("record").starts_with("part-")
            });
            if !forced {
                v.push(format!(
                    "site {} acked txn {} without forcing its decision record",
                    e.site(),
                    e.txn()
                ));
            }
        }
    }

    // 7. Safe forgetting (Definition 2, trace shape): the coordinator
    //    GCs only after the decision is reached and the end record is
    //    written, and the advertised decision age matches the clocks.
    for (i, e) in events.iter().enumerate() {
        if e.ty() != "log_gc" {
            continue;
        }
        let Some((_, &(di, _))) = decisions.iter().next() else {
            continue;
        };
        let decided_at = events[di].at_us();
        if i < di {
            v.push("coordinator GCed its protocol table before deciding".into());
        }
        let ended = events[..i]
            .iter()
            .any(|p| p.site() == 0 && p.str("record") == "end");
        if !ended {
            v.push("coordinator GCed before writing its end record".into());
        }
        let age = e.num("since_decision_us");
        if age != e.at_us().saturating_sub(decided_at) {
            v.push(format!(
                "log_gc since_decision_us={age} disagrees with clocks ({} - {decided_at})",
                e.at_us()
            ));
        }
    }

    v
}

/// Seeded corruptions: each must be caught by `check_panel`, proving
/// the predicates can actually fail. Returns (name, mutated events).
fn mutations(clean: &[Ev]) -> Vec<(&'static str, Vec<Ev>)> {
    let mut out = Vec::new();

    // a. Drop the forced prepared record behind the first yes vote.
    let mut m = clean.to_vec();
    if let Some(i) = m
        .iter()
        .position(|e| e.ty() == "force_write" && e.str("record") == "prepared")
    {
        m.remove(i);
        out.push(("unforced yes vote", m));
    }

    // b. Regress the last event's clock to zero.
    let mut m = clean.to_vec();
    if let Some(e) = m.last_mut() {
        e.0.insert("at_us".into(), acp_obs::JsonValue::Num(0));
        out.push(("clock regression", m));
    }

    // c. Duplicate the decision with the opposite outcome.
    let mut m = clean.to_vec();
    if let Some(i) = m.iter().position(|e| e.ty() == "decision_reached") {
        let mut dup = m[i].clone();
        let flipped = if dup.str("outcome") == "commit" { "abort" } else { "commit" };
        dup.0.insert("outcome".into(), acp_obs::JsonValue::Str(flipped.into()));
        m.insert(i + 1, dup);
        out.push(("contradictory second decision", m));
    }

    // d. Strip the coordinator's forced decision record (write-ahead
    //    violation for a commit decision).
    let mut m = clean.to_vec();
    if let Some(i) = m.iter().position(|e| {
        e.ty() == "force_write" && e.site() == 0 && e.str("record") == "commit"
    }) {
        m.remove(i);
        out.push(("commit externalised without force", m));
    }

    out
}

/// Theorem 1 slice: regenerate counterexample traces by sweeping a
/// participant crash through the U2PC/PrC decision window and confirm
/// the ACTA predicates flag them — and that PrAny survives the exact
/// same schedule untouched. Returns (violating runs, flagged by acta,
/// safe-state violations, total runs).
fn theorem1_sweep(kind: CoordinatorKind) -> (u32, u32, u32, u32) {
    const POP: [ProtocolKind; 2] = [ProtocolKind::PrA, ProtocolKind::PrC];
    let (mut violating, mut flagged, mut unsafe_states, mut runs) = (0, 0, 0, 0);
    for crash_us in (1_100..2_400).step_by(100) {
        for victim in [SiteId::new(1), SiteId::new(2)] {
            for abort in [false, true] {
                runs += 1;
                let mut s = Scenario::new(kind, &POP);
                s.add_txn(TxnId::new(1), SimTime::from_millis(1));
                if abort {
                    s.txns[0].abort_at = Some(SimTime::from_micros(1_250));
                }
                s.failures = FailureSchedule::single(
                    victim,
                    SimTime::from_micros(crash_us),
                    SimTime::from_millis(400),
                );
                let out = run_scenario(&s);
                let atomicity = check_atomicity(&out.history);
                let safe = check_all_safe_states(&out.history, SiteId::new(0));
                if !atomicity.is_empty() {
                    violating += 1;
                    // Cross-predicate re-check: an incompatible
                    // presumption breaks atomicity *by* answering the
                    // post-forget inquiry wrongly, so every
                    // counterexample trace must also violate the
                    // Definition 2 safe-state predicate.
                    if !safe.is_empty() {
                        flagged += 1;
                    }
                }
                unsafe_states += u32::from(!safe.is_empty());
            }
        }
    }
    (violating, flagged, unsafe_states, runs)
}

fn main() {
    let mut failures = 0u32;
    let traces = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/figures/traces.jsonl");
    let panels = load_panels(&traces);

    println!("Trace replay — ACTA predicate re-check over the committed corpus\n");
    let widths = [22, 8, 12];
    println!(
        "{}",
        row(&["panel".into(), "events".into(), "violations".into()], &widths)
    );
    println!("{}", sep(&widths));

    for p in &panels {
        let v = check_panel(&p.events);
        println!(
            "{}",
            row(
                &[p.slug.clone(), p.events.len().to_string(), v.len().to_string()],
                &widths
            )
        );
        for detail in &v {
            println!("    !! {detail}");
        }
        failures += v.len() as u32;
    }
    if panels.len() != 8 {
        println!("!! expected 8 committed panels, found {}", panels.len());
        failures += 1;
    }

    // Mutation controls over the first panel: every seeded corruption
    // must be flagged, or the predicates are vacuous.
    println!("\nMutation controls (each must be flagged):\n");
    let clean = &panels.first().expect("at least one panel").events;
    for (name, mutated) in mutations(clean) {
        let caught = !check_panel(&mutated).is_empty();
        println!("  {:36} {}", name, if caught { "flagged" } else { "MISSED" });
        if !caught {
            failures += 1;
        }
    }

    // Theorem 1 counterexample traces: the incompatible-presumption
    // coordinator must produce flagged histories, PrAny must not.
    println!("\nTheorem 1 counterexample replay (13-point crash sweep x 2 victims x 2 outcomes):\n");
    let (v_bad, flagged, unsafe_bad, runs) =
        theorem1_sweep(CoordinatorKind::U2pc(ProtocolKind::PrC));
    println!(
        "  U2PC/PrC : {v_bad}/{runs} violating runs, {flagged} also safe-state-flagged, {unsafe_bad} safe-state violations"
    );
    let (v_ok, _, unsafe_ok, runs_ok) =
        theorem1_sweep(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict));
    println!(
        "  PrAny    : {v_ok}/{runs_ok} violating runs, {unsafe_ok} safe-state violations"
    );
    if v_bad == 0 || flagged != v_bad {
        println!("!! U2PC/PrC sweep must regenerate flagged counterexample traces");
        failures += 1;
    }
    if v_ok != 0 || unsafe_ok != 0 {
        println!("!! PrAny must replay clean over the same crash schedule");
        failures += 1;
    }

    if failures > 0 {
        println!("\nreplay FAILED: {failures} check(s)");
        exit(1);
    }
    println!("\nreplay OK: {} panels, 4 mutation controls, {runs} + {runs_ok} theorem-1 runs", panels.len());
}
