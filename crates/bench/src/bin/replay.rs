//! Trace replayer — re-checks the ACTA safe-state and atomicity
//! predicates over the committed trace corpus, so a regression that
//! silently changes protocol behaviour (or a bug in the checkers
//! themselves) fails CI even when the figure pipeline still renders.
//!
//! Two corpora are replayed:
//!
//! 1. `results/figures/traces.jsonl` — the eight committed figure
//!    panels plus the E17 overload panel. Each figure panel's
//!    `ProtocolEvent` stream is re-validated
//!    against event-level renditions of the paper's log rules: forces
//!    precede externalisation, presumptions excuse exactly the forces
//!    the paper says they excuse, and the coordinator only forgets
//!    (GCs) after it is safe to do so. The multi-transaction overload
//!    panel routes to its own checker (admission sheds are free,
//!    loud, and fed back to the retry policy). A set of mutation
//!    controls then proves the predicates have teeth: each seeded
//!    corruption must be flagged.
//! 2. The Theorem 1 counterexample traces — a crash sweep over the
//!    U2PC/PrC coordinator regenerates histories with atomicity
//!    violations; `check_atomicity` + `check_all_safe_states` must
//!    flag them, and the same sweep under PrAny must stay clean.
//!
//! ```sh
//! cargo run --release -p acp-bench --bin replay
//! ```

use acp_acta::check_atomicity;
use acp_acta::safe_state::check_all_safe_states;
use acp_bench::figures::OVERLOAD_SLUG;
use acp_bench::trace_check::{
    check_overload_panel, check_panel, load_panels, mutations, overload_mutations,
};
use acp_bench::{row, sep};
use acp_core::harness::{run_scenario, Scenario};
use acp_sim::{FailureSchedule, SimTime};
use acp_types::{CoordinatorKind, ProtocolKind, SelectionPolicy, SiteId, TxnId};
use std::path::Path;
use std::process::exit;

/// Theorem 1 slice: regenerate counterexample traces by sweeping a
/// participant crash through the U2PC/PrC decision window and confirm
/// the ACTA predicates flag them — and that PrAny survives the exact
/// same schedule untouched. Returns (violating runs, flagged by acta,
/// safe-state violations, total runs).
fn theorem1_sweep(kind: CoordinatorKind) -> (u32, u32, u32, u32) {
    const POP: [ProtocolKind; 2] = [ProtocolKind::PrA, ProtocolKind::PrC];
    let (mut violating, mut flagged, mut unsafe_states, mut runs) = (0, 0, 0, 0);
    for crash_us in (1_100..2_400).step_by(100) {
        for victim in [SiteId::new(1), SiteId::new(2)] {
            for abort in [false, true] {
                runs += 1;
                let mut s = Scenario::new(kind, &POP);
                s.add_txn(TxnId::new(1), SimTime::from_millis(1));
                if abort {
                    s.txns[0].abort_at = Some(SimTime::from_micros(1_250));
                }
                s.failures = FailureSchedule::single(
                    victim,
                    SimTime::from_micros(crash_us),
                    SimTime::from_millis(400),
                );
                let out = run_scenario(&s);
                let atomicity = check_atomicity(&out.history);
                let safe = check_all_safe_states(&out.history, SiteId::new(0));
                if !atomicity.is_empty() {
                    violating += 1;
                    // Cross-predicate re-check: an incompatible
                    // presumption breaks atomicity *by* answering the
                    // post-forget inquiry wrongly, so every
                    // counterexample trace must also violate the
                    // Definition 2 safe-state predicate.
                    if !safe.is_empty() {
                        flagged += 1;
                    }
                }
                unsafe_states += u32::from(!safe.is_empty());
            }
        }
    }
    (violating, flagged, unsafe_states, runs)
}

fn main() {
    let mut failures = 0u32;
    let traces = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/figures/traces.jsonl");
    let panels = load_panels(&traces);

    println!("Trace replay — ACTA predicate re-check over the committed corpus\n");
    let widths = [22, 8, 12];
    println!(
        "{}",
        row(&["panel".into(), "events".into(), "violations".into()], &widths)
    );
    println!("{}", sep(&widths));

    for p in &panels {
        let v = if p.slug == OVERLOAD_SLUG {
            check_overload_panel(&p.events)
        } else {
            check_panel(&p.events)
        };
        println!(
            "{}",
            row(
                &[p.slug.clone(), p.events.len().to_string(), v.len().to_string()],
                &widths
            )
        );
        for detail in &v {
            println!("    !! {detail}");
        }
        failures += v.len() as u32;
    }
    if panels.len() != 9 {
        println!("!! expected 9 committed panels, found {}", panels.len());
        failures += 1;
    }

    // Mutation controls: every seeded corruption of the first figure
    // panel must be flagged, and silently dropping the overload
    // panel's shed must be flagged too — or the predicates are
    // vacuous.
    println!("\nMutation controls (each must be flagged):\n");
    let clean = &panels.first().expect("at least one panel").events;
    let mut controls = 0u32;
    for (name, mutated) in mutations(clean) {
        controls += 1;
        let caught = !check_panel(&mutated).is_empty();
        println!("  {:36} {}", name, if caught { "flagged" } else { "MISSED" });
        if !caught {
            failures += 1;
        }
    }
    if let Some(overload) = panels.iter().find(|p| p.slug == OVERLOAD_SLUG) {
        for (name, mutated) in overload_mutations(&overload.events) {
            controls += 1;
            let caught = !check_overload_panel(&mutated).is_empty();
            println!("  {:36} {}", name, if caught { "flagged" } else { "MISSED" });
            if !caught {
                failures += 1;
            }
        }
    } else {
        println!("  !! no {OVERLOAD_SLUG} panel to mutate");
        failures += 1;
    }

    // Theorem 1 counterexample traces: the incompatible-presumption
    // coordinator must produce flagged histories, PrAny must not.
    println!("\nTheorem 1 counterexample replay (13-point crash sweep x 2 victims x 2 outcomes):\n");
    let (v_bad, flagged, unsafe_bad, runs) =
        theorem1_sweep(CoordinatorKind::U2pc(ProtocolKind::PrC));
    println!(
        "  U2PC/PrC : {v_bad}/{runs} violating runs, {flagged} also safe-state-flagged, {unsafe_bad} safe-state violations"
    );
    let (v_ok, _, unsafe_ok, runs_ok) =
        theorem1_sweep(CoordinatorKind::PrAny(SelectionPolicy::PaperStrict));
    println!(
        "  PrAny    : {v_ok}/{runs_ok} violating runs, {unsafe_ok} safe-state violations"
    );
    if v_bad == 0 || flagged != v_bad {
        println!("!! U2PC/PrC sweep must regenerate flagged counterexample traces");
        failures += 1;
    }
    if v_ok != 0 || unsafe_ok != 0 {
        println!("!! PrAny must replay clean over the same crash schedule");
        failures += 1;
    }

    if failures > 0 {
        println!("\nreplay FAILED: {failures} check(s)");
        exit(1);
    }
    println!(
        "\nreplay OK: {} panels, {controls} mutation controls, {runs} + {runs_ok} theorem-1 runs",
        panels.len()
    );
}
