//! E7 — Theorem 3: large randomized correctness campaign for PrAny.
//!
//! ```sh
//! cargo run --release -p acp-bench --bin exp_theorem3 [seeds]
//! ```

use acp_acta::safe_state::check_all_safe_states;
use acp_acta::{check_atomicity, check_operational};
use acp_bench::{default_threads, parallel_map, row, sep};
use acp_core::harness::{run_scenario_with_sink, Scenario};
use acp_obs::{CountingSink, MetricsRegistry, TraceSink};
use acp_sim::{NetworkConfig, SimTime};
use acp_types::{CoordinatorKind, Outcome, SelectionPolicy, SiteId};
use acp_workload::{FailurePlan, PopulationMix, TxnMix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

struct CampaignStats {
    runs: u64,
    txns: u64,
    commits: u64,
    aborts: u64,
    crashes: u64,
    atomicity_violations: u64,
    operational_violations: u64,
    safe_state_violations: u64,
}

/// Run the whole campaign. Each seed is a fully independent simulation
/// (its RNG is derived from the seed alone), so seeds fan across the
/// thread pool and the summed statistics are identical to a serial run —
/// as are the cost metrics, whose atomic additions commute.
fn campaign(
    seeds: u64,
    policy: SelectionPolicy,
    loss: f64,
    crash_rate: f64,
    registry: &Arc<MetricsRegistry>,
) -> CampaignStats {
    let sink: Arc<dyn TraceSink> = Arc::new(CountingSink::new(Arc::clone(registry)));
    let per_seed = parallel_map((0..seeds).collect(), default_threads(), |seed| {
        run_seed(seed, policy, loss, crash_rate, Arc::clone(&sink))
    });
    let mut stats = CampaignStats {
        runs: 0,
        txns: 0,
        commits: 0,
        aborts: 0,
        crashes: 0,
        atomicity_violations: 0,
        operational_violations: 0,
        safe_state_violations: 0,
    };
    for s in per_seed {
        stats.runs += s.runs;
        stats.txns += s.txns;
        stats.commits += s.commits;
        stats.aborts += s.aborts;
        stats.crashes += s.crashes;
        stats.atomicity_violations += s.atomicity_violations;
        stats.operational_violations += s.operational_violations;
        stats.safe_state_violations += s.safe_state_violations;
    }
    stats
}

fn run_seed(
    seed: u64,
    policy: SelectionPolicy,
    loss: f64,
    crash_rate: f64,
    sink: Arc<dyn TraceSink>,
) -> CampaignStats {
    let mut stats = CampaignStats {
        runs: 0,
        txns: 0,
        commits: 0,
        aborts: 0,
        crashes: 0,
        atomicity_violations: 0,
        operational_violations: 0,
        safe_state_violations: 0,
    };
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_sites = 3 + (seed as usize % 3);
        let protocols = PopulationMix::uniform().sample_n(&mut rng, n_sites);
        let mut s = Scenario::new(CoordinatorKind::PrAny(policy), &protocols);
        s.seed = seed;
        s.network = NetworkConfig::lossy(loss);
        let mix = TxnMix {
            count: 40,
            min_participants: 2,
            max_participants: n_sites.min(4),
            abort_probability: 0.15,
            read_only_probability: 0.10,
            inter_start: SimTime::from_millis(4),
        };
        let plans = mix.generate(&mut rng, &s.participant_sites());
        let horizon = plans.last().expect("plans").start_at + SimTime::from_millis(300);
        for p in &plans {
            let spec = s.add_txn(p.txn, p.start_at);
            spec.participants = p.participants.clone();
            spec.votes = p.votes.clone();
        }
        let all: Vec<SiteId> = std::iter::once(SiteId::new(0))
            .chain(s.participant_sites())
            .collect();
        s.failures = FailurePlan {
            crashes_per_second: crash_rate,
            max_outage: SimTime::from_millis(60),
        }
        .schedule(&mut rng, &all, horizon);

        let out = run_scenario_with_sink(&s, sink);
        stats.runs += 1;
        stats.txns += plans.len() as u64;
        stats.commits += out
            .decided
            .values()
            .filter(|o| **o == Outcome::Commit)
            .count() as u64;
        stats.aborts += out
            .decided
            .values()
            .filter(|o| **o == Outcome::Abort)
            .count() as u64;
        stats.crashes += s.failures.outages.len() as u64;
        stats.atomicity_violations += check_atomicity(&out.history).len() as u64;
        stats.operational_violations +=
            check_operational(&out.history, &out.final_state).len() as u64;
        stats.safe_state_violations +=
            check_all_safe_states(&out.history, SiteId::new(0)).len() as u64;
    }
    stats
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50);
    println!(
        "E7 / Theorem 3 — randomized campaigns, {seeds} seeds each ({} threads)\n",
        default_threads()
    );
    let widths = [12, 8, 8, 22, 10, 10, 12, 12, 10];
    println!(
        "{}",
        row(
            &[
                "policy".into(),
                "loss".into(),
                "crash/s".into(),
                "txns (commit/abort)".into(),
                "crashes".into(),
                "atomic".into(),
                "operational".into(),
                "safe-state".into(),
                "verdict".into(),
            ],
            &widths
        )
    );
    println!("{}", sep(&widths));
    let mut metrics_doc = format!(
        "{{\n  \"experiment\": \"E7 / Theorem 3 — randomized PrAny campaigns, {seeds} seeds per config\",\n  \"configs\": ["
    );
    for (i, (policy, loss, rate)) in [
        (SelectionPolicy::PaperStrict, 0.0, 0.0),
        (SelectionPolicy::PaperStrict, 0.05, 0.0),
        (SelectionPolicy::PaperStrict, 0.0, 12.0),
        (SelectionPolicy::PaperStrict, 0.03, 8.0),
        (SelectionPolicy::Optimized, 0.03, 8.0),
    ]
    .into_iter()
    .enumerate()
    {
        let registry = Arc::new(MetricsRegistry::new());
        let s = campaign(seeds, policy, loss, rate, &registry);
        let _ = write!(
            metrics_doc,
            "{}\n    {{\n      \"policy\": \"{policy}\",\n      \"loss\": {loss},\n      \"crashes_per_second\": {rate},\n      \"txns\": {},\n      \"protocols\": {}\n    }}",
            if i == 0 { "" } else { "," },
            s.txns,
            registry.protocols_json(3)
        );
        // A campaign that ran nothing proves nothing: never report it
        // as CLEAN.
        let clean = s.txns > 0
            && s.atomicity_violations == 0
            && s.operational_violations == 0
            && s.safe_state_violations == 0;
        println!(
            "{}",
            row(
                &[
                    policy.to_string(),
                    format!("{loss:.2}"),
                    format!("{rate:.0}"),
                    format!("{} ({}/{})", s.txns, s.commits, s.aborts),
                    s.crashes.to_string(),
                    s.atomicity_violations.to_string(),
                    s.operational_violations.to_string(),
                    s.safe_state_violations.to_string(),
                    if clean {
                        "CLEAN"
                    } else if s.txns == 0 {
                        "NO DATA"
                    } else {
                        "VIOLATED"
                    }
                    .to_string(),
                ],
                &widths
            )
        );
    }

    metrics_doc.push_str("\n  ]\n}\n");
    let results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(results.join("metrics_e7.json"), &metrics_doc).expect("write metrics_e7.json");
    eprintln!("wrote per-protocol cost metrics to results/metrics_e7.json");
}
