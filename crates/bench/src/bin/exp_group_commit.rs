//! E12 — group-commit batching for forced writes.
//!
//! Two faces:
//!
//! 1. **Deterministic sim accounting** (always runs, output committed
//!    to `results/exp_group_commit.txt`): n concurrent lock-step
//!    transactions under a narrow batch window coalesce exactly one
//!    protocol force slot per batch, so the measured physical-force
//!    count must equal [`acp_core::cost::predict_batched`]'s model
//!    *exactly* — slot by slot, with batch size = n.
//! 2. **Threaded `FileLog` campaign** (skipped when
//!    `ACP_GROUP_COMMIT_SMOKE=1`): worker threads share one
//!    [`SharedGroupLog`] over a file-backed log; the leader/follower
//!    handshake amortizes real fsyncs. Results go to
//!    `BENCH_group_commit.json` (forces/txn and commits/sec per
//!    concurrency × batch window, against the unbatched direct path).
//!
//! ```sh
//! cargo run --release -p acp-bench --bin exp_group_commit
//! ```

use acp_bench::{row, sep};
use acp_core::cost::{predict_batched, Population};
use acp_core::harness::{run_scenario, Scenario};
use acp_sim::SimTime;
use acp_types::{
    CoordinatorKind, LogPayload, Outcome, ProtocolKind, SelectionPolicy, TxnId,
};
use acp_wal::{FileLog, SharedGroupLog};
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// Transactions per worker thread in the threaded campaign.
const TXNS_PER_THREAD: u64 = 200;

/// Concurrency sweep for the threaded campaign.
const THREADS: [u64; 5] = [1, 2, 4, 8, 16];

/// Batch windows (µs) for the threaded campaign. Zero still batches
/// whatever arrives while a leader's fsync is in flight.
const WINDOWS_US: [u64; 2] = [0, 200];

fn population(protos: &[ProtocolKind]) -> Population {
    let mut p = Population::new(0, 0, 0);
    for proto in protos {
        match proto {
            ProtocolKind::PrN => p.prn += 1,
            ProtocolKind::PrA => p.pra += 1,
            ProtocolKind::PrC => p.prc += 1,
        }
    }
    p
}

/// Sim batch window (µs). The network's FIFO guarantee skews
/// same-instant deliveries apart by 1µs each, so one protocol force
/// slot spreads over at most n-1 µs; 20µs spans that skew for n ≤ 16
/// while staying far below the 200µs between consecutive slots, so
/// windows coalesce exactly one slot each.
const SIM_WINDOW_US: u64 = 20;

/// Run `n` identical same-instant transactions under the sim batch
/// window and compare the measured batch accounting with the model.
fn sim_cell(kind: CoordinatorKind, protos: &[ProtocolKind], n: u64) -> (u64, u64, u64, u64, bool) {
    let mut scenario = Scenario::new(kind, protos);
    // Fixed-latency network: identical per-message delays keep the n
    // transactions in lock-step, so each protocol force slot spans only
    // the FIFO delivery skew and the window coalesces exactly per slot.
    scenario.network = acp_sim::NetworkConfig::reliable(SimTime::from_micros(200));
    scenario.batch_window = Some(SIM_WINDOW_US);
    for t in 1..=n {
        scenario.add_txn(TxnId::new(t), SimTime::from_millis(1));
    }
    let out = run_scenario(&scenario);
    for t in 1..=n {
        assert_eq!(
            out.decided.get(&TxnId::new(t)),
            Some(&Outcome::Commit),
            "{kind} txn {t} must commit"
        );
    }
    let predicted = predict_batched(kind, Outcome::Commit, population(protos), n, n);
    let measured_physical = out.group_commit.batches;
    let measured_logical = out.group_commit.batched_appends;
    let exact = measured_physical == predicted.physical_forces
        && measured_logical == predicted.logical_forces;
    (
        measured_physical,
        predicted.physical_forces,
        measured_logical,
        predicted.logical_forces,
        exact,
    )
}

fn sim_table() -> (String, u64) {
    let mut doc = String::new();
    let _ = writeln!(
        doc,
        "E12 — group-commit batching: sim accounting vs. analytic model\n\
         n same-instant transactions, fixed 200us links, batch window 20us\n\
         (spans the FIFO delivery skew within one force slot; never bridges slots)\n\
         physical = batch forces performed, logical = forced appends absorbed\n"
    );
    let widths = [14, 12, 4, 18, 18, 14, 7];
    let _ = writeln!(
        doc,
        "{}",
        row(
            &[
                "coordinator".into(),
                "population".into(),
                "n".into(),
                "physical (model)".into(),
                "logical (model)".into(),
                "amortization".into(),
                "model".into(),
            ],
            &widths
        )
    );
    let _ = writeln!(doc, "{}", sep(&widths));

    let cells: [(CoordinatorKind, &[ProtocolKind], &str); 3] = [
        (
            CoordinatorKind::Single(ProtocolKind::PrA),
            &[ProtocolKind::PrA, ProtocolKind::PrA],
            "PrA x2",
        ),
        (
            CoordinatorKind::Single(ProtocolKind::PrC),
            &[ProtocolKind::PrC, ProtocolKind::PrC],
            "PrC x2",
        ),
        (
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
            "PrA+PrC",
        ),
    ];

    let mut mismatches = 0;
    for (kind, protos, pop_label) in cells {
        for n in [1u64, 2, 4, 8, 16] {
            let (physical, model_physical, logical, model_logical, exact) =
                sim_cell(kind, protos, n);
            if !exact {
                mismatches += 1;
            }
            let amort = if physical == 0 {
                "-".to_string()
            } else {
                format!("{:.3}x", logical as f64 / physical as f64)
            };
            let _ = writeln!(
                doc,
                "{}",
                row(
                    &[
                        kind.to_string(),
                        pop_label.into(),
                        n.to_string(),
                        format!("{physical} ({model_physical})"),
                        format!("{logical} ({model_logical})"),
                        amort,
                        if exact { "exact" } else { "MISMATCH" }.to_string(),
                    ],
                    &widths
                )
            );
        }
    }
    let _ = writeln!(
        doc,
        "\noverall: {}",
        if mismatches == 0 {
            "ALL CELLS EXACT".to_string()
        } else {
            format!("{mismatches} CELLS MISMATCHED")
        }
    );
    (doc, mismatches)
}

/// One threaded cell: `threads` workers, each forcing
/// [`TXNS_PER_THREAD`] records through the given path.
struct Cell {
    mode: &'static str,
    threads: u64,
    window_us: u64,
    txns: u64,
    physical_syncs: u64,
    forces_per_txn_x1000: u64,
    commits_per_sec: u64,
    max_occupancy: u64,
    elapsed_ms: u64,
}

fn threaded_cell(dir: &Path, threads: u64, window_us: u64, batched: bool) -> Cell {
    let path = dir.join(format!(
        "gc-{}-{threads}-{window_us}.wal",
        if batched { "b" } else { "d" }
    ));
    let log = SharedGroupLog::new(
        FileLog::create(&path).expect("wal"),
        Duration::from_micros(window_us),
    );
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..threads {
            let log = log.clone();
            s.spawn(move || {
                for i in 0..TXNS_PER_THREAD {
                    let payload = LogPayload::End {
                        txn: TxnId::new(w * TXNS_PER_THREAD + i + 1),
                    };
                    if batched {
                        log.append_forced_batched(payload).expect("append");
                    } else {
                        log.append_forced_direct(payload).expect("append");
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let txns = threads * TXNS_PER_THREAD;
    let stats = log.wal_stats();
    let group = log.group_stats();
    // Physical syncs: the direct path forces per append; the batched
    // path flushes once per batch.
    let physical = if batched { stats.flushes } else { stats.forces };
    Cell {
        mode: if batched { "batched" } else { "direct" },
        threads,
        window_us,
        txns,
        physical_syncs: physical,
        forces_per_txn_x1000: physical * 1000 / txns,
        commits_per_sec: (txns as u128 * 1_000_000 / elapsed.as_micros().max(1)) as u64,
        max_occupancy: group.max_occupancy,
        elapsed_ms: elapsed.as_millis() as u64,
    }
}

fn threaded_campaign() -> (Vec<Cell>, String) {
    let dir = acp_wal::tempdir::TempDir::new("group-commit-bench").expect("tempdir");
    let mut cells = Vec::new();
    for &threads in &THREADS {
        cells.push(threaded_cell(dir.path(), threads, 0, false));
        for &window_us in &WINDOWS_US {
            cells.push(threaded_cell(dir.path(), threads, window_us, true));
        }
    }

    // Acceptance: ≥3× fewer fsyncs per transaction at concurrency ≥ 8
    // on the batched path (either window) than the direct path's 1.0.
    let best_at_8 = cells
        .iter()
        .filter(|c| c.mode == "batched" && c.threads >= 8)
        .map(|c| c.forces_per_txn_x1000)
        .min()
        .unwrap_or(1000);
    let reduction_x1000 = 1000 * 1000 / best_at_8.max(1);
    let pass = reduction_x1000 >= 3000;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"group_commit\",");
    let _ = writeln!(
        json,
        "  \"backend\": \"FileLog behind SharedGroupLog (threaded leader/follower fsync coalescing)\","
    );
    let _ = writeln!(json, "  \"txns_per_thread\": {TXNS_PER_THREAD},");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"threads\": {}, \"window_us\": {}, \"txns\": {}, \
             \"physical_syncs\": {}, \"forces_per_txn_x1000\": {}, \"commits_per_sec\": {}, \
             \"max_occupancy\": {}, \"elapsed_ms\": {}}}{}",
            c.mode,
            c.threads,
            c.window_us,
            c.txns,
            c.physical_syncs,
            c.forces_per_txn_x1000,
            c.commits_per_sec,
            c.max_occupancy,
            c.elapsed_ms,
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"acceptance\": {{");
    let _ = writeln!(
        json,
        "    \"criterion\": \"fsyncs/txn reduced >= 3x at concurrency >= 8\","
    );
    let _ = writeln!(
        json,
        "    \"best_forces_per_txn_x1000_at_8_plus\": {best_at_8},"
    );
    let _ = writeln!(json, "    \"reduction_x1000\": {reduction_x1000},");
    let _ = writeln!(json, "    \"pass\": {pass}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    (cells, json)
}

fn main() {
    let (doc, mismatches) = sim_table();
    print!("{doc}");

    let results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(results.join("exp_group_commit.txt"), &doc)
        .expect("write exp_group_commit.txt");
    eprintln!("wrote results/exp_group_commit.txt");

    if std::env::var_os("ACP_GROUP_COMMIT_SMOKE").is_some() {
        eprintln!("smoke mode: skipping the threaded FileLog campaign");
        if mismatches > 0 {
            std::process::exit(1);
        }
        return;
    }

    println!("\nthreaded FileLog campaign ({TXNS_PER_THREAD} txns/thread):\n");
    let widths = [8, 8, 10, 16, 14, 14, 12];
    println!(
        "{}",
        row(
            &[
                "mode".into(),
                "threads".into(),
                "window".into(),
                "fsyncs/txn".into(),
                "commits/sec".into(),
                "max batch".into(),
                "elapsed".into(),
            ],
            &widths
        )
    );
    println!("{}", sep(&widths));
    let (cells, json) = threaded_campaign();
    for c in &cells {
        println!(
            "{}",
            row(
                &[
                    c.mode.into(),
                    c.threads.to_string(),
                    format!("{}us", c.window_us),
                    format!("{:.3}", c.forces_per_txn_x1000 as f64 / 1000.0),
                    c.commits_per_sec.to_string(),
                    c.max_occupancy.to_string(),
                    format!("{}ms", c.elapsed_ms),
                ],
                &widths
            )
        );
    }
    let bench_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_group_commit.json");
    std::fs::write(&bench_path, &json).expect("write BENCH_group_commit.json");
    eprintln!("wrote BENCH_group_commit.json");
    let pass = json.contains("\"pass\": true");
    println!(
        "\nacceptance (>=3x fsync/txn reduction at concurrency >= 8): {}",
        if pass { "PASS" } else { "FAIL" }
    );
    if mismatches > 0 || !pass {
        std::process::exit(1);
    }
}
