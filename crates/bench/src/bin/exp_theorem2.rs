//! E6 — Theorem 2: protocol-table and log growth of C2PC versus PrAny
//! as the committed workload grows.
//!
//! ```sh
//! cargo run --release -p acp-bench --bin exp_theorem2
//! ```

use acp_bench::{row, sep};
use acp_core::harness::{run_scenario, Scenario};
use acp_sim::SimTime;
use acp_types::{CoordinatorKind, ProtocolKind, SelectionPolicy, TxnId};

const POP: [ProtocolKind; 2] = [ProtocolKind::PrA, ProtocolKind::PrC];

fn measure(kind: CoordinatorKind, n: usize) -> (usize, usize, u64) {
    let mut s = Scenario::new(kind, &POP);
    for i in 0..n {
        s.add_txn(
            TxnId::new(i as u64 + 1),
            SimTime::from_millis(1 + 5 * i as u64),
        );
    }
    let out = run_scenario(&s);
    (
        out.coordinator_table_size,
        out.coordinator_log_retained,
        out.coordinator_log_retained_bytes,
    )
}

fn main() {
    println!(
        "E6 / Theorem 2 — state retained after N committed transactions (PrA+PrC population)\n"
    );
    let widths = [14, 8, 16, 16, 16];
    println!(
        "{}",
        row(
            &[
                "coordinator".into(),
                "N".into(),
                "table entries".into(),
                "log records".into(),
                "log bytes".into(),
            ],
            &widths
        )
    );
    println!("{}", sep(&widths));
    for kind in [
        CoordinatorKind::C2pc(ProtocolKind::PrN),
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
    ] {
        for n in [10, 20, 40, 80, 160] {
            let (table, records, bytes) = measure(kind, n);
            println!(
                "{}",
                row(
                    &[
                        kind.to_string(),
                        n.to_string(),
                        table.to_string(),
                        records.to_string(),
                        bytes.to_string(),
                    ],
                    &widths
                )
            );
        }
    }
    println!(
        "\nC2PC retains every committed transaction forever (the PrC participant never \
         acknowledges commits); PrAny's retention is bounded by the in-flight window."
    );
}
