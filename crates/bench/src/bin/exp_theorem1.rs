//! E5 — Theorem 1: atomicity-violation counts for U2PC coordinators
//! over a PrA + PrC population, versus PrAny, under (a) a deterministic
//! crash-point sweep and (b) the exhaustive bounded model checker.
//!
//! ```sh
//! cargo run --release -p acp-bench --bin exp_theorem1
//! ```

use acp_acta::check_atomicity;
use acp_bench::{row, sep};
use acp_check::{check, CheckConfig};
use acp_core::harness::{run_scenario, Scenario};
use acp_sim::{FailureSchedule, SimTime};
use acp_types::{CoordinatorKind, ProtocolKind, SelectionPolicy, SiteId, TxnId};

const POP: [ProtocolKind; 2] = [ProtocolKind::PrA, ProtocolKind::PrC];

/// Sweep a single participant crash through the decision window and
/// count runs with atomicity violations.
fn sweep(kind: CoordinatorKind) -> (u32, u32) {
    let mut violations = 0;
    let mut runs = 0;
    for crash_us in (1_100..2_400).step_by(50) {
        for victim in [SiteId::new(1), SiteId::new(2)] {
            for abort in [false, true] {
                runs += 1;
                let mut s = Scenario::new(kind, &POP);
                s.add_txn(TxnId::new(1), SimTime::from_millis(1));
                if abort {
                    s.txns[0].abort_at = Some(SimTime::from_micros(1_250));
                }
                s.failures = FailureSchedule::single(
                    victim,
                    SimTime::from_micros(crash_us),
                    SimTime::from_millis(400),
                );
                let out = run_scenario(&s);
                if !check_atomicity(&out.history).is_empty() {
                    violations += 1;
                }
            }
        }
    }
    (violations, runs)
}

fn main() {
    let kinds = [
        CoordinatorKind::U2pc(ProtocolKind::PrN),
        CoordinatorKind::U2pc(ProtocolKind::PrA),
        CoordinatorKind::U2pc(ProtocolKind::PrC),
        CoordinatorKind::C2pc(ProtocolKind::PrN),
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
    ];

    println!("E5 / Theorem 1 — atomicity of integrated coordinators over a PrA+PrC population\n");
    let widths = [12, 22, 26, 22];
    println!(
        "{}",
        row(
            &[
                "coordinator".into(),
                "sweep violations/runs".into(),
                "checker counterexamples".into(),
                "checker states".into(),
            ],
            &widths
        )
    );
    println!("{}", sep(&widths));

    for kind in kinds {
        let (v, runs) = sweep(kind);
        let report = check(&CheckConfig::new(kind, &POP));
        println!(
            "{}",
            row(
                &[
                    kind.to_string(),
                    format!("{v}/{runs}"),
                    format!(
                        "{}{}",
                        report.counterexamples.len(),
                        if report.truncated { " (truncated)" } else { "" }
                    ),
                    report.states_explored.to_string(),
                ],
                &widths
            )
        );
    }

    println!("\nFirst mechanical counterexample for U2PC/PrC (Theorem 1 Part III):\n");
    let report = check(&CheckConfig::new(
        CoordinatorKind::U2pc(ProtocolKind::PrC),
        &POP,
    ));
    if let Some(cx) = report.counterexamples.first() {
        println!("{cx}");
    }
}
