//! E5 — Theorem 1: atomicity-violation counts for U2PC coordinators
//! over a PrA + PrC population, versus PrAny, under (a) a deterministic
//! crash-point sweep and (b) the exhaustive bounded model checker.
//!
//! ```sh
//! cargo run --release -p acp-bench --bin exp_theorem1
//! ```

use acp_acta::check_atomicity;
use acp_bench::{default_threads, parallel_map, row, sep};
use acp_check::{check, CheckConfig};
use acp_core::harness::{run_scenario_with_sink, Scenario};
use acp_obs::{CountingSink, MetricsRegistry, TraceSink};
use acp_sim::{FailureSchedule, SimTime};
use acp_types::{CoordinatorKind, ProtocolKind, SelectionPolicy, SiteId, TxnId};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

const POP: [ProtocolKind; 2] = [ProtocolKind::PrA, ProtocolKind::PrC];

/// Sweep a single participant crash through the decision window and
/// count runs with atomicity violations. The 104 sweep points are
/// independent simulator runs, fanned across the thread pool; the
/// violation count is order-insensitive, so output is unchanged — and
/// so are the aggregate cost metrics, because the registry's atomic
/// additions commute across any scheduling.
fn sweep(kind: CoordinatorKind, registry: &Arc<MetricsRegistry>) -> (u32, u32) {
    let mut points = Vec::new();
    for crash_us in (1_100..2_400).step_by(50) {
        for victim in [SiteId::new(1), SiteId::new(2)] {
            for abort in [false, true] {
                points.push((crash_us, victim, abort));
            }
        }
    }
    let runs = points.len() as u32;
    let sink: Arc<dyn TraceSink> = Arc::new(CountingSink::new(Arc::clone(registry)));
    let violations = parallel_map(points, default_threads(), |(crash_us, victim, abort)| {
        let mut s = Scenario::new(kind, &POP);
        s.add_txn(TxnId::new(1), SimTime::from_millis(1));
        if abort {
            s.txns[0].abort_at = Some(SimTime::from_micros(1_250));
        }
        s.failures = FailureSchedule::single(
            victim,
            SimTime::from_micros(crash_us),
            SimTime::from_millis(400),
        );
        let out = run_scenario_with_sink(&s, Arc::clone(&sink));
        u32::from(!check_atomicity(&out.history).is_empty())
    })
    .into_iter()
    .sum();
    (violations, runs)
}

fn main() {
    let timing = std::env::args().any(|a| a == "--timing");
    let kinds = [
        CoordinatorKind::U2pc(ProtocolKind::PrN),
        CoordinatorKind::U2pc(ProtocolKind::PrA),
        CoordinatorKind::U2pc(ProtocolKind::PrC),
        CoordinatorKind::C2pc(ProtocolKind::PrN),
        CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
    ];

    println!("E5 / Theorem 1 — atomicity of integrated coordinators over a PrA+PrC population");
    println!("(checker threads: {}; identical output at any count)\n", default_threads());
    let widths = [12, 22, 26, 22];
    println!(
        "{}",
        row(
            &[
                "coordinator".into(),
                "sweep violations/runs".into(),
                "checker counterexamples".into(),
                "checker states".into(),
            ],
            &widths
        )
    );
    println!("{}", sep(&widths));

    let mut metrics_doc = String::from(
        "{\n  \"experiment\": \"E5 / Theorem 1 — 104-point crash sweep per coordinator, PrA+PrC population\",\n  \"configs\": [",
    );
    for (i, kind) in kinds.into_iter().enumerate() {
        let registry = Arc::new(MetricsRegistry::new());
        let (v, runs) = sweep(kind, &registry);
        let _ = write!(
            metrics_doc,
            "{}\n    {{\n      \"coordinator\": \"{kind}\",\n      \"sweep_violations\": {v},\n      \"sweep_runs\": {runs},\n      \"protocols\": {}\n    }}",
            if i == 0 { "" } else { "," },
            registry.protocols_json(3)
        );
        let report = check(&CheckConfig::new(kind, &POP));
        println!(
            "{}",
            row(
                &[
                    kind.to_string(),
                    format!("{v}/{runs}"),
                    format!(
                        "{}{}",
                        report.counterexamples.len(),
                        if report.truncated { " (truncated)" } else { "" }
                    ),
                    report.states_explored.to_string(),
                ],
                &widths
            )
        );
    }

    metrics_doc.push_str("\n  ]\n}\n");
    let results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(results.join("metrics_e5.json"), &metrics_doc).expect("write metrics_e5.json");
    eprintln!("wrote per-protocol cost metrics to results/metrics_e5.json");

    println!("\nFirst mechanical counterexample for U2PC/PrC (Theorem 1 Part III):\n");
    let report = check(&CheckConfig::new(
        CoordinatorKind::U2pc(ProtocolKind::PrC),
        &POP,
    ));
    if let Some(cx) = report.counterexamples.first() {
        println!("{cx}");
    }

    // Optional: wall-clock comparison of the serial and parallel
    // checker on a deeper bound (the EXPERIMENTS.md E5 timing column).
    if timing {
        println!("\nChecker wall-clock, crashes=2 bound (serial vs parallel):\n");
        let twidths = [12, 14, 14, 14, 10];
        println!(
            "{}",
            row(
                &[
                    "coordinator".into(),
                    "states".into(),
                    "1 thread".into(),
                    format!("{} threads", default_threads()),
                    "speedup".into(),
                ],
                &twidths
            )
        );
        println!("{}", sep(&twidths));
        for kind in kinds {
            let mut config = CheckConfig::new(kind, &POP);
            config.crashes = 2;
            let t0 = std::time::Instant::now();
            let serial = check(&config.clone().with_threads(1));
            let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t1 = std::time::Instant::now();
            let parallel = check(&config);
            let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;
            assert_eq!(serial.to_string(), parallel.to_string(), "determinism");
            println!(
                "{}",
                row(
                    &[
                        kind.to_string(),
                        serial.states_explored.to_string(),
                        format!("{serial_ms:.0} ms"),
                        format!("{parallel_ms:.0} ms"),
                        format!("{:.2}x", serial_ms / parallel_ms),
                    ],
                    &twidths
                )
            );
        }
    }
}
