//! E17 — open-loop extreme traffic: driving the reactor through its
//! overload knee, with and without admission control.
//!
//! The generator is *open-loop*: seeded Poisson arrivals fire at their
//! scheduled instants whether or not earlier transactions finished, so
//! offered load is an independent variable — exactly the regime where
//! a no-wait 2PL system misbehaves. Past the knee every extra admitted
//! transaction mostly collides (zipfian keys concentrate the traffic
//! on a few hot rows), aborts, and retries, so *goodput falls as
//! offered load rises*. Admission control bounds the in-flight
//! population and sheds the excess at the door before it costs any
//! forces, messages or lock footprint; the generator's retry policy
//! observes each shed (the reply channel drops — a fast failure, never
//! a stall) and resubmits after a backoff.
//!
//! Attempt lifecycle, mirroring the lock discipline:
//!
//! * an **aborted** attempt had its locks released by the abort
//!   decision, so the retry is a *fresh transaction id* that re-stages
//!   its writes — and the retry policy may abandon it;
//! * a **shed** attempt never entered the protocol, but its staged
//!   writes still hold locks at the participants, so the retry
//!   resubmits the *same id* without re-staging and never gives up —
//!   abandoning a shed transaction would leak its locks forever.
//!
//! The wasted-work bill for aborted attempts is an analytic
//! protocol-shape estimate (`participants - 1` prepared forces, `2 x
//! participants` messages for the prepare/vote rounds), not a measured
//! quantity: the reactor's counters aggregate per protocol, not per
//! attempt.
//!
//! The generator also *observes* the backpressure: with the door
//! bounded it parks fresh arrivals in a client-side backlog while its
//! outstanding window sits at the bound, deferring the write staging
//! itself. The door alone cannot protect the lock table — a commit is
//! shed only after its writes are staged and locked — so door sheds
//! and generator backpressure are two halves of one controller.
//!
//! Goodput is measured over a fixed horizon — the arrival span plus a
//! one-second drain allowance — counting only the commits that
//! complete inside it. Measuring to full resolution instead would
//! reward fail-fast collapse: a run that abandons a third of its
//! transactions "finishes" sooner and shows an inflated rate.
//!
//! The sweep crosses offered load x zipfian skew x partition count x
//! admission {off, bounded}, recording goodput, abort rate, lifecycle
//! ledgers and client/commit latency tails into `BENCH_workload.json`.
//!
//! Acceptance (exits non-zero when violated): at the highest offered
//! load with the hottest skew, goodput with admission control must be
//! at least goodput without it, and the admission run must actually
//! shed (otherwise the cell never left the easy regime and proves
//! nothing).
//!
//! `ACP_WORKLOAD_SMOKE=1` runs just that extreme cell pair (used by
//! `scripts/verify.sh`); the full campaign is machine-timed and
//! regenerated manually like the other BENCH_*.json files.
//!
//! ```sh
//! cargo run --release -p acp-bench --bin exp_workload
//! ```

use acp_bench::{row, sep};
use acp_net::{AdmissionConfig, NetDelays, ReactorCluster, ReactorConfig};
use acp_obs::LatencyHistogram;
use acp_types::{CoordinatorKind, Outcome, ProtocolKind, SelectionPolicy, TxnId};
use acp_workload::{
    AttemptOutcome, LifecycleLedger, OpenLoopArrivals, OpenLoopPlan, PlannedTxn, RetryPolicy,
    TxnShape,
};
use crossbeam::channel::{Receiver, TryRecvError};
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// Offered-load sweep, arrivals per second.
const RATES: [f64; 4] = [500.0, 2000.0, 8000.0, 24_000.0];

/// Zipfian skew sweep (0 = uniform; 1.2 puts ~18% of draws on the
/// hottest of a million keys).
const SKEWS: [f64; 3] = [0.0, 0.99, 1.2];

/// Partition-count sweep (protocol mix cycles PrN/PrA/PrC).
const PARTITIONS: [usize; 2] = [3, 6];

/// In-flight bound for the admission-on cells: near the knee, far
/// below the uncontrolled in-flight population at the top rates.
const ADMISSION_BOUND: u64 = 32;

/// Keys in the zipfian population.
const KEY_POPULATION: u64 = 1_000_000;

fn kind() -> CoordinatorKind {
    CoordinatorKind::PrAny(SelectionPolicy::PaperStrict)
}

fn protos(partitions: usize) -> Vec<ProtocolKind> {
    const MIX: [ProtocolKind; 3] = [ProtocolKind::PrN, ProtocolKind::PrA, ProtocolKind::PrC];
    (0..partitions).map(|i| MIX[i % MIX.len()]).collect()
}

/// Long protocol timeouts: the campaign measures load behaviour, not
/// timeout handling, so no protocol timer may fire during a run.
fn bench_delays() -> NetDelays {
    NetDelays {
        vote_timeout: Duration::from_secs(30),
        ack_resend: Duration::from_secs(10),
        inquiry_retry: Duration::from_secs(10),
        apply_retry: Duration::from_secs(10),
        ..NetDelays::default()
    }
}

/// Retry policy for aborted attempts: backed-off and bounded — an
/// abort released its locks, so abandoning the transaction is safe.
fn abort_policy() -> RetryPolicy {
    RetryPolicy::CappedBackoff {
        base: Duration::from_millis(1),
        cap: Duration::from_millis(25),
        give_up_after: 12,
    }
}

/// Retry policy for shed attempts: same backoff arithmetic, but
/// effectively unbounded — a shed attempt's staged writes hold locks,
/// so the generator must resubmit until the door admits it.
fn shed_policy() -> RetryPolicy {
    RetryPolicy::CappedBackoff {
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
        give_up_after: u32::MAX,
    }
}

/// Transactions per cell: a fixed-duration arrival window at each
/// rate, clamped so cheap cells still measure something and expensive
/// cells stay within the measurement horizon's drain allowance.
fn count_for(rate: f64) -> usize {
    ((rate * 0.4) as usize).clamp(200, 600)
}

/// Drain allowance after the last scheduled arrival: goodput counts
/// the commits that complete inside `span + DRAIN` and divides by that
/// fixed horizon. Measuring to full resolution instead would reward
/// fail-fast collapse — a run that abandons a third of its
/// transactions "finishes" sooner and shows an inflated rate.
const DRAIN_US: u64 = 1_000_000;

/// One in-flight attempt awaiting its decision. `attempt` counts all
/// attempts (for the ledger's first-vs-retried split); `aborted`
/// counts only aborted attempts — the abort policy's give-up budget
/// must not be consumed by sheds, which cost the system nothing.
struct Pending {
    txn: TxnId,
    rx: Receiver<Outcome>,
    idx: usize,
    attempt: u32,
    aborted: u32,
}

/// A scheduled retry.
enum Due {
    /// Post-abort retry: fresh transaction id, writes re-staged.
    Fresh {
        idx: usize,
        attempt: u32,
        aborted: u32,
    },
    /// Post-shed resubmit: same id, writes already staged and locked.
    Resubmit {
        txn: TxnId,
        idx: usize,
        attempt: u32,
        aborted: u32,
    },
}

/// Stage a planned transaction's writes (keys round-robin over its
/// participants) and start the commit.
#[allow(clippy::too_many_arguments)]
fn submit(
    cluster: &mut ReactorCluster,
    t: &PlannedTxn,
    idx: usize,
    attempt: u32,
    aborted: u32,
    stage_writes: bool,
    txn: Option<TxnId>,
    pending: &mut Vec<Pending>,
) {
    let txn = txn.unwrap_or_else(|| cluster.next_txn());
    if stage_writes {
        for (i, key) in t.keys.iter().enumerate() {
            let site = t.participants[i % t.participants.len()];
            cluster.apply(site, txn, key.as_bytes(), b"v");
        }
    }
    let rx = cluster.commit_async(txn, &t.participants);
    pending.push(Pending {
        txn,
        rx,
        idx,
        attempt,
        aborted,
    });
}

/// One sweep cell's results.
struct Cell {
    admission: Option<u64>,
    rate: f64,
    skew: f64,
    partitions: usize,
    ledger: LifecycleLedger,
    unresolved: u64,
    admission_sheds: u64,
    max_inflight: usize,
    elapsed_ms: u64,
    /// Commits completed inside the fixed measurement horizon.
    committed_by_horizon: u64,
    /// The horizon itself: arrival span plus the drain allowance.
    horizon_ms: u64,
    /// `committed_by_horizon / horizon` — the fixed-window goodput.
    goodput_per_sec: f64,
    /// Client-observed arrival-to-commit latency (includes queueing,
    /// sheds and retries), microseconds.
    client: (u64, u64, u64),
    /// Reactor-side admission-to-delivery commit latency of admitted
    /// transactions, microseconds.
    commit: (u64, u64, u64),
}

/// Drive one cell: open-loop arrivals against a fresh cluster.
fn run_cell(rate: f64, skew: f64, partitions: usize, admission: Option<u64>, count: usize) -> Cell {
    let plan = OpenLoopPlan {
        arrivals: OpenLoopArrivals {
            rate_per_sec: rate,
            count,
            seed: 0xE17,
        },
        key_population: KEY_POPULATION,
        key_skew: skew,
        shape: TxnShape {
            min_partitions: 2.min(partitions),
            max_partitions: partitions,
            keys_per_partition: 1,
        },
    };

    let mix = protos(partitions);
    let mut config = ReactorConfig::new(kind(), &mix);
    config.cluster.delays = bench_delays();
    config.cluster.group_commit = true;
    config.admission = admission.map(AdmissionConfig::bounded);
    let mut cluster = ReactorCluster::spawn(&config);
    let sites = cluster.participants();
    let txns = plan.generate(&sites);
    let total = txns.len();
    let span_us = txns.last().map_or(0, |t| t.arrival_us);
    let horizon_us = span_us + DRAIN_US;
    let deadline = Duration::from_micros(span_us) + Duration::from_secs(60);

    let aborts = abort_policy();
    let sheds = shed_policy();
    // The generator's backpressure response: with the door bounded, it
    // parks fresh arrivals in a client-side backlog while its own
    // outstanding window sits at twice the bound. Deferring an arrival
    // defers its write *staging* — the lock footprint — which is the
    // part the door alone cannot protect (a commit is shed only after
    // its writes are already staged and locked). The door still sheds
    // whatever lands in the band between the bound and the window.
    let backlog_gate = admission.map(|b| b as usize);
    let client_lat = LatencyHistogram::new();
    let mut ledger = LifecycleLedger::new();
    let mut pending: Vec<Pending> = Vec::new();
    let mut retries: Vec<(u64, Due)> = Vec::new();
    let mut next_arrival = 0usize;
    let mut done = 0usize;
    let mut committed_by_horizon = 0u64;
    let start = Instant::now();

    loop {
        let now_us = start.elapsed().as_micros() as u64;

        // Open loop: arrivals fire on schedule — but a backpressured
        // generator parks them client-side instead of staging locks.
        while next_arrival < total
            && txns[next_arrival].arrival_us <= now_us
            && backlog_gate.map_or(true, |g| pending.len() < g)
        {
            ledger.offer();
            submit(
                &mut cluster,
                &txns[next_arrival],
                next_arrival,
                1,
                0,
                true,
                None,
                &mut pending,
            );
            next_arrival += 1;
        }

        // Due retries.
        let mut i = 0;
        while i < retries.len() {
            if retries[i].0 <= now_us {
                ledger.retry();
                match retries.swap_remove(i).1 {
                    Due::Fresh {
                        idx,
                        attempt,
                        aborted,
                    } => {
                        submit(
                            &mut cluster,
                            &txns[idx],
                            idx,
                            attempt,
                            aborted,
                            true,
                            None,
                            &mut pending,
                        );
                    }
                    Due::Resubmit {
                        txn,
                        idx,
                        attempt,
                        aborted,
                    } => {
                        submit(
                            &mut cluster,
                            &txns[idx],
                            idx,
                            attempt,
                            aborted,
                            false,
                            Some(txn),
                            &mut pending,
                        );
                    }
                }
            } else {
                i += 1;
            }
        }

        // Decisions and sheds.
        let mut j = 0;
        while j < pending.len() {
            match pending[j].rx.try_recv() {
                Ok(outcome) => {
                    let p = pending.swap_remove(j);
                    let t = &txns[p.idx];
                    match outcome {
                        Outcome::Commit => {
                            ledger.finish_attempt(p.attempt, AttemptOutcome::Committed, 0, 0);
                            client_lat.record(now_us.saturating_sub(t.arrival_us));
                            if now_us <= horizon_us {
                                committed_by_horizon += 1;
                            }
                            done += 1;
                        }
                        Outcome::Abort => {
                            let parts = t.participants.len() as u64;
                            ledger.finish_attempt(
                                p.attempt,
                                AttemptOutcome::Aborted,
                                parts.saturating_sub(1),
                                2 * parts,
                            );
                            match aborts.next_delay(p.aborted + 1, t.salt) {
                                Some(d) => retries.push((
                                    now_us + d.as_micros() as u64,
                                    Due::Fresh {
                                        idx: p.idx,
                                        attempt: p.attempt + 1,
                                        aborted: p.aborted + 1,
                                    },
                                )),
                                None => {
                                    ledger.give_up();
                                    done += 1;
                                }
                            }
                        }
                    }
                }
                Err(TryRecvError::Disconnected) => {
                    let p = pending.swap_remove(j);
                    ledger.finish_attempt(p.attempt, AttemptOutcome::Shed, 0, 0);
                    let d = sheds
                        .next_delay(p.attempt, txns[p.idx].salt)
                        .expect("shed policy never abandons");
                    retries.push((
                        now_us + d.as_micros() as u64,
                        Due::Resubmit {
                            txn: p.txn,
                            idx: p.idx,
                            attempt: p.attempt + 1,
                            aborted: p.aborted,
                        },
                    ));
                }
                Err(TryRecvError::Empty) => j += 1,
            }
        }

        if done == total || start.elapsed() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }

    let elapsed = start.elapsed();
    let report = cluster.shutdown();
    let client = client_lat.snapshot();
    let q = |s: &acp_obs::HistogramSnapshot| {
        (
            s.p50().unwrap_or(0),
            s.p99().unwrap_or(0),
            s.p999().unwrap_or(0),
        )
    };
    Cell {
        admission,
        rate,
        skew,
        partitions,
        ledger,
        unresolved: (total - done) as u64,
        admission_sheds: report.stats.admission_sheds,
        max_inflight: report.stats.max_inflight,
        elapsed_ms: elapsed.as_millis() as u64,
        committed_by_horizon,
        horizon_ms: horizon_us / 1000,
        goodput_per_sec: committed_by_horizon as f64 / (horizon_us as f64 / 1e6),
        client: q(&client),
        commit: q(&report.latency),
    }
}

fn print_cell(c: &Cell, widths: &[usize]) {
    println!(
        "{}",
        row(
            &[
                c.admission.map_or("off".into(), |b| format!("<= {b}")),
                format!("{:.0}", c.rate),
                format!("{:.2}", c.skew),
                c.partitions.to_string(),
                format!("{}/{}", c.ledger.committed(), c.ledger.offered),
                format!("{:.0}", c.goodput_per_sec),
                format!("{:.3}", c.ledger.abort_rate()),
                c.ledger.shed_attempts.to_string(),
                c.ledger.give_ups.to_string(),
                c.client.1.to_string(),
                format!("{}ms", c.elapsed_ms),
            ],
            widths
        )
    );
}

fn bench_json(cells: &[Cell], pass: bool, knee: &str) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"workload\",");
    let _ = writeln!(
        j,
        "  \"setup\": \"open-loop Poisson arrivals, zipfian keys over {KEY_POPULATION} rows, \
         PrAny(PaperStrict) over a PrN/PrA/PrC mix, group commit on, abort retries \
         capped-backoff x4, shed retries unbounded\","
    );
    let _ = writeln!(j, "  \"admission_bound\": {ADMISSION_BOUND},");
    let _ = writeln!(j, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let l = &c.ledger;
        let _ = writeln!(
            j,
            "    {{\"admission\": {}, \"offered_per_sec\": {:.0}, \"skew\": {:.2}, \
             \"partitions\": {}, \"offered\": {}, \"committed\": {}, \
             \"first_attempt_commits\": {}, \"retried_commits\": {}, \"give_ups\": {}, \
             \"unresolved\": {}, \"aborted_attempts\": {}, \"shed_attempts\": {}, \
             \"retries\": {}, \"abort_rate\": {:.4}, \"wasted_forces\": {}, \
             \"wasted_msgs\": {}, \"admission_sheds\": {}, \"max_inflight\": {}, \
             \"elapsed_ms\": {}, \"horizon_ms\": {}, \"committed_by_horizon\": {}, \
             \"goodput_per_sec\": {:.1}, \
             \"client_latency_us\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}}}, \
             \"commit_latency_us\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}}}}}{comma}",
            c.admission
                .map_or("null".to_string(), |b| b.to_string()),
            c.rate,
            c.skew,
            c.partitions,
            l.offered,
            l.committed(),
            l.first_attempt_commits,
            l.retried_commits,
            l.give_ups,
            c.unresolved,
            l.aborted_attempts,
            l.shed_attempts,
            l.retries,
            l.abort_rate(),
            l.wasted_forces,
            l.wasted_msgs,
            c.admission_sheds,
            c.max_inflight,
            c.elapsed_ms,
            c.horizon_ms,
            c.committed_by_horizon,
            c.goodput_per_sec,
            c.client.0,
            c.client.1,
            c.client.2,
            c.commit.0,
            c.commit.1,
            c.commit.2,
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"acceptance\": {{");
    let _ = writeln!(
        j,
        "    \"criterion\": \"at the highest offered load and hottest skew, goodput with \
         admission >= goodput without, and the admission cell actually sheds\","
    );
    let _ = writeln!(j, "    \"knee\": \"{knee}\",");
    let _ = writeln!(j, "    \"pass\": {pass}");
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");
    j
}

/// The acceptance comparison: the extreme cell pair (highest rate,
/// hottest skew, smallest partition set) with admission off vs on.
fn acceptance(cells: &[Cell]) -> (bool, f64, f64, u64) {
    let top_rate = cells.iter().map(|c| c.rate).fold(0.0, f64::max);
    let top_skew = cells.iter().map(|c| c.skew).fold(0.0, f64::max);
    let extreme = |adm: bool| {
        cells
            .iter()
            .filter(|c| {
                c.rate == top_rate && c.skew == top_skew && c.admission.is_some() == adm
            })
            .min_by_key(|c| c.partitions)
    };
    let (Some(off), Some(on)) = (extreme(false), extreme(true)) else {
        return (false, 0.0, 0.0, 0);
    };
    let pass = on.goodput_per_sec >= off.goodput_per_sec && on.admission_sheds > 0;
    (pass, off.goodput_per_sec, on.goodput_per_sec, on.admission_sheds)
}

fn main() {
    let smoke = std::env::var_os("ACP_WORKLOAD_SMOKE").is_some();

    println!("E17 — open-loop extreme traffic: the overload knee, admission off vs on");
    println!(
        "PrAny(PaperStrict), PrN/PrA/PrC mix, zipfian keys over {KEY_POPULATION} rows, \
         group commit on\n"
    );
    let widths = [8, 8, 6, 5, 12, 10, 7, 7, 8, 10, 9];
    println!(
        "{}",
        row(
            &[
                "adm".into(),
                "rate/s".into(),
                "skew".into(),
                "parts".into(),
                "committed".into(),
                "goodput/s".into(),
                "abrate".into(),
                "sheds".into(),
                "giveups".into(),
                "cli-p99".into(),
                "elapsed".into(),
            ],
            &widths
        )
    );
    println!("{}", sep(&widths));

    let mut cells: Vec<Cell> = Vec::new();
    if smoke {
        // Just the extreme pair, scaled down but still well past the
        // knee: the contrast the acceptance criterion needs.
        let (rate, skew, parts, count) = (20_000.0, 1.2, 3, 600);
        for admission in [None, Some(ADMISSION_BOUND)] {
            let c = run_cell(rate, skew, parts, admission, count);
            print_cell(&c, &widths);
            cells.push(c);
        }
    } else {
        for &partitions in &PARTITIONS {
            for &skew in &SKEWS {
                for &rate in &RATES {
                    for admission in [None, Some(ADMISSION_BOUND)] {
                        let c = run_cell(rate, skew, partitions, admission, count_for(rate));
                        print_cell(&c, &widths);
                        cells.push(c);
                    }
                }
            }
        }
    }

    let (pass, goodput_off, goodput_on, sheds) = acceptance(&cells);
    let knee = format!(
        "at the top cell goodput falls to {goodput_off:.0}/s uncontrolled vs {goodput_on:.0}/s \
         with the door bounded at {ADMISSION_BOUND} ({sheds} sheds)"
    );

    println!("\n{knee}");
    println!(
        "acceptance (goodput with admission >= without at the extreme cell, sheds > 0): {}",
        if pass { "PASS" } else { "FAIL" }
    );

    if smoke {
        eprintln!("smoke mode: skipping the full campaign and BENCH_workload.json");
        if !pass {
            std::process::exit(1);
        }
        return;
    }

    let json = bench_json(&cells, pass, &knee);
    let bench_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_workload.json");
    std::fs::write(&bench_path, &json).expect("write BENCH_workload.json");
    eprintln!("wrote BENCH_workload.json");

    if !pass {
        std::process::exit(1);
    }
}
