//! Trace-level ACTA predicate checking over JSON-lines event dumps.
//!
//! Two corpora share this machinery:
//!
//! * the committed figure panels (`results/figures/traces.jsonl`),
//!   replayed by the `replay` binary — [`load_panels`] / [`check_panel`]
//!   plus the [`mutations`] teeth-proving controls;
//! * merged multi-process socket traces, where every OS process of an
//!   `exp_socket` run appends its own JSON-lines file and the parent
//!   stitches them into one global history — [`load_merged`] /
//!   [`check_merged`].
//!
//! The panel checks assume one well-formed single-transaction stream
//! from one simulator run. The merged checks are deliberately weaker:
//! a `kill -9` can tear the tail off any file (the trace sink is
//! buffered, not forced), a recovering coordinator may re-log a
//! decision it already reached, and wall-clocks across processes share
//! only the parent-supplied epoch. So the merged predicates are either
//! order-independent (agreement between records) or confined to a
//! single site, whose events come from one file in emission order.

use acp_obs::{parse_flat_json, JsonValue};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One flat-JSON trace event: the parsed key/value map plus accessors
/// for the fields the predicates consult. Missing keys read as the
/// empty string / `u64::MAX`, so malformed events fail checks loudly
/// rather than silently passing.
#[derive(Clone)]
pub struct Ev(pub BTreeMap<String, JsonValue>);

impl Ev {
    /// String field, or `""` when absent or non-string.
    #[must_use]
    pub fn str(&self, key: &str) -> &str {
        self.0.get(key).and_then(|v| v.as_str()).unwrap_or("")
    }
    /// Numeric field, or `u64::MAX` when absent or non-numeric.
    #[must_use]
    pub fn num(&self, key: &str) -> u64 {
        self.0.get(key).and_then(|v| v.as_u64()).unwrap_or(u64::MAX)
    }
    /// The event's `type` tag.
    #[must_use]
    pub fn ty(&self) -> &str {
        self.str("type")
    }
    /// The event's microsecond timestamp.
    #[must_use]
    pub fn at_us(&self) -> u64 {
        self.num("at_us")
    }
    /// The emitting site.
    #[must_use]
    pub fn site(&self) -> u64 {
        self.num("site")
    }
    /// The transaction the event belongs to.
    #[must_use]
    pub fn txn(&self) -> u64 {
        self.num("txn")
    }
}

/// One committed figure panel: its slug and event stream.
pub struct Panel {
    /// The panel's identifier from its `meta` line.
    pub slug: String,
    /// The panel's events, in committed order.
    pub events: Vec<Ev>,
}

/// Parse the committed figure-trace corpus: `meta: panel` lines
/// delimit panels, every other line is an event of the latest panel.
///
/// # Panics
/// On unreadable files or unparseable lines — the committed corpus is
/// never torn, so damage here is a repo problem, not a runtime one.
#[must_use]
pub fn load_panels(path: &Path) -> Vec<Panel> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let mut panels: Vec<Panel> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let map = parse_flat_json(line)
            .unwrap_or_else(|| panic!("{}:{}: unparseable line", path.display(), i + 1));
        if map.get("meta").and_then(|v| v.as_str()) == Some("panel") {
            let slug = map
                .get("slug")
                .and_then(|v| v.as_str())
                .expect("panel meta has slug")
                .to_string();
            panels.push(Panel { slug, events: Vec::new() });
        } else {
            panels
                .last_mut()
                .expect("event line before any panel meta")
                .events
                .push(Ev(map));
        }
    }
    panels
}

/// Event-level safe-state predicates over one panel. Returns human
/// readable violation strings; empty means the panel replays clean.
///
/// The checks are trace-shaped renditions of the ACTA predicates the
/// simulator-side checkers (`acp-acta`) evaluate over histories:
/// write-ahead forcing, presumption-consistent decision logging, and
/// forget-only-after-safe garbage collection (Definition 2).
#[must_use]
pub fn check_panel(events: &[Ev]) -> Vec<String> {
    let mut v = Vec::new();

    // 1. Per-site clocks are monotone in trace order.
    let mut clocks: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        let c = clocks.entry(e.site()).or_insert(0);
        if e.at_us() < *c {
            v.push(format!(
                "site {} clock regressed: {} -> {}",
                e.site(),
                *c,
                e.at_us()
            ));
        }
        *c = (*c).max(e.at_us());
    }

    // 2. Exactly one decision per transaction, reached by the
    //    coordinator (site 0 in every committed panel).
    let mut decisions: BTreeMap<u64, (usize, String)> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.ty() == "decision_reached" {
            if let Some((_, prev)) = decisions.get(&e.txn()) {
                v.push(format!(
                    "txn {} decided twice ({} then {})",
                    e.txn(),
                    prev,
                    e.str("outcome")
                ));
            }
            decisions.insert(e.txn(), (i, e.str("outcome").to_string()));
        }
    }
    if decisions.is_empty() {
        v.push("panel has no decision_reached event".into());
    }

    // 3. Log rule: a Yes vote is externalised only after the prepared
    //    record is forced at that participant (every protocol forces
    //    the prepared record — presumptions only relax decision
    //    records).
    for (i, e) in events.iter().enumerate() {
        if e.ty() == "vote_cast" && e.str("vote") == "yes" {
            let forced = events[..i].iter().any(|p| {
                p.ty() == "force_write"
                    && p.site() == e.site()
                    && p.txn() == e.txn()
                    && p.str("record") == "prepared"
            });
            if !forced {
                v.push(format!(
                    "site {} voted yes on txn {} without a forced prepared record",
                    e.site(),
                    e.txn()
                ));
            }
        }
    }

    // 4. A commit decision requires a yes vote from every participant
    //    that was sent a prepare, cast before the decision.
    for (&txn, &(di, ref outcome)) in &decisions {
        if outcome != "commit" {
            continue;
        }
        let invited: Vec<u64> = events[..di]
            .iter()
            .filter(|p| p.ty() == "msg_send" && p.str("kind") == "prepare" && p.txn() == txn)
            .map(|p| p.num("to"))
            .collect();
        for p in invited {
            let voted = events[..di].iter().any(|e| {
                e.ty() == "vote_cast" && e.site() == p && e.txn() == txn && e.str("vote") == "yes"
            });
            if !voted {
                v.push(format!(
                    "txn {txn} committed without a yes vote from site {p}"
                ));
            }
        }
    }

    // 5. Presumption rule at the coordinator: a commit decision is
    //    always forced before the decision is externalised; an abort
    //    decision is forced only when nothing presumes it (PrN).
    for (&txn, &(di, ref outcome)) in &decisions {
        let proto = events[di].str("proto").to_string();
        let needs_force = outcome == "commit" || proto == "PrN";
        if !needs_force {
            continue;
        }
        let first_send = events[di..]
            .iter()
            .position(|e| e.ty() == "msg_send" && e.str("kind") == "decision" && e.txn() == txn)
            .map(|p| di + p)
            .unwrap_or(events.len());
        let forced = events[di..first_send].iter().any(|e| {
            e.ty() == "force_write" && e.site() == 0 && e.txn() == txn && e.str("record") == *outcome
        });
        if !forced {
            v.push(format!(
                "txn {txn} {outcome} decision ({proto}) externalised before the decision record was forced"
            ));
        }
    }

    // 6. Acks follow forces: a participant acks the decision only
    //    after forcing its own decision record (participants whose
    //    presumption matches the outcome write it non-forced and stay
    //    silent).
    for (i, e) in events.iter().enumerate() {
        if e.ty() == "msg_send" && e.str("kind") == "ack" {
            let forced = events[..i].iter().any(|p| {
                p.ty() == "force_write"
                    && p.site() == e.site()
                    && p.txn() == e.txn()
                    && p.str("record").starts_with("part-")
            });
            if !forced {
                v.push(format!(
                    "site {} acked txn {} without forcing its decision record",
                    e.site(),
                    e.txn()
                ));
            }
        }
    }

    // 7. Safe forgetting (Definition 2, trace shape): the coordinator
    //    GCs only after the decision is reached and the end record is
    //    written, and the advertised decision age matches the clocks.
    for (i, e) in events.iter().enumerate() {
        if e.ty() != "log_gc" {
            continue;
        }
        let Some((_, &(di, _))) = decisions.iter().next() else {
            continue;
        };
        let decided_at = events[di].at_us();
        if i < di {
            v.push("coordinator GCed its protocol table before deciding".into());
        }
        let ended = events[..i]
            .iter()
            .any(|p| p.site() == 0 && p.str("record") == "end");
        if !ended {
            v.push("coordinator GCed before writing its end record".into());
        }
        let age = e.num("since_decision_us");
        if age != e.at_us().saturating_sub(decided_at) {
            v.push(format!(
                "log_gc since_decision_us={age} disagrees with clocks ({} - {decided_at})",
                e.at_us()
            ));
        }
    }

    v
}

/// Safe-state predicates for the multi-transaction E17 overload panel.
///
/// [`check_panel`] assumes one transaction per stream (its GC-age
/// predicate keys every `log_gc` off the *first* decision), so the
/// overload panel gets its own checker. The shared invariants stay:
/// monotone per-site clocks, one decision per transaction, write-ahead
/// yes votes. On top, the overload mechanics themselves become
/// predicates: the panel must exhibit real contention (both outcomes
/// present), every shed must be a genuine refusal at the door (no
/// protocol work for that transaction before the shed, and an
/// in-flight census at or over the advertised bound), and no refusal
/// or abort may vanish silently — each must be followed by a
/// `workload-retry` schedule for the same transaction.
#[must_use]
pub fn check_overload_panel(events: &[Ev]) -> Vec<String> {
    let mut v = Vec::new();

    // 1. Per-site clocks are monotone in trace order.
    let mut clocks: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        let c = clocks.entry(e.site()).or_insert(0);
        if e.at_us() < *c {
            v.push(format!(
                "site {} clock regressed: {} -> {}",
                e.site(),
                *c,
                e.at_us()
            ));
        }
        *c = (*c).max(e.at_us());
    }

    // 2. Every transaction decides exactly once, and the panel shows
    //    genuine contention: at least one abort AND at least one
    //    commit.
    let mut decisions: BTreeMap<u64, (u64, String)> = BTreeMap::new();
    for e in events {
        if e.ty() == "decision_reached" {
            if let Some((_, prev)) = decisions.get(&e.txn()) {
                v.push(format!(
                    "txn {} decided twice ({} then {})",
                    e.txn(),
                    prev,
                    e.str("outcome")
                ));
            }
            decisions.insert(e.txn(), (e.at_us(), e.str("outcome").to_string()));
        }
    }
    let commits = decisions.values().filter(|(_, o)| o == "commit").count();
    let aborts = decisions.values().filter(|(_, o)| o == "abort").count();
    if commits == 0 || aborts == 0 {
        v.push(format!(
            "overload panel must show both outcomes (commits={commits} aborts={aborts})"
        ));
    }

    // 3. Sheds are genuine refusals at the door: at least one
    //    admission_shed; each carries an in-flight census at or over
    //    its bound, and its transaction has done no protocol work
    //    before the refusal (no forces, votes, messages — shedding is
    //    free by construction).
    let sheds: Vec<(usize, u64, u64)> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.ty() == "admission_shed")
        .map(|(i, e)| (i, e.txn(), e.at_us()))
        .collect();
    if sheds.is_empty() {
        v.push("overload panel has no admission_shed event".into());
    }
    for &(i, txn, _) in &sheds {
        let e = &events[i];
        if e.num("inflight") < e.num("limit") {
            v.push(format!(
                "txn {txn} shed while under the bound (inflight {} < limit {})",
                e.num("inflight"),
                e.num("limit")
            ));
        }
        let worked = events[..i]
            .iter()
            .any(|p| p.txn() == txn && p.ty() != "admission_shed" && p.ty() != "retry_scheduled");
        if worked {
            v.push(format!(
                "txn {txn} was shed after protocol work — a shed must cost nothing"
            ));
        }
    }

    // 4. No silent losses: every abort decision and every shed is
    //    followed (at or after its stamp) by a workload-retry schedule
    //    for that transaction — the generator always learns.
    let mut losses: Vec<(u64, u64, &str)> = decisions
        .iter()
        .filter(|(_, (_, o))| o == "abort")
        .map(|(&txn, &(at, _))| (txn, at, "abort"))
        .collect();
    losses.extend(sheds.iter().map(|&(_, txn, at)| (txn, at, "shed")));
    for (txn, at, what) in losses {
        let retried = events.iter().any(|e| {
            e.ty() == "retry_scheduled"
                && e.str("purpose") == "workload-retry"
                && e.txn() == txn
                && e.at_us() >= at
        });
        if !retried {
            v.push(format!(
                "txn {txn} {what} was never fed back to the workload retry policy"
            ));
        }
    }

    // 5. Log rule, unchanged under load: a yes vote only after that
    //    site's forced prepared record.
    for (i, e) in events.iter().enumerate() {
        if e.ty() == "vote_cast" && e.str("vote") == "yes" {
            let forced = events[..i].iter().any(|p| {
                p.ty() == "force_write"
                    && p.site() == e.site()
                    && p.txn() == e.txn()
                    && p.str("record") == "prepared"
            });
            if !forced {
                v.push(format!(
                    "site {} voted yes on txn {} without a forced prepared record",
                    e.site(),
                    e.txn()
                ));
            }
        }
    }

    v
}

/// Seeded corruption for the overload panel: silently dropping the
/// shed must be caught by [`check_overload_panel`] (predicate 3 —
/// refusals are never silent), proving the overload predicates have
/// teeth too. Returns (name, mutated events) pairs.
#[must_use]
pub fn overload_mutations(clean: &[Ev]) -> Vec<(&'static str, Vec<Ev>)> {
    let mut out = Vec::new();
    let mut m = clean.to_vec();
    if let Some(i) = m.iter().position(|e| e.ty() == "admission_shed") {
        m.remove(i);
        out.push(("silently dropped shed", m));
    }
    out
}

/// Seeded corruptions: each must be caught by [`check_panel`], proving
/// the predicates can actually fail. Returns (name, mutated events).
#[must_use]
pub fn mutations(clean: &[Ev]) -> Vec<(&'static str, Vec<Ev>)> {
    let mut out = Vec::new();

    // a. Drop the forced prepared record behind the first yes vote.
    let mut m = clean.to_vec();
    if let Some(i) = m
        .iter()
        .position(|e| e.ty() == "force_write" && e.str("record") == "prepared")
    {
        m.remove(i);
        out.push(("unforced yes vote", m));
    }

    // b. Regress the last event's clock to zero.
    let mut m = clean.to_vec();
    if let Some(e) = m.last_mut() {
        e.0.insert("at_us".into(), JsonValue::Num(0));
        out.push(("clock regression", m));
    }

    // c. Duplicate the decision with the opposite outcome.
    let mut m = clean.to_vec();
    if let Some(i) = m.iter().position(|e| e.ty() == "decision_reached") {
        let mut dup = m[i].clone();
        let flipped = if dup.str("outcome") == "commit" { "abort" } else { "commit" };
        dup.0.insert("outcome".into(), JsonValue::Str(flipped.into()));
        m.insert(i + 1, dup);
        out.push(("contradictory second decision", m));
    }

    // d. Strip the coordinator's forced decision record (write-ahead
    //    violation for a commit decision).
    let mut m = clean.to_vec();
    if let Some(i) = m.iter().position(|e| {
        e.ty() == "force_write" && e.site() == 0 && e.str("record") == "commit"
    }) {
        m.remove(i);
        out.push(("commit externalised without force", m));
    }

    out
}

/// Load and merge the per-process trace files of a socket run into one
/// globally ordered event stream.
///
/// Every process stamps events on the shared epoch axis its parent
/// supplied, so a stable sort by `at_us` yields a consistent global
/// order while preserving each file's emission order among equal
/// stamps. Unparseable lines are *skipped*, not fatal: a `kill -9`
/// legitimately tears the buffered tail off a victim's trace file, and
/// because the sink appends in emission order a torn line can only
/// lose a suffix — every surviving line still has its causal
/// predecessors from the same process. Returns the merged events and
/// the number of lines skipped.
#[must_use]
pub fn load_merged(paths: &[PathBuf]) -> (Vec<Ev>, usize) {
    let mut events = Vec::new();
    let mut skipped = 0usize;
    for path in paths {
        let Ok(text) = std::fs::read_to_string(path) else {
            skipped += 1;
            continue;
        };
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_flat_json(line) {
                Some(map) if map.contains_key("type") => events.push(Ev(map)),
                _ => skipped += 1,
            }
        }
    }
    events.sort_by_key(Ev::at_us);
    (events, skipped)
}

/// Cross-process ACTA predicates over a merged socket-run trace.
/// Returns human-readable violation strings; empty means the merged
/// history is globally consistent.
///
/// Weaker than [`check_panel`] by design: a recovering coordinator may
/// re-reach the decision it already logged (duplicates are fine,
/// contradictions are not), torn tails can hide any suffix of one
/// process's stream, and cross-process timestamps are only as aligned
/// as the shared epoch. So every predicate here is either an
/// order-free agreement check or confined to one site's own stream.
#[must_use]
pub fn check_merged(events: &[Ev]) -> Vec<String> {
    let mut v = Vec::new();

    // 1. Decisions never contradict: every decision_reached for a txn
    //    names the same outcome, across original and recovered
    //    coordinator incarnations.
    let mut decided: BTreeMap<u64, String> = BTreeMap::new();
    for e in events {
        if e.ty() != "decision_reached" {
            continue;
        }
        let outcome = e.str("outcome").to_string();
        match decided.get(&e.txn()) {
            Some(prev) if *prev != outcome => v.push(format!(
                "txn {} decided {} and then {}",
                e.txn(),
                prev,
                outcome
            )),
            _ => {
                decided.insert(e.txn(), outcome);
            }
        }
    }

    // 2. Participant enforcement agrees with the global decision: a
    //    part-commit / part-abort record (forced or presumed
    //    non-forced) must match the coordinator's outcome for that
    //    txn, and no site may write both for one txn. This is the
    //    atomicity predicate — the footnote-5 chain fails exactly
    //    here.
    let mut enforced: BTreeMap<(u64, u64), String> = BTreeMap::new();
    for e in events {
        if e.ty() != "force_write" && e.ty() != "non_forced_write" {
            continue;
        }
        let outcome = match e.str("record") {
            "part-commit" => "commit",
            "part-abort" => "abort",
            _ => continue,
        };
        let key = (e.site(), e.txn());
        match enforced.get(&key) {
            Some(prev) if prev != outcome => v.push(format!(
                "site {} enforced both {} and {} for txn {}",
                e.site(),
                prev,
                outcome,
                e.txn()
            )),
            _ => {
                enforced.insert(key, outcome.to_string());
            }
        }
    }
    for ((site, txn), outcome) in &enforced {
        if let Some(global) = decided.get(txn) {
            if global != outcome {
                v.push(format!(
                    "site {site} enforced {outcome} for txn {txn} but the global decision is {global}"
                ));
            }
        }
    }

    // 3. Same-site write-ahead rule: a yes vote only after that site's
    //    forced prepared record for the txn. Both events come from the
    //    same process file, so their relative order is trustworthy.
    for (i, e) in events.iter().enumerate() {
        if e.ty() == "vote_cast" && e.str("vote") == "yes" {
            let forced = events[..i].iter().any(|p| {
                p.ty() == "force_write"
                    && p.site() == e.site()
                    && p.txn() == e.txn()
                    && p.str("record") == "prepared"
            });
            if !forced {
                v.push(format!(
                    "site {} voted yes on txn {} without a forced prepared record",
                    e.site(),
                    e.txn()
                ));
            }
        }
    }

    // 4. Same-site ack rule: a participant acks the decision only
    //    after forcing its own decision record. One exemption: a site
    //    that ran recovery earlier in the merged order may ack without
    //    an in-trace force. The WAL fsync and the trace write are
    //    separate syscalls on separate files, so a kill -9 can land
    //    between them — the decision record survives in the WAL while
    //    its trace line is lost — and the recovered incarnation then
    //    re-acks straight from the durable record. A recovered site can
    //    only know the decision by having read that forced record, so
    //    the ack is still write-ahead-legal; the trace just cannot
    //    prove it. Sites that never recovered get no such excuse.
    for (i, e) in events.iter().enumerate() {
        if e.ty() == "msg_send" && e.str("kind") == "ack" {
            let forced = events[..i].iter().any(|p| {
                p.ty() == "force_write"
                    && p.site() == e.site()
                    && p.txn() == e.txn()
                    && p.str("record").starts_with("part-")
            });
            let recovered = events[..i]
                .iter()
                .any(|p| p.ty() == "recovery_step" && p.site() == e.site());
            if !forced && !recovered {
                v.push(format!(
                    "site {} acked txn {} without forcing its decision record",
                    e.site(),
                    e.txn()
                ));
            }
        }
    }

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pairs: &[(&str, JsonValue)]) -> Ev {
        Ev(pairs
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect())
    }

    fn n(x: u64) -> JsonValue {
        JsonValue::Num(x)
    }

    fn s(x: &str) -> JsonValue {
        JsonValue::Str(x.to_string())
    }

    /// A minimal clean merged history: force prepared, yes vote,
    /// decision, part force, ack.
    fn clean() -> Vec<Ev> {
        vec![
            ev(&[
                ("type", s("force_write")),
                ("at_us", n(10)),
                ("site", n(1)),
                ("txn", n(7)),
                ("record", s("prepared")),
            ]),
            ev(&[
                ("type", s("vote_cast")),
                ("at_us", n(20)),
                ("site", n(1)),
                ("txn", n(7)),
                ("vote", s("yes")),
            ]),
            ev(&[
                ("type", s("decision_reached")),
                ("at_us", n(30)),
                ("site", n(0)),
                ("txn", n(7)),
                ("outcome", s("commit")),
            ]),
            ev(&[
                ("type", s("force_write")),
                ("at_us", n(40)),
                ("site", n(1)),
                ("txn", n(7)),
                ("record", s("part-commit")),
            ]),
            ev(&[
                ("type", s("msg_send")),
                ("at_us", n(50)),
                ("site", n(1)),
                ("txn", n(7)),
                ("kind", s("ack")),
                ("to", n(0)),
            ]),
        ]
    }

    #[test]
    fn clean_merged_history_passes() {
        assert!(check_merged(&clean()).is_empty());
    }

    #[test]
    fn duplicate_agreeing_decision_is_fine_contradiction_is_not() {
        let mut h = clean();
        let mut dup = h[2].clone();
        dup.0.insert("at_us".into(), n(35));
        h.push(dup.clone());
        assert!(check_merged(&h).is_empty(), "recovery re-decision is legal");
        dup.0.insert("outcome".into(), s("abort"));
        h.push(dup);
        let v = check_merged(&h);
        assert!(
            v.iter().any(|m| m.contains("decided commit and then abort")),
            "{v:?}"
        );
    }

    #[test]
    fn wrong_enforcement_is_flagged() {
        let mut h = clean();
        h[3].0.insert("record".into(), s("part-abort"));
        let v = check_merged(&h);
        assert!(
            v.iter().any(|m| m.contains("global decision is commit")),
            "{v:?}"
        );
    }

    #[test]
    fn unforced_yes_vote_is_flagged() {
        let mut h = clean();
        h.remove(0);
        assert!(check_merged(&h)
            .iter()
            .any(|m| m.contains("without a forced prepared record")));
    }

    #[test]
    fn unforced_ack_is_flagged_unless_the_site_recovered() {
        let mut h = clean();
        h.remove(3); // drop the part-commit force: the ack is now naked
        assert!(
            check_merged(&h)
                .iter()
                .any(|m| m.contains("without forcing its decision record")),
            "a never-killed site has no excuse for an unforced ack"
        );
        // But if the site ran recovery first, the force line may be a
        // kill -9 casualty (WAL fsync survived, trace write did not):
        // the recovered incarnation's re-ack is legal.
        h.insert(
            3,
            ev(&[
                ("type", s("recovery_step")),
                ("at_us", n(45)),
                ("site", n(1)),
                ("detail", s("replay part-commit t7")),
            ]),
        );
        assert!(check_merged(&h).is_empty());
    }

    #[test]
    fn load_merged_skips_torn_tail_and_sorts() {
        let dir = std::env::temp_dir().join(format!("acp-trace-check-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        std::fs::write(
            &a,
            "{\"type\":\"vote_cast\",\"at_us\":20,\"site\":1,\"txn\":1,\"vote\":\"yes\"}\n{\"type\":\"msg_se",
        )
        .expect("write a");
        std::fs::write(
            &b,
            "{\"type\":\"force_write\",\"at_us\":10,\"site\":1,\"txn\":1,\"record\":\"prepared\"}\n",
        )
        .expect("write b");
        let (evs, skipped) = load_merged(&[a, b]);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(skipped, 1, "torn tail line skipped");
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].ty(), "force_write", "sorted by at_us across files");
        assert!(check_merged(&evs).is_empty());
    }
}
