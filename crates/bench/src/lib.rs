//! # acp-bench
//!
//! Experiment harness: one `exp_*` binary per experiment of the
//! reproduction plan (regenerating the paper's figures and theorems as
//! tables/traces on stdout) plus Criterion benchmark groups for the
//! performance-shaped claims. See DESIGN.md for the experiment index
//! and EXPERIMENTS.md for recorded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use acp_core::harness::{run_scenario, Scenario, ScenarioOutcome};
use acp_sim::SimTime;
use acp_types::{CoordinatorKind, Outcome, ProtocolKind, SiteId, TxnId};

/// Standard single-transaction scenario used across experiments:
/// all-yes voters, reliable 200us links.
#[must_use]
pub fn one_txn_scenario(kind: CoordinatorKind, protos: &[ProtocolKind], abort: bool) -> Scenario {
    let mut s = Scenario::new(kind, protos);
    s.add_txn(TxnId::new(1), SimTime::from_millis(1));
    if abort {
        s.txns[0].abort_at = Some(SimTime::from_micros(1_250));
    }
    s
}

/// Run the standard scenario and return its outcome.
#[must_use]
pub fn run_one(kind: CoordinatorKind, protos: &[ProtocolKind], abort: bool) -> ScenarioOutcome {
    run_scenario(&one_txn_scenario(kind, protos, abort))
}

/// Render a markdown-ish table row.
#[must_use]
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::from("|");
    for (c, w) in cells.iter().zip(widths) {
        out.push_str(&format!(" {c:<w$} |"));
    }
    out
}

/// Render a separator row.
#[must_use]
pub fn sep(widths: &[usize]) -> String {
    let mut out = String::from("|");
    for w in widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out
}

/// Pretty site label for experiment output.
#[must_use]
pub fn site_label(s: SiteId, protos: &[ProtocolKind]) -> String {
    if s.raw() == 0 {
        "coordinator".to_string()
    } else {
        format!("site {} ({})", s.raw(), protos[s.raw() as usize - 1])
    }
}

/// Format an outcome for tables.
#[must_use]
pub fn outcome_label(o: Outcome) -> &'static str {
    match o {
        Outcome::Commit => "commit",
        Outcome::Abort => "abort",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::SelectionPolicy;

    #[test]
    fn helpers_run() {
        let out = run_one(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
            false,
        );
        assert_eq!(out.decided[&TxnId::new(1)], Outcome::Commit);
        let r = row(&["a".into(), "bb".into()], &[3, 3]);
        assert_eq!(r, "| a   | bb  |");
        assert_eq!(sep(&[3, 3]), "|-----|-----|");
    }
}
