//! # acp-bench
//!
//! Experiment harness: one `exp_*` binary per experiment of the
//! reproduction plan (regenerating the paper's figures and theorems as
//! tables/traces on stdout) plus Criterion benchmark groups for the
//! performance-shaped claims. See DESIGN.md for the experiment index
//! and EXPERIMENTS.md for recorded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use acp_core::harness::{run_scenario, Scenario, ScenarioOutcome};
use acp_sim::SimTime;
use acp_types::{CoordinatorKind, Outcome, ProtocolKind, SiteId, TxnId};

pub mod figures;
pub mod trace_check;

/// Standard single-transaction scenario used across experiments:
/// all-yes voters, reliable 200us links.
#[must_use]
pub fn one_txn_scenario(kind: CoordinatorKind, protos: &[ProtocolKind], abort: bool) -> Scenario {
    let mut s = Scenario::new(kind, protos);
    s.add_txn(TxnId::new(1), SimTime::from_millis(1));
    if abort {
        s.txns[0].abort_at = Some(SimTime::from_micros(1_250));
    }
    s
}

/// Run the standard scenario and return its outcome.
#[must_use]
pub fn run_one(kind: CoordinatorKind, protos: &[ProtocolKind], abort: bool) -> ScenarioOutcome {
    run_scenario(&one_txn_scenario(kind, protos, abort))
}

/// Render a markdown-ish table row.
#[must_use]
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::from("|");
    for (c, w) in cells.iter().zip(widths) {
        out.push_str(&format!(" {c:<w$} |"));
    }
    out
}

/// Render a separator row.
#[must_use]
pub fn sep(widths: &[usize]) -> String {
    let mut out = String::from("|");
    for w in widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out
}

/// Pretty site label for experiment output.
#[must_use]
pub fn site_label(s: SiteId, protos: &[ProtocolKind]) -> String {
    if s.raw() == 0 {
        "coordinator".to_string()
    } else {
        format!("site {} ({})", s.raw(), protos[s.raw() as usize - 1])
    }
}

/// Format an outcome for tables.
#[must_use]
pub fn outcome_label(o: Outcome) -> &'static str {
    match o {
        Outcome::Commit => "commit",
        Outcome::Abort => "abort",
    }
}

/// The machine's available parallelism (fallback 1).
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Map `f` over `items` on up to `threads` worker threads, preserving
/// input order in the output. Work is distributed dynamically through a
/// work-stealing injector, but because each item carries its index and
/// results are placed back by index, scheduling cannot affect the
/// result — callers get exactly what the serial `map` would produce.
///
/// Experiment binaries use this to fan independent units (sweep points,
/// campaign seeds, per-coordinator checks) across the pool without
/// changing their printed output.
///
/// # Panics
/// Propagates a panic from `f`.
#[must_use]
pub fn parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let injector = crossbeam::deque::Injector::new();
    for pair in items.into_iter().enumerate() {
        injector.push(pair);
    }
    let f = &f;
    let indexed: Vec<(usize, U)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(n))
            .map(|_| {
                let injector = &injector;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        match injector.steal() {
                            crossbeam::deque::Steal::Success((i, item)) => out.push((i, f(item))),
                            crossbeam::deque::Steal::Empty => break,
                            crossbeam::deque::Steal::Retry => {}
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for (i, u) in indexed {
        slots[i] = Some(u);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::SelectionPolicy;

    #[test]
    fn helpers_run() {
        let out = run_one(
            CoordinatorKind::PrAny(SelectionPolicy::PaperStrict),
            &[ProtocolKind::PrA, ProtocolKind::PrC],
            false,
        );
        assert_eq!(out.decided[&TxnId::new(1)], Outcome::Commit);
        let r = row(&["a".into(), "bb".into()], &[3, 3]);
        assert_eq!(r, "| a   | bb  |");
        assert_eq!(sep(&[3, 3]), "|-----|-----|");
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 4, 7] {
            assert_eq!(parallel_map(items.clone(), threads, |x| x * x), serial);
        }
    }
}
