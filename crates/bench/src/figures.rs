//! Self-documenting figure rendering: replay the paper's five figures
//! from live simulator runs through the `acp-obs` event stream.
//!
//! Figures 1–4 are protocol schedules (commit and abort panels); each
//! panel is one [`acp_core::harness::Scenario`] run whose typed event
//! stream is rendered to
//! the ASCII schedule format and a Mermaid sequence diagram. Figure 5 is
//! the protocol taxonomy tree, rendered by `acp-types`. The whole
//! artifact set is a pure function of the scenarios — byte-stable across
//! runs and thread counts — so the generated files are checked in and a
//! golden test plus a CI drift check keep them honest.

use crate::{one_txn_scenario, parallel_map, site_label};
use acp_core::harness::{run_scenario, Scenario};
use acp_net::{AdmissionConfig, AdmissionController};
use acp_obs::{
    event_to_json, parse_flat_json, render_ascii, render_mermaid, MetricsRegistry, ProtocolEvent,
};
use acp_sim::SimTime;
use acp_types::{CoordinatorKind, ProtocolKind, SelectionPolicy, SiteId, TxnId, Vote};
use acp_workload::RetryPolicy;
use std::collections::BTreeMap;
use std::time::Duration;

/// One panel of a paper figure: a scenario plus naming.
pub struct FigurePanel {
    /// File stem for the panel's Mermaid diagram (e.g. `fig2_prn_commit`).
    pub slug: &'static str,
    /// File stem of the ASCII file the panel belongs to (e.g. `fig2_prn`).
    pub group: &'static str,
    /// Human title, matching the paper's figure caption.
    pub title: &'static str,
    /// Coordinator variant.
    pub kind: CoordinatorKind,
    /// Participant protocols.
    pub protos: Vec<ProtocolKind>,
    /// Client-abort panel?
    pub abort: bool,
}

/// The eight schedule panels of Figures 1–4, in paper order.
#[must_use]
pub fn paper_panels() -> Vec<FigurePanel> {
    let prany = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
    let mixed = vec![ProtocolKind::PrA, ProtocolKind::PrC];
    vec![
        FigurePanel {
            slug: "fig1a_prany_commit",
            group: "fig1_prany",
            title: "Figure 1a — PrAny (PrA + PrC participants), commit",
            kind: prany,
            protos: mixed.clone(),
            abort: false,
        },
        FigurePanel {
            slug: "fig1b_prany_abort",
            group: "fig1_prany",
            title: "Figure 1b — PrAny (PrA + PrC participants), abort",
            kind: prany,
            protos: mixed,
            abort: true,
        },
        FigurePanel {
            slug: "fig2_prn_commit",
            group: "fig2_prn",
            title: "Figure 2 — PrN, commit",
            kind: CoordinatorKind::Single(ProtocolKind::PrN),
            protos: vec![ProtocolKind::PrN; 2],
            abort: false,
        },
        FigurePanel {
            slug: "fig2_prn_abort",
            group: "fig2_prn",
            title: "Figure 2 — PrN, abort",
            kind: CoordinatorKind::Single(ProtocolKind::PrN),
            protos: vec![ProtocolKind::PrN; 2],
            abort: true,
        },
        FigurePanel {
            slug: "fig3_pra_commit",
            group: "fig3_pra",
            title: "Figure 3 — PrA, commit",
            kind: CoordinatorKind::Single(ProtocolKind::PrA),
            protos: vec![ProtocolKind::PrA; 2],
            abort: false,
        },
        FigurePanel {
            slug: "fig3_pra_abort",
            group: "fig3_pra",
            title: "Figure 3 — PrA, abort",
            kind: CoordinatorKind::Single(ProtocolKind::PrA),
            protos: vec![ProtocolKind::PrA; 2],
            abort: true,
        },
        FigurePanel {
            slug: "fig4a_prc_commit",
            group: "fig4_prc",
            title: "Figure 4a — PrC, commit",
            kind: CoordinatorKind::Single(ProtocolKind::PrC),
            protos: vec![ProtocolKind::PrC; 2],
            abort: false,
        },
        FigurePanel {
            slug: "fig4b_prc_abort",
            group: "fig4_prc",
            title: "Figure 4b — PrC, abort",
            kind: CoordinatorKind::Single(ProtocolKind::PrC),
            protos: vec![ProtocolKind::PrC; 2],
            abort: true,
        },
    ]
}

/// Slug of the E17 overload panel in `traces.jsonl` (the `replay`
/// binary routes it to the multi-transaction overload checker instead
/// of the single-transaction schedule predicates).
pub const OVERLOAD_SLUG: &str = "e17_overload";

/// Title of the E17 overload panel.
pub const OVERLOAD_TITLE: &str =
    "E17 — overload: admission shed + workload retries under contention";

/// Admission bound the overload panel models (chosen so one in-flight
/// transaction is enough to shed the next arrival).
const OVERLOAD_LIMIT: u64 = 1;

/// The microsecond value of a workload retry delay.
fn delay_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).expect("retry delay fits u64 microseconds")
}

/// Per-transaction lifetimes visible in an event stream: first event
/// stamp and decision stamp (coordinator `decision_reached`).
fn txn_spans(events: &[ProtocolEvent]) -> BTreeMap<u64, (u64, Option<u64>)> {
    let mut spans: BTreeMap<u64, (u64, Option<u64>)> = BTreeMap::new();
    for ev in events {
        let map = parse_flat_json(&event_to_json(ev)).expect("trace dialect");
        let Some(txn) = map.get("txn").and_then(acp_obs::JsonValue::as_u64) else {
            continue;
        };
        let span = spans.entry(txn).or_insert((ev.at_us(), None));
        span.0 = span.0.min(ev.at_us());
        if let ProtocolEvent::DecisionReached { at_us, .. } = ev {
            span.1 = Some(*at_us);
        }
    }
    spans
}

/// The E17 overload panel: one deterministic multi-transaction
/// schedule exhibiting the overload mechanics the campaign measures.
///
/// A PrAny coordinator over a PrA and a PrC participant runs four
/// client attempts:
///
/// * **T1** (arrives 1000µs) — commits cleanly.
/// * **T2** (arrives 2000µs) — the PrA participant votes **No** (the
///   panel's stand-in for a no-wait lock conflict), so T2 aborts. The
///   workload layer observes the abort and schedules a retry
///   (`retry_scheduled`, purpose `workload-retry`); the retry runs as
///   **T3** — a *new* transaction id, because an abort decision
///   released T2's locks and the protocol is finished with it.
/// * **T4** — arrives while T2 is still in flight. With the panel's
///   admission bound of one, the door model
///   ([`AdmissionController`]) refuses it: an `admission_shed` event
///   carries the in-flight census and the bound, and the panel shows
///   no protocol work for T4 before the shed (no forces, no votes, no
///   messages — that is the whole point of shedding at the door). The
///   workload layer retries the shed attempt with the *same* id after
///   a backoff, and the resubmitted T4 commits.
///
/// The shed/retry bookkeeping events are synthesized by the same
/// [`AdmissionController`] predicate and
/// [`RetryPolicy`] arithmetic the live runtime uses, against the
/// in-flight census computed from the simulator's own event stream —
/// the panel asserts the controller really would shed at that instant
/// before writing the event.
///
/// # Panics
/// If the schedule drifts from the mechanics it documents (wrong
/// outcomes, an in-flight census the controller would admit): the
/// panel is a committed artifact, so drift must fail regeneration
/// loudly rather than commit a lie.
#[must_use]
pub fn overload_panel_events() -> Vec<ProtocolEvent> {
    let kind = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
    let protos = [ProtocolKind::PrA, ProtocolKind::PrC];
    let policy = RetryPolicy::CappedBackoff {
        base: Duration::from_micros(1500),
        cap: Duration::from_millis(10),
        give_up_after: 4,
    };

    // Pass 1: run T1 + T2 alone to learn when T2's abort decision
    // lands — the instant the workload layer can schedule the retry —
    // and place the shed strictly inside T2's in-flight window.
    let mut probe = Scenario::new(kind, &protos);
    probe.max_events = 10_000;
    probe.add_txn(TxnId::new(1), SimTime::from_micros(1000));
    probe
        .add_txn(TxnId::new(2), SimTime::from_micros(2000))
        .votes
        .insert(SiteId::new(1), Vote::No);
    let probe_out = run_scenario(&probe);
    let spans = txn_spans(&probe_out.events);
    let abort_at = spans[&2].1.expect("T2 decides in the probe run");
    let shed_at = (spans[&2].0 + abort_at) / 2;

    // The retried attempts: the aborted T2 comes back as a fresh T3
    // (its locks were released by the decision); the shed T4 comes
    // back as T4 itself (it never entered the protocol, so there is
    // nothing to rename).
    let abort_retry_at = abort_at + delay_us(policy.next_delay(1, 2).expect("retry 1 of T2"));
    let shed_retry_at = shed_at + delay_us(policy.next_delay(1, 4).expect("retry 1 of T4"));

    let mut s = Scenario::new(kind, &protos);
    s.max_events = 10_000;
    s.add_txn(TxnId::new(1), SimTime::from_micros(1000));
    s.add_txn(TxnId::new(2), SimTime::from_micros(2000))
        .votes
        .insert(SiteId::new(1), Vote::No);
    s.add_txn(TxnId::new(3), SimTime::from_micros(abort_retry_at));
    s.add_txn(TxnId::new(4), SimTime::from_micros(shed_retry_at));
    let out = run_scenario(&s);
    for (txn, want) in [(1u64, "commit"), (2, "abort"), (3, "commit"), (4, "commit")] {
        let got = out.decided[&TxnId::new(txn)];
        let got = if got == acp_types::Outcome::Commit { "commit" } else { "abort" };
        assert_eq!(got, want, "overload panel: T{txn} outcome drifted");
    }

    let spans = txn_spans(&out.events);
    assert_eq!(
        spans[&2].1,
        Some(abort_at),
        "later arrivals must not perturb T2's decision time"
    );

    // The in-flight census at the shed instant, from the stream itself:
    // transactions already begun but not yet decided.
    let inflight = spans
        .values()
        .filter(|(first, decided)| *first <= shed_at && decided.map_or(true, |d| d > shed_at))
        .count() as u64;
    let door = AdmissionController::new(AdmissionConfig::bounded(OVERLOAD_LIMIT));
    assert!(
        !door.admit(inflight, 0),
        "overload panel: the controller would have admitted T4 \
         (inflight {inflight} under bound {OVERLOAD_LIMIT})"
    );

    let proto = out
        .events
        .iter()
        .find_map(|e| match e {
            ProtocolEvent::DecisionReached { site: 0, proto, .. } => Some(*proto),
            _ => None,
        })
        .expect("coordinator decision event");

    let mut events = out.events;
    events.push(ProtocolEvent::AdmissionShed {
        at_us: shed_at,
        site: 0,
        proto,
        txn: Some(4),
        inflight,
        limit: OVERLOAD_LIMIT,
    });
    events.push(ProtocolEvent::RetryScheduled {
        at_us: shed_at,
        site: 0,
        proto,
        purpose: "workload-retry",
        attempt: 1,
        txn: Some(4),
    });
    events.push(ProtocolEvent::RetryScheduled {
        at_us: abort_at,
        site: 0,
        proto,
        purpose: "workload-retry",
        attempt: 1,
        txn: Some(2),
    });
    // Stable by timestamp: simulator events keep their emission order,
    // synthesized bookkeeping lands after protocol work at each stamp.
    events.sort_by_key(ProtocolEvent::at_us);
    events
}

/// Everything the figure regeneration produces, keyed by file name
/// (relative to `results/figures/`). Deterministic: same scenarios →
/// byte-identical map, at any thread count.
pub struct FigureArtifacts {
    /// File name → contents.
    pub files: BTreeMap<String, String>,
}

/// Site labels for a panel's renderings.
fn panel_labels(protos: &[ProtocolKind]) -> BTreeMap<u32, String> {
    let mut labels = BTreeMap::new();
    labels.insert(0, site_label(SiteId::new(0), protos));
    for i in 1..=protos.len() as u32 {
        labels.insert(i, site_label(SiteId::new(i), protos));
    }
    labels
}

/// Run all figure panels (fanned across `threads` workers) and render
/// the complete artifact set: per-figure ASCII schedules, per-panel
/// Mermaid diagrams, the Figure 5 taxonomy, the raw event streams as
/// JSON lines, and aggregate per-protocol cost metrics.
#[must_use]
pub fn render_paper_figures(threads: usize) -> FigureArtifacts {
    let panels = paper_panels();
    let runs: Vec<Vec<ProtocolEvent>> = parallel_map(
        panels
            .iter()
            .map(|p| {
                let mut s = one_txn_scenario(p.kind, &p.protos, p.abort);
                s.max_events = 10_000;
                s
            })
            .collect(),
        threads,
        |s| run_scenario(&s).events,
    );

    let mut files: BTreeMap<String, String> = BTreeMap::new();
    let mut traces = String::new();
    let registry = MetricsRegistry::new();

    for (panel, events) in panels.iter().zip(&runs) {
        let labels = panel_labels(&panel.protos);
        let ascii = render_ascii(panel.title, events, &labels);
        files
            .entry(format!("{}.txt", panel.group))
            .and_modify(|f| {
                f.push('\n');
                f.push_str(&ascii);
            })
            .or_insert(ascii);
        files.insert(
            format!("{}.mmd", panel.slug),
            render_mermaid(panel.title, events, &labels),
        );
        traces.push_str(&format!(
            "{{\"meta\":\"panel\",\"slug\":\"{}\",\"title\":\"{}\",\"events\":{}}}\n",
            panel.slug,
            panel.title,
            events.len()
        ));
        for ev in events {
            traces.push_str(&event_to_json(ev));
            traces.push('\n');
            registry.record(ev);
        }
    }

    // Ninth panel: the E17 overload schedule. Trace-only — its story
    // is the event bookkeeping (shed, retries), not a paper figure, so
    // it gets no ASCII/Mermaid rendering.
    let overload = overload_panel_events();
    traces.push_str(&format!(
        "{{\"meta\":\"panel\",\"slug\":\"{}\",\"title\":\"{}\",\"events\":{}}}\n",
        OVERLOAD_SLUG,
        OVERLOAD_TITLE,
        overload.len()
    ));
    for ev in &overload {
        traces.push_str(&event_to_json(ev));
        traces.push('\n');
        registry.record(ev);
    }

    files.insert(
        "fig5_taxonomy.txt".to_string(),
        acp_types::taxonomy::render_taxonomy(),
    );
    files.insert("traces.jsonl".to_string(), traces);
    files.insert(
        "metrics.json".to_string(),
        registry.to_json("figures (E1-E4 schedule panels + E17 overload)"),
    );

    FigureArtifacts { files }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_set_is_complete() {
        let arts = render_paper_figures(1);
        for name in [
            "fig1_prany.txt",
            "fig2_prn.txt",
            "fig3_pra.txt",
            "fig4_prc.txt",
            "fig5_taxonomy.txt",
            "fig1a_prany_commit.mmd",
            "fig4b_prc_abort.mmd",
            "traces.jsonl",
            "metrics.json",
        ] {
            assert!(arts.files.contains_key(name), "missing {name}");
        }
        // Each schedule file holds both its panels.
        let f2 = &arts.files["fig2_prn.txt"];
        assert!(f2.contains("PrN, commit") && f2.contains("PrN, abort"));
    }
}
