//! Self-documenting figure rendering: replay the paper's five figures
//! from live simulator runs through the `acp-obs` event stream.
//!
//! Figures 1–4 are protocol schedules (commit and abort panels); each
//! panel is one [`acp_core::harness::Scenario`] run whose typed event
//! stream is rendered to
//! the ASCII schedule format and a Mermaid sequence diagram. Figure 5 is
//! the protocol taxonomy tree, rendered by `acp-types`. The whole
//! artifact set is a pure function of the scenarios — byte-stable across
//! runs and thread counts — so the generated files are checked in and a
//! golden test plus a CI drift check keep them honest.

use crate::{one_txn_scenario, parallel_map, site_label};
use acp_core::harness::run_scenario;
use acp_obs::{
    event_to_json, render_ascii, render_mermaid, MetricsRegistry, ProtocolEvent,
};
use acp_types::{CoordinatorKind, ProtocolKind, SelectionPolicy, SiteId};
use std::collections::BTreeMap;

/// One panel of a paper figure: a scenario plus naming.
pub struct FigurePanel {
    /// File stem for the panel's Mermaid diagram (e.g. `fig2_prn_commit`).
    pub slug: &'static str,
    /// File stem of the ASCII file the panel belongs to (e.g. `fig2_prn`).
    pub group: &'static str,
    /// Human title, matching the paper's figure caption.
    pub title: &'static str,
    /// Coordinator variant.
    pub kind: CoordinatorKind,
    /// Participant protocols.
    pub protos: Vec<ProtocolKind>,
    /// Client-abort panel?
    pub abort: bool,
}

/// The eight schedule panels of Figures 1–4, in paper order.
#[must_use]
pub fn paper_panels() -> Vec<FigurePanel> {
    let prany = CoordinatorKind::PrAny(SelectionPolicy::PaperStrict);
    let mixed = vec![ProtocolKind::PrA, ProtocolKind::PrC];
    vec![
        FigurePanel {
            slug: "fig1a_prany_commit",
            group: "fig1_prany",
            title: "Figure 1a — PrAny (PrA + PrC participants), commit",
            kind: prany,
            protos: mixed.clone(),
            abort: false,
        },
        FigurePanel {
            slug: "fig1b_prany_abort",
            group: "fig1_prany",
            title: "Figure 1b — PrAny (PrA + PrC participants), abort",
            kind: prany,
            protos: mixed,
            abort: true,
        },
        FigurePanel {
            slug: "fig2_prn_commit",
            group: "fig2_prn",
            title: "Figure 2 — PrN, commit",
            kind: CoordinatorKind::Single(ProtocolKind::PrN),
            protos: vec![ProtocolKind::PrN; 2],
            abort: false,
        },
        FigurePanel {
            slug: "fig2_prn_abort",
            group: "fig2_prn",
            title: "Figure 2 — PrN, abort",
            kind: CoordinatorKind::Single(ProtocolKind::PrN),
            protos: vec![ProtocolKind::PrN; 2],
            abort: true,
        },
        FigurePanel {
            slug: "fig3_pra_commit",
            group: "fig3_pra",
            title: "Figure 3 — PrA, commit",
            kind: CoordinatorKind::Single(ProtocolKind::PrA),
            protos: vec![ProtocolKind::PrA; 2],
            abort: false,
        },
        FigurePanel {
            slug: "fig3_pra_abort",
            group: "fig3_pra",
            title: "Figure 3 — PrA, abort",
            kind: CoordinatorKind::Single(ProtocolKind::PrA),
            protos: vec![ProtocolKind::PrA; 2],
            abort: true,
        },
        FigurePanel {
            slug: "fig4a_prc_commit",
            group: "fig4_prc",
            title: "Figure 4a — PrC, commit",
            kind: CoordinatorKind::Single(ProtocolKind::PrC),
            protos: vec![ProtocolKind::PrC; 2],
            abort: false,
        },
        FigurePanel {
            slug: "fig4b_prc_abort",
            group: "fig4_prc",
            title: "Figure 4b — PrC, abort",
            kind: CoordinatorKind::Single(ProtocolKind::PrC),
            protos: vec![ProtocolKind::PrC; 2],
            abort: true,
        },
    ]
}

/// Everything the figure regeneration produces, keyed by file name
/// (relative to `results/figures/`). Deterministic: same scenarios →
/// byte-identical map, at any thread count.
pub struct FigureArtifacts {
    /// File name → contents.
    pub files: BTreeMap<String, String>,
}

/// Site labels for a panel's renderings.
fn panel_labels(protos: &[ProtocolKind]) -> BTreeMap<u32, String> {
    let mut labels = BTreeMap::new();
    labels.insert(0, site_label(SiteId::new(0), protos));
    for i in 1..=protos.len() as u32 {
        labels.insert(i, site_label(SiteId::new(i), protos));
    }
    labels
}

/// Run all figure panels (fanned across `threads` workers) and render
/// the complete artifact set: per-figure ASCII schedules, per-panel
/// Mermaid diagrams, the Figure 5 taxonomy, the raw event streams as
/// JSON lines, and aggregate per-protocol cost metrics.
#[must_use]
pub fn render_paper_figures(threads: usize) -> FigureArtifacts {
    let panels = paper_panels();
    let runs: Vec<Vec<ProtocolEvent>> = parallel_map(
        panels
            .iter()
            .map(|p| {
                let mut s = one_txn_scenario(p.kind, &p.protos, p.abort);
                s.max_events = 10_000;
                s
            })
            .collect(),
        threads,
        |s| run_scenario(&s).events,
    );

    let mut files: BTreeMap<String, String> = BTreeMap::new();
    let mut traces = String::new();
    let registry = MetricsRegistry::new();

    for (panel, events) in panels.iter().zip(&runs) {
        let labels = panel_labels(&panel.protos);
        let ascii = render_ascii(panel.title, events, &labels);
        files
            .entry(format!("{}.txt", panel.group))
            .and_modify(|f| {
                f.push('\n');
                f.push_str(&ascii);
            })
            .or_insert(ascii);
        files.insert(
            format!("{}.mmd", panel.slug),
            render_mermaid(panel.title, events, &labels),
        );
        traces.push_str(&format!(
            "{{\"meta\":\"panel\",\"slug\":\"{}\",\"title\":\"{}\",\"events\":{}}}\n",
            panel.slug,
            panel.title,
            events.len()
        ));
        for ev in events {
            traces.push_str(&event_to_json(ev));
            traces.push('\n');
            registry.record(ev);
        }
    }

    files.insert(
        "fig5_taxonomy.txt".to_string(),
        acp_types::taxonomy::render_taxonomy(),
    );
    files.insert("traces.jsonl".to_string(), traces);
    files.insert(
        "metrics.json".to_string(),
        registry.to_json("figures (E1-E4 schedule panels)"),
    );

    FigureArtifacts { files }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_set_is_complete() {
        let arts = render_paper_figures(1);
        for name in [
            "fig1_prany.txt",
            "fig2_prn.txt",
            "fig3_pra.txt",
            "fig4_prc.txt",
            "fig5_taxonomy.txt",
            "fig1a_prany_commit.mmd",
            "fig4b_prc_abort.mmd",
            "traces.jsonl",
            "metrics.json",
        ] {
            assert!(arts.files.contains_key(name), "missing {name}");
        }
        // Each schedule file holds both its panels.
        let f2 = &arts.files["fig2_prn.txt"];
        assert!(f2.contains("PrN, commit") && f2.contains("PrN, abort"));
    }
}
