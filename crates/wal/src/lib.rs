//! # acp-wal
//!
//! Write-ahead-log substrate for the Presumed Any workspace.
//!
//! Every 2PC variant in the paper is *defined* by its logging
//! discipline: which records are written, which of them are **forced**
//! (synchronously made stable before the protocol proceeds), and when a
//! transaction's records may be garbage collected. This crate provides
//! that substrate:
//!
//! * a binary record codec with CRC32 framing and torn-write detection
//!   ([`encode`], [`crc`]),
//! * an in-memory stable log with crash semantics for the simulator
//!   ([`mem::MemLog`]) — non-forced records buffered in volatile memory
//!   are lost on a crash, forced records survive,
//! * a file-backed stable log for the threaded runtime
//!   ([`file::FileLog`]),
//! * a fault-injecting stable log ([`fault::FaultyLog`]) that keeps the
//!   `FileLog` byte image in memory and corrupts it on demand — torn
//!   writes, partial fsyncs, bit flips — so recovery can be fuzzed,
//! * a group-commit layer ([`group`]) that batches concurrent
//!   transactions' forced writes into a single physical force —
//!   [`group::GroupCommitLog`] for single-owner event-loop hosts,
//!   [`group::SharedGroupLog`] for threads sharing one commit log,
//! * log-analysis scanning ([`scan`]) used by the recovery procedures of
//!   §4.2, and
//! * garbage-collection tracking ([`gc::GcTracker`]) — the observable
//!   form of the paper's *operational correctness* requirement that
//!   coordinators and participants "can, eventually, … garbage collect
//!   their logs" (Definition 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod encode;
pub mod error;
pub mod fault;
pub mod file;
pub mod gc;
pub mod group;
pub mod mem;
pub mod observe;
pub mod record;
pub mod scan;
pub mod tempdir;

pub use error::WalError;
pub use fault::{Fault, FaultyLog, RecoveryReport};
pub use file::FileLog;
pub use gc::GcTracker;
pub use group::{
    ClosedBatch, DomainStats, FsyncDomain, GroupCommitLog, GroupCommitStats, SharedGroupLog,
};
pub use mem::MemLog;
pub use observe::ObservedLog;
pub use record::{LogRecord, Lsn, WalStats};

use acp_types::LogPayload;

/// A stable log: an append-only sequence of records with force/flush
/// semantics that survive crashes.
///
/// Implementations must guarantee:
/// * records appended with `force = true` are durable when `append`
///   returns;
/// * records appended with `force = false` become durable on the next
///   `flush`, the next forced append, or not at all if a crash
///   intervenes;
/// * `records()` returns only durable records, in append order.
pub trait StableLog {
    /// Append a record. If `force` is true the record (and all earlier
    /// buffered records — the log is strictly ordered) is made durable
    /// before returning.
    fn append(&mut self, payload: LogPayload, force: bool) -> Result<Lsn, WalError>;

    /// Make all buffered records durable.
    fn flush(&mut self) -> Result<(), WalError>;

    /// All durable records at or above the garbage-collection
    /// low-water mark, in append order.
    fn records(&self) -> Result<Vec<LogRecord>, WalError>;

    /// Visit every durable record in append order without materializing
    /// a vector. Hot paths that only need to fold over the records (the
    /// model checker's state fingerprints) use this; the default
    /// delegates to [`StableLog::records`], and in-memory logs override
    /// it with direct iteration.
    fn for_each_record(&self, f: &mut dyn FnMut(&LogRecord)) -> Result<(), WalError> {
        for r in self.records()? {
            f(&r);
        }
        Ok(())
    }

    /// Discard all records with LSN strictly below `lsn` (garbage
    /// collection). `lsn` becomes the new low-water mark.
    fn truncate_prefix(&mut self, lsn: Lsn) -> Result<(), WalError>;

    /// The current low-water mark: the smallest LSN still retained.
    fn low_water_mark(&self) -> Lsn;

    /// The LSN the next appended record will receive.
    fn next_lsn(&self) -> Lsn;

    /// Cost/health statistics.
    fn stats(&self) -> WalStats;

    /// Simulate the stable-storage side of a site crash: every record
    /// appended but not yet forced/flushed is lost. Returns how many
    /// records were lost. Volatile protocol state is the caller's to
    /// clear; this method only handles the log's buffered tail.
    fn lose_unflushed(&mut self) -> Result<usize, WalError>;
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use acp_types::TxnId;

    /// Exercise any `StableLog` implementation through the common
    /// contract.
    fn contract(log: &mut dyn StableLog) {
        let t = TxnId::new(1);
        let l0 = log.append(LogPayload::End { txn: t }, true).unwrap();
        let l1 = log
            .append(LogPayload::End { txn: t.next() }, false)
            .unwrap();
        assert!(l0 < l1);
        log.flush().unwrap();
        let recs = log.records().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].lsn, l0);
        assert_eq!(recs[1].lsn, l1);

        log.truncate_prefix(l1).unwrap();
        let recs = log.records().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(log.low_water_mark(), l1);
    }

    #[test]
    fn mem_log_satisfies_contract() {
        let mut log = MemLog::new();
        contract(&mut log);
    }

    #[test]
    fn file_log_satisfies_contract() {
        let dir = tempdir::TempDir::new("wal-contract").unwrap();
        let mut log = FileLog::create(dir.path().join("wal")).unwrap();
        contract(&mut log);
    }
}
