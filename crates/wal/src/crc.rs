//! CRC-32 (IEEE 802.3 polynomial), implemented locally so the WAL has no
//! external codec dependency.
//!
//! A table-driven, byte-at-a-time implementation — entirely adequate for
//! the record sizes a commit protocol writes, and byte-for-byte
//! compatible with the ubiquitous `crc32` used by zlib/gzip (checked
//! against published test vectors below).

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// A streaming CRC-32 hasher.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a fresh checksum.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = t[((self.state ^ u32::from(b)) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Finish and return the checksum value.
    #[must_use]
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published CRC-32/ISO-HDLC ("zlib") test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"hello, write-ahead world";
        let mut h = Crc32::new();
        h.update(&data[..5]);
        h.update(&data[5..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 64];
        data[10] = 0x42;
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), good, "undetected flip at {byte}:{bit}");
            }
        }
    }
}
