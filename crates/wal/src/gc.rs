//! Garbage-collection tracking: which log prefix is reclaimable.
//!
//! A transaction's records become reclaimable once the site writes its
//! end record (coordinator) or participant-end record (participant).
//! Because the log is a sequence, only a *prefix* whose transactions are
//! all ended can be physically truncated; [`GcTracker`] computes the
//! largest such prefix.
//!
//! This is the executable form of requirements (2) and (3) of the
//! paper's operational correctness criterion (Definition 1): a protocol
//! is operationally correct only if this prefix keeps advancing. The
//! Theorem 2 experiment shows C2PC pinning it forever.

use crate::record::{LogRecord, Lsn};
use acp_types::{LogPayload, TxnId};
use std::collections::BTreeMap;

/// Tracks, per transaction, the first LSN it wrote and whether it has
/// ended, and derives the releasable log prefix.
#[derive(Clone, Debug, Default)]
pub struct GcTracker {
    /// First LSN per open (not yet ended) transaction.
    open: BTreeMap<TxnId, Lsn>,
    /// First LSN per ended transaction that is still pinned by an older
    /// open transaction.
    ended: BTreeMap<TxnId, Lsn>,
    /// LSN one past the last record observed.
    tail: Lsn,
}

impl GcTracker {
    /// A tracker that has seen nothing.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a tracker from a scanned log (used after recovery).
    #[must_use]
    pub fn from_records(records: &[LogRecord]) -> Self {
        let mut t = Self::new();
        for r in records {
            t.note(r.lsn, &r.payload);
        }
        t
    }

    /// Observe an appended record.
    pub fn note(&mut self, lsn: Lsn, payload: &LogPayload) {
        self.tail = self.tail.max(lsn.next());
        let txn = payload.txn();
        match payload {
            LogPayload::End { .. } | LogPayload::PartEnd { .. } => {
                let first = self.open.remove(&txn).unwrap_or(lsn);
                self.ended.insert(txn, first);
            }
            // A checkpoint belongs to no transaction and never pins the
            // log (it is what makes the prefix before it reclaimable).
            LogPayload::Checkpoint { .. } => {}
            _ => {
                self.open.entry(txn).or_insert(lsn);
            }
        }
    }

    /// The largest LSN `l` such that every record below `l` belongs to an
    /// ended transaction: the log may be truncated to `l`.
    #[must_use]
    pub fn releasable(&self) -> Lsn {
        match self.open.values().min() {
            Some(&pin) => pin,
            None => self.tail,
        }
    }

    /// Transactions whose records are still pinned in the log (not
    /// ended). Under an operationally correct protocol this set drains;
    /// under C2PC it grows without bound.
    #[must_use]
    pub fn pinned(&self) -> Vec<TxnId> {
        self.open.keys().copied().collect()
    }

    /// Number of pinned (never-ending) transactions.
    #[must_use]
    pub fn pinned_count(&self) -> usize {
        self.open.len()
    }

    /// Drop bookkeeping for ended transactions whose records are below
    /// the given truncation point (call after `truncate_prefix`).
    pub fn reclaimed(&mut self, up_to: Lsn) {
        self.ended.retain(|_, &mut first| first >= up_to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn end(t: u64) -> LogPayload {
        LogPayload::End { txn: TxnId::new(t) }
    }

    fn dec(t: u64) -> LogPayload {
        LogPayload::CoordDecision {
            txn: TxnId::new(t),
            outcome: acp_types::Outcome::Commit,
            participants: vec![],
        }
    }

    #[test]
    fn empty_tracker_releases_nothing_yet() {
        let t = GcTracker::new();
        assert_eq!(t.releasable(), Lsn(0));
        assert_eq!(t.pinned_count(), 0);
    }

    #[test]
    fn fully_ended_log_is_fully_releasable() {
        let mut t = GcTracker::new();
        t.note(Lsn(0), &dec(1));
        t.note(Lsn(1), &end(1));
        assert_eq!(t.releasable(), Lsn(2));
        assert!(t.pinned().is_empty());
    }

    #[test]
    fn open_transaction_pins_the_prefix() {
        let mut t = GcTracker::new();
        t.note(Lsn(0), &dec(1)); // open txn 1 at lsn 0
        t.note(Lsn(1), &dec(2));
        t.note(Lsn(2), &end(2)); // txn 2 ends, but txn 1 pins lsn 0
        assert_eq!(t.releasable(), Lsn(0));
        assert_eq!(t.pinned(), vec![TxnId::new(1)]);

        t.note(Lsn(3), &end(1));
        assert_eq!(t.releasable(), Lsn(4));
    }

    #[test]
    fn interleaved_transactions_release_oldest_first() {
        let mut t = GcTracker::new();
        t.note(Lsn(0), &dec(1));
        t.note(Lsn(1), &dec(2));
        t.note(Lsn(2), &end(1));
        // txn 2 still open at lsn 1.
        assert_eq!(t.releasable(), Lsn(1));
        t.note(Lsn(3), &end(2));
        assert_eq!(t.releasable(), Lsn(4));
    }

    #[test]
    fn from_records_equals_incremental() {
        use crate::record::LogRecord;
        let payloads = [dec(1), dec(2), end(1)];
        let records: Vec<LogRecord> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| LogRecord {
                lsn: Lsn(i as u64),
                forced: true,
                payload: p.clone(),
            })
            .collect();
        let a = GcTracker::from_records(&records);
        let mut b = GcTracker::new();
        for r in &records {
            b.note(r.lsn, &r.payload);
        }
        assert_eq!(a.releasable(), b.releasable());
        assert_eq!(a.pinned(), b.pinned());
    }

    #[test]
    fn end_without_prior_record_is_harmless() {
        // PrA coordinators write nothing for aborts; a later end record
        // (e.g. PrN-style cleanup) must not wedge the tracker.
        let mut t = GcTracker::new();
        t.note(Lsn(0), &end(9));
        assert_eq!(t.releasable(), Lsn(1));
    }
}
