//! Binary codec for log payloads and on-disk record framing.
//!
//! ## Payload encoding
//!
//! Tag byte followed by fixed-width little-endian fields; variable-length
//! byte strings are length-prefixed (u32). Option<Vec<u8>> images use a
//! presence byte. Deliberately simple and versionable — tag values are
//! part of the on-disk format and must never be reused.
//!
//! ## Record framing (used by [`crate::file::FileLog`])
//!
//! ```text
//! +-------+--------+---------+--------+-----------+--------+
//! | magic | length | lsn     | forced | payload   | crc32  |
//! | u32   | u32    | u64     | u8     | length B  | u32    |
//! +-------+--------+---------+--------+-----------+--------+
//! ```
//!
//! The CRC covers `length‖lsn‖forced‖payload`. A scan treats a record
//! that fails magic/CRC validation at the *tail* of the log as a torn
//! write (truncated, not an error) and corruption elsewhere as fatal.

use crate::crc::crc32;
use crate::error::WalError;
use crate::record::{LogRecord, Lsn};
use acp_types::{CommitMode, LogPayload, Outcome, ParticipantEntry, ProtocolKind, SiteId, TxnId};

/// Frame magic: "WALR".
pub const MAGIC: u32 = 0x5741_4C52;

const TAG_INITIATION: u8 = 0x01;
const TAG_COORD_DECISION: u8 = 0x02;
const TAG_END: u8 = 0x03;
const TAG_PREPARED: u8 = 0x04;
const TAG_PART_DECISION: u8 = 0x05;
const TAG_PART_END: u8 = 0x06;
const TAG_UPDATE: u8 = 0x07;
const TAG_CHECKPOINT: u8 = 0x08;
const TAG_PAXOS_ACCEPT: u8 = 0x09;

// ---------------------------------------------------------------------
// primitive writers / readers
// ---------------------------------------------------------------------
//
// Public: the wire codec in `acp-net::wire` frames network messages
// with the same primitives (and the same CRC discipline) as the
// on-disk records, so there is exactly one binary dialect in the
// system.

/// Append one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed (u32) byte string.
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(
        out,
        u32::try_from(v.len()).expect("payload byte string too long"),
    );
    out.extend_from_slice(v);
}

/// Append an optional byte string: presence byte, then the string.
pub fn put_opt_bytes(out: &mut Vec<u8>, v: Option<&[u8]>) {
    match v {
        None => put_u8(out, 0),
        Some(b) => {
            put_u8(out, 1);
            put_bytes(out, b);
        }
    }
}

/// A bounds-checked cursor over an encoded payload. Every accessor
/// returns [`WalError::Corrupt`] instead of slicing out of bounds, so
/// decoders built on it are total over arbitrary input bytes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn corrupt(&self, what: &str) -> WalError {
        WalError::Corrupt {
            offset: self.pos as u64,
            detail: format!("truncated {what}"),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WalError> {
        if self.pos + n > self.buf.len() {
            return Err(self.corrupt(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte (`what` names the field in corruption errors).
    pub fn u8(&mut self, what: &str) -> Result<u8, WalError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, WalError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, WalError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self, what: &str) -> Result<Vec<u8>, WalError> {
        let len = self.u32(what)? as usize;
        Ok(self.take(len, what)?.to_vec())
    }

    /// Read an optional byte string (presence byte, then the string).
    pub fn opt_bytes(&mut self, what: &str) -> Result<Option<Vec<u8>>, WalError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.bytes(what)?)),
            v => Err(WalError::Corrupt {
                offset: self.pos as u64,
                detail: format!("bad presence byte {v} in {what}"),
            }),
        }
    }

    /// Whether the cursor consumed the whole buffer (decoders use this
    /// to reject trailing bytes).
    #[must_use]
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn protocol_tag(p: ProtocolKind) -> u8 {
    match p {
        ProtocolKind::PrN => 0,
        ProtocolKind::PrA => 1,
        ProtocolKind::PrC => 2,
    }
}

fn protocol_from_tag(t: u8, r: &Reader<'_>) -> Result<ProtocolKind, WalError> {
    match t {
        0 => Ok(ProtocolKind::PrN),
        1 => Ok(ProtocolKind::PrA),
        2 => Ok(ProtocolKind::PrC),
        v => Err(WalError::Corrupt {
            offset: r.pos as u64,
            detail: format!("bad protocol tag {v}"),
        }),
    }
}

fn mode_tag(m: CommitMode) -> u8 {
    match m {
        CommitMode::PrN => 0,
        CommitMode::PrA => 1,
        CommitMode::PrC => 2,
        CommitMode::PrAny => 3,
    }
}

fn mode_from_tag(t: u8, r: &Reader<'_>) -> Result<CommitMode, WalError> {
    match t {
        0 => Ok(CommitMode::PrN),
        1 => Ok(CommitMode::PrA),
        2 => Ok(CommitMode::PrC),
        3 => Ok(CommitMode::PrAny),
        v => Err(WalError::Corrupt {
            offset: r.pos as u64,
            detail: format!("bad mode tag {v}"),
        }),
    }
}

fn outcome_tag(o: Outcome) -> u8 {
    match o {
        Outcome::Commit => 0,
        Outcome::Abort => 1,
    }
}

fn outcome_from_tag(t: u8, r: &Reader<'_>) -> Result<Outcome, WalError> {
    match t {
        0 => Ok(Outcome::Commit),
        1 => Ok(Outcome::Abort),
        v => Err(WalError::Corrupt {
            offset: r.pos as u64,
            detail: format!("bad outcome tag {v}"),
        }),
    }
}

// ---------------------------------------------------------------------
// payload codec
// ---------------------------------------------------------------------

/// Encode a payload into bytes.
#[must_use]
pub fn encode_payload(p: &LogPayload) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match p {
        LogPayload::Initiation {
            txn,
            participants,
            mode,
        } => {
            put_u8(&mut out, TAG_INITIATION);
            put_u64(&mut out, txn.raw());
            put_u8(&mut out, mode_tag(*mode));
            put_u32(
                &mut out,
                u32::try_from(participants.len()).expect("too many participants"),
            );
            for e in participants {
                put_u32(&mut out, e.site.raw());
                put_u8(&mut out, protocol_tag(e.protocol));
            }
        }
        LogPayload::CoordDecision {
            txn,
            outcome,
            participants,
        } => {
            put_u8(&mut out, TAG_COORD_DECISION);
            put_u64(&mut out, txn.raw());
            put_u8(&mut out, outcome_tag(*outcome));
            put_u32(
                &mut out,
                u32::try_from(participants.len()).expect("too many participants"),
            );
            for e in participants {
                put_u32(&mut out, e.site.raw());
                put_u8(&mut out, protocol_tag(e.protocol));
            }
        }
        LogPayload::End { txn } => {
            put_u8(&mut out, TAG_END);
            put_u64(&mut out, txn.raw());
        }
        LogPayload::PaxosAccept {
            txn,
            ballot,
            instances,
        } => {
            put_u8(&mut out, TAG_PAXOS_ACCEPT);
            put_u64(&mut out, txn.raw());
            put_u64(&mut out, *ballot);
            put_u32(
                &mut out,
                u32::try_from(instances.len()).expect("too many instances"),
            );
            for (site, prepared) in instances {
                put_u32(&mut out, site.raw());
                put_u8(&mut out, u8::from(*prepared));
            }
        }
        LogPayload::Prepared { txn, coordinator } => {
            put_u8(&mut out, TAG_PREPARED);
            put_u64(&mut out, txn.raw());
            put_u32(&mut out, coordinator.raw());
        }
        LogPayload::PartDecision { txn, outcome } => {
            put_u8(&mut out, TAG_PART_DECISION);
            put_u64(&mut out, txn.raw());
            put_u8(&mut out, outcome_tag(*outcome));
        }
        LogPayload::PartEnd { txn } => {
            put_u8(&mut out, TAG_PART_END);
            put_u64(&mut out, txn.raw());
        }
        LogPayload::Update {
            txn,
            key,
            before,
            after,
        } => {
            put_u8(&mut out, TAG_UPDATE);
            put_u64(&mut out, txn.raw());
            put_bytes(&mut out, key);
            put_opt_bytes(&mut out, before.as_deref());
            put_opt_bytes(&mut out, after.as_deref());
        }
        LogPayload::Checkpoint { entries } => {
            put_u8(&mut out, TAG_CHECKPOINT);
            put_u32(
                &mut out,
                u32::try_from(entries.len()).expect("checkpoint too large"),
            );
            for (k, v) in entries {
                put_bytes(&mut out, k);
                put_bytes(&mut out, v);
            }
        }
    }
    out
}

/// Decode a payload from bytes produced by [`encode_payload`].
pub fn decode_payload(buf: &[u8]) -> Result<LogPayload, WalError> {
    let mut r = Reader::new(buf);
    let tag = r.u8("tag")?;
    let payload = match tag {
        TAG_INITIATION => {
            let txn = TxnId::new(r.u64("txn")?);
            let mode = mode_from_tag(r.u8("mode")?, &r)?;
            let n = r.u32("participant count")? as usize;
            let mut participants = Vec::with_capacity(n);
            for _ in 0..n {
                let site = SiteId::new(r.u32("participant site")?);
                let protocol = protocol_from_tag(r.u8("participant protocol")?, &r)?;
                participants.push(ParticipantEntry::new(site, protocol));
            }
            LogPayload::Initiation {
                txn,
                participants,
                mode,
            }
        }
        TAG_COORD_DECISION => {
            let txn = TxnId::new(r.u64("txn")?);
            let outcome = outcome_from_tag(r.u8("outcome")?, &r)?;
            let n = r.u32("participant count")? as usize;
            let mut participants = Vec::with_capacity(n);
            for _ in 0..n {
                let site = SiteId::new(r.u32("participant site")?);
                let protocol = protocol_from_tag(r.u8("participant protocol")?, &r)?;
                participants.push(ParticipantEntry::new(site, protocol));
            }
            LogPayload::CoordDecision {
                txn,
                outcome,
                participants,
            }
        }
        TAG_END => LogPayload::End {
            txn: TxnId::new(r.u64("txn")?),
        },
        TAG_PAXOS_ACCEPT => {
            let txn = TxnId::new(r.u64("txn")?);
            let ballot = r.u64("ballot")?;
            let n = r.u32("instance count")? as usize;
            let mut instances = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let site = SiteId::new(r.u32("instance site")?);
                let prepared = match r.u8("instance value")? {
                    0 => false,
                    1 => true,
                    v => {
                        return Err(WalError::Corrupt {
                            offset: r.pos as u64,
                            detail: format!("bad instance value {v}"),
                        })
                    }
                };
                instances.push((site, prepared));
            }
            LogPayload::PaxosAccept {
                txn,
                ballot,
                instances,
            }
        }
        TAG_PREPARED => {
            let txn = TxnId::new(r.u64("txn")?);
            let coordinator = SiteId::new(r.u32("coordinator")?);
            LogPayload::Prepared { txn, coordinator }
        }
        TAG_PART_DECISION => {
            let txn = TxnId::new(r.u64("txn")?);
            let outcome = outcome_from_tag(r.u8("outcome")?, &r)?;
            LogPayload::PartDecision { txn, outcome }
        }
        TAG_PART_END => LogPayload::PartEnd {
            txn: TxnId::new(r.u64("txn")?),
        },
        TAG_UPDATE => {
            let txn = TxnId::new(r.u64("txn")?);
            let key = r.bytes("key")?;
            let before = r.opt_bytes("before image")?;
            let after = r.opt_bytes("after image")?;
            LogPayload::Update {
                txn,
                key,
                before,
                after,
            }
        }
        TAG_CHECKPOINT => {
            let n = r.u32("checkpoint entry count")? as usize;
            let mut entries = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let k = r.bytes("checkpoint key")?;
                let v = r.bytes("checkpoint value")?;
                entries.push((k, v));
            }
            LogPayload::Checkpoint { entries }
        }
        t => return Err(WalError::UnknownTag(t)),
    };
    if !r.done() {
        return Err(WalError::Corrupt {
            offset: r.pos as u64,
            detail: format!("{} trailing bytes after payload", buf.len() - r.pos),
        });
    }
    Ok(payload)
}

// ---------------------------------------------------------------------
// record framing
// ---------------------------------------------------------------------

/// Encode a full framed record (see module docs for the layout).
#[must_use]
pub fn encode_frame(record: &LogRecord) -> Vec<u8> {
    let payload = encode_payload(&record.payload);
    let len = u32::try_from(payload.len()).expect("payload too long");
    let mut body = Vec::with_capacity(payload.len() + 13);
    put_u32(&mut body, len);
    put_u64(&mut body, record.lsn.raw());
    put_u8(&mut body, u8::from(record.forced));
    body.extend_from_slice(&payload);
    let crc = crc32(&body);

    let mut out = Vec::with_capacity(body.len() + 8);
    put_u32(&mut out, MAGIC);
    out.extend_from_slice(&body);
    put_u32(&mut out, crc);
    out
}

/// Result of attempting to decode one frame from a byte stream.
pub enum FrameOutcome {
    /// A valid record plus the number of bytes it consumed.
    Record(LogRecord, usize),
    /// The remaining bytes are a torn (incomplete or tail-corrupted)
    /// write; scanning should stop here and truncate.
    Torn,
}

/// Decode the frame starting at `buf[offset..]`.
///
/// `offset` is used only for error reporting.
pub fn decode_frame(buf: &[u8], offset: u64) -> Result<FrameOutcome, WalError> {
    // Header: magic + length.
    if buf.len() < 8 {
        return Ok(FrameOutcome::Torn);
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        // Bad magic at the tail is torn garbage; the caller decides
        // whether mid-log corruption is fatal.
        return Ok(FrameOutcome::Torn);
    }
    let len = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as usize;
    let total = 4 + 4 + 8 + 1 + len + 4; // magic+len+lsn+forced+payload+crc
    if buf.len() < total {
        return Ok(FrameOutcome::Torn);
    }
    let body = &buf[4..total - 4];
    let stored_crc = u32::from_le_bytes(buf[total - 4..total].try_into().expect("4 bytes"));
    if crc32(body) != stored_crc {
        return Ok(FrameOutcome::Torn);
    }
    let lsn = Lsn(u64::from_le_bytes(body[4..12].try_into().expect("8 bytes")));
    let forced = match body[12] {
        0 => false,
        1 => true,
        v => {
            return Err(WalError::Corrupt {
                offset,
                detail: format!("bad forced flag {v}"),
            })
        }
    };
    let payload = decode_payload(&body[13..])?;
    Ok(FrameOutcome::Record(
        LogRecord {
            lsn,
            forced,
            payload,
        },
        total,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<LogPayload> {
        let t = TxnId::new(77);
        vec![
            LogPayload::Initiation {
                txn: t,
                participants: vec![
                    ParticipantEntry::new(SiteId::new(1), ProtocolKind::PrN),
                    ParticipantEntry::new(SiteId::new(2), ProtocolKind::PrA),
                    ParticipantEntry::new(SiteId::new(3), ProtocolKind::PrC),
                ],
                mode: CommitMode::PrAny,
            },
            LogPayload::Initiation {
                txn: t,
                participants: vec![],
                mode: CommitMode::PrC,
            },
            LogPayload::CoordDecision {
                txn: t,
                outcome: Outcome::Commit,
                participants: vec![],
            },
            LogPayload::CoordDecision {
                txn: t,
                outcome: Outcome::Abort,
                participants: vec![ParticipantEntry::new(SiteId::new(4), ProtocolKind::PrN)],
            },
            LogPayload::End { txn: t },
            LogPayload::Prepared {
                txn: t,
                coordinator: SiteId::new(9),
            },
            LogPayload::PartDecision {
                txn: t,
                outcome: Outcome::Commit,
            },
            LogPayload::PartEnd { txn: t },
            LogPayload::Update {
                txn: t,
                key: vec![],
                before: None,
                after: None,
            },
            LogPayload::Update {
                txn: t,
                key: b"account/42".to_vec(),
                before: Some(b"100".to_vec()),
                after: Some(b"250".to_vec()),
            },
            LogPayload::Checkpoint { entries: vec![] },
            LogPayload::Checkpoint {
                entries: vec![
                    (b"a".to_vec(), b"1".to_vec()),
                    (b"b".to_vec(), b"2".to_vec()),
                ],
            },
        ]
    }

    #[test]
    fn payload_roundtrip() {
        for p in samples() {
            let enc = encode_payload(&p);
            let dec = decode_payload(&enc).unwrap();
            assert_eq!(dec, p);
        }
    }

    #[test]
    fn frame_roundtrip() {
        for (i, p) in samples().into_iter().enumerate() {
            let rec = LogRecord {
                lsn: Lsn(i as u64),
                forced: i % 2 == 0,
                payload: p,
            };
            let enc = encode_frame(&rec);
            match decode_frame(&enc, 0).unwrap() {
                FrameOutcome::Record(dec, consumed) => {
                    assert_eq!(dec, rec);
                    assert_eq!(consumed, enc.len());
                }
                FrameOutcome::Torn => panic!("valid frame decoded as torn"),
            }
        }
    }

    #[test]
    fn truncated_frame_is_torn() {
        let rec = LogRecord {
            lsn: Lsn(0),
            forced: true,
            payload: LogPayload::End { txn: TxnId::new(1) },
        };
        let enc = encode_frame(&rec);
        for cut in 0..enc.len() {
            match decode_frame(&enc[..cut], 0).unwrap() {
                FrameOutcome::Torn => {}
                FrameOutcome::Record(..) => panic!("truncation at {cut} decoded as a record"),
            }
        }
    }

    #[test]
    fn corrupted_frame_is_torn() {
        let rec = LogRecord {
            lsn: Lsn(3),
            forced: false,
            payload: LogPayload::Prepared {
                txn: TxnId::new(8),
                coordinator: SiteId::new(0),
            },
        };
        let enc = encode_frame(&rec);
        // Flip one byte in the payload region; CRC must catch it.
        let mut bad = enc.clone();
        bad[14] ^= 0x10;
        assert!(matches!(decode_frame(&bad, 0).unwrap(), FrameOutcome::Torn));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = encode_payload(&LogPayload::End { txn: TxnId::new(1) });
        enc.push(0xAB);
        assert!(matches!(
            decode_payload(&enc),
            Err(WalError::Corrupt { .. })
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            decode_payload(&[0x7F, 0, 0]),
            Err(WalError::UnknownTag(0x7F))
        ));
    }

    #[test]
    fn empty_payload_rejected() {
        assert!(decode_payload(&[]).is_err());
    }
}
