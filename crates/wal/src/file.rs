//! File-backed stable log for the threaded runtime.
//!
//! Layout: a 16-byte header (`magic‖version‖low_water`) followed by
//! framed records (see [`crate::encode`]). Appends accumulate in a
//! process-memory buffer; a force (or flush) writes the buffer and
//! `sync_data`s the file. A crash before the flush therefore loses the
//! buffered records — matching [`crate::mem::MemLog`]'s semantics.
//!
//! Garbage collection ([`StableLog::truncate_prefix`]) rewrites the
//! retained suffix into a sibling file and renames it into place, so
//! reclaimed bytes are physically returned.

use crate::encode::{decode_frame, encode_frame, FrameOutcome};
use crate::error::WalError;
use crate::record::{LogRecord, Lsn, WalStats};
use crate::StableLog;
use acp_types::LogPayload;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Header magic: "WALH".
const HEADER_MAGIC: u32 = 0x5741_4C48;
/// On-disk format version.
const VERSION: u32 = 1;
/// Header length in bytes.
pub(crate) const HEADER_LEN: u64 = 16;

pub(crate) fn encode_header(low_water: Lsn) -> [u8; 16] {
    let mut h = [0u8; 16];
    h[0..4].copy_from_slice(&HEADER_MAGIC.to_le_bytes());
    h[4..8].copy_from_slice(&VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&low_water.raw().to_le_bytes());
    h
}

/// Make a just-renamed (or just-created) directory entry durable by
/// fsyncing the parent directory. `rename(2)` alone only updates the
/// in-memory dentry cache: until the directory inode itself is synced, a
/// crash can resurrect the old entry — for GC that means records above
/// the low-water mark coming back from the dead.
fn sync_parent_dir(path: &Path) -> Result<(), WalError> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()?;
    Ok(())
}

/// Remove a stale `*.rewrite` sibling left by a crash between
/// `truncate_prefix`'s rewrite and its rename. The sibling is dead
/// weight at best; at worst a later GC opens it with `truncate(true)`
/// and silently discards whatever evidence a postmortem needed.
fn remove_stale_rewrite(path: &Path) -> Result<(), WalError> {
    let rewrite = path.with_extension("rewrite");
    match std::fs::metadata(&rewrite) {
        Ok(m) if m.is_file() => {
            std::fs::remove_file(&rewrite)?;
            sync_parent_dir(path)?;
            Ok(())
        }
        _ => Ok(()),
    }
}

pub(crate) fn decode_header(buf: &[u8]) -> Result<Lsn, WalError> {
    if buf.len() < HEADER_LEN as usize {
        return Err(WalError::Corrupt {
            offset: 0,
            detail: "short header".into(),
        });
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if magic != HEADER_MAGIC {
        return Err(WalError::Corrupt {
            offset: 0,
            detail: "bad header magic".into(),
        });
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(WalError::Corrupt {
            offset: 4,
            detail: format!("unsupported wal version {version}"),
        });
    }
    Ok(Lsn(u64::from_le_bytes(
        buf[8..16].try_into().expect("8 bytes"),
    )))
}

/// A stable log persisted to a single file.
#[derive(Debug)]
pub struct FileLog {
    path: PathBuf,
    file: File,
    /// Encoded frames not yet written+synced; lost if the process dies.
    buffer: Vec<u8>,
    /// Decoded view of everything durable (kept in memory for cheap
    /// `records()`; rebuilt on open).
    durable: Vec<LogRecord>,
    /// Records represented in `buffer`.
    pending: Vec<LogRecord>,
    low_water: Lsn,
    next: Lsn,
    stats: WalStats,
}

impl FileLog {
    /// Create a new, empty log file (truncating any existing file).
    pub fn create(path: impl Into<PathBuf>) -> Result<FileLog, WalError> {
        let path = path.into();
        remove_stale_rewrite(&path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(&encode_header(Lsn::ZERO))?;
        file.sync_data()?;
        sync_parent_dir(&path)?;
        Ok(FileLog {
            path,
            file,
            buffer: Vec::new(),
            durable: Vec::new(),
            pending: Vec::new(),
            low_water: Lsn::ZERO,
            next: Lsn::ZERO,
            stats: WalStats::default(),
        })
    }

    /// Open an existing log file, replaying its durable records.
    ///
    /// A torn record at the tail (from a crash mid-write) is truncated
    /// away; everything before it is recovered.
    pub fn open(path: impl Into<PathBuf>) -> Result<FileLog, WalError> {
        let path = path.into();
        remove_stale_rewrite(&path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut image = Vec::new();
        file.read_to_end(&mut image)?;
        let low_water = decode_header(&image)?;

        let mut durable = Vec::new();
        let mut offset = HEADER_LEN as usize;
        while offset < image.len() {
            match decode_frame(&image[offset..], offset as u64)? {
                FrameOutcome::Record(rec, consumed) => {
                    durable.push(rec);
                    offset += consumed;
                }
                FrameOutcome::Torn => break,
            }
        }
        // Physically drop the torn tail so future appends start clean.
        if (offset as u64) < image.len() as u64 {
            file.set_len(offset as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;

        let next = durable.last().map_or(low_water, |r| r.lsn.next());
        let durable_bytes = offset as u64 - HEADER_LEN;
        Ok(FileLog {
            path,
            file,
            buffer: Vec::new(),
            durable,
            pending: Vec::new(),
            low_water,
            next,
            stats: WalStats {
                durable_bytes,
                ..WalStats::default()
            },
        })
    }

    /// The file path backing this log.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Simulate a crash without dropping the value: buffered records are
    /// discarded and the durable image is re-read from disk. Returns the
    /// number of records lost. (The threaded runtime instead drops the
    /// whole `FileLog` and re-`open`s.)
    pub fn simulate_crash(&mut self) -> Result<usize, WalError> {
        let lost = self.pending.len();
        self.stats.lost_on_crash += lost as u64;
        self.buffer.clear();
        self.pending.clear();
        let reopened = FileLog::open(self.path.clone())?;
        self.durable = reopened.durable;
        self.low_water = reopened.low_water;
        self.next = reopened.next;
        Ok(lost)
    }

    fn write_out(&mut self) -> Result<(), WalError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        self.file.write_all(&self.buffer)?;
        self.file.sync_data()?;
        self.stats.durable_bytes += self.buffer.len() as u64;
        self.buffer.clear();
        self.durable.append(&mut self.pending);
        Ok(())
    }
}

impl StableLog for FileLog {
    fn append(&mut self, payload: LogPayload, force: bool) -> Result<Lsn, WalError> {
        let lsn = self.next;
        self.next = self.next.next();
        self.stats.appends += 1;
        let rec = LogRecord {
            lsn,
            forced: force,
            payload,
        };
        self.buffer.extend_from_slice(&encode_frame(&rec));
        self.pending.push(rec);
        if force {
            self.stats.forces += 1;
            self.write_out()?;
        }
        Ok(lsn)
    }

    fn flush(&mut self) -> Result<(), WalError> {
        self.stats.flushes += 1;
        self.write_out()
    }

    fn records(&self) -> Result<Vec<LogRecord>, WalError> {
        Ok(self.durable.clone())
    }

    fn truncate_prefix(&mut self, lsn: Lsn) -> Result<(), WalError> {
        let high = self.durable.last().map_or(self.low_water, |r| r.lsn.next());
        if lsn < self.low_water || lsn > high {
            return Err(WalError::BadTruncate {
                requested: lsn.raw(),
                low: self.low_water.raw(),
                high: high.raw(),
            });
        }
        // Rewrite the retained suffix to a sibling file, then swap. All
        // in-memory mutation is staged until the swap is durable: an I/O
        // error anywhere below must leave the log exactly as it was, or
        // memory and disk diverge and `records()` serves ghosts.
        let retained: Vec<LogRecord> = self
            .durable
            .iter()
            .filter(|r| r.lsn >= lsn)
            .cloned()
            .collect();
        let dropped = (self.durable.len() - retained.len()) as u64;

        let tmp_path = self.path.with_extension("rewrite");
        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(&encode_header(lsn))?;
        for rec in &retained {
            tmp.write_all(&encode_frame(rec))?;
        }
        tmp.sync_data()?;
        std::fs::rename(&tmp_path, &self.path)?;
        // The rename is only crash-durable once the directory entry is
        // synced; without this the pre-GC file can reappear after a
        // crash, resurrecting records above the low-water mark.
        sync_parent_dir(&self.path)?;
        tmp.seek(SeekFrom::End(0))?;

        // Commit: disk now holds the post-GC image.
        self.file = tmp;
        self.durable = retained;
        self.stats.truncated += dropped;
        self.low_water = lsn;
        Ok(())
    }

    fn low_water_mark(&self) -> Lsn {
        self.low_water
    }

    fn next_lsn(&self) -> Lsn {
        self.next
    }

    fn stats(&self) -> WalStats {
        self.stats
    }

    fn lose_unflushed(&mut self) -> Result<usize, WalError> {
        self.simulate_crash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use acp_types::TxnId;

    fn end(t: u64) -> LogPayload {
        LogPayload::End { txn: TxnId::new(t) }
    }

    #[test]
    fn create_append_reopen() {
        let dir = TempDir::new("filelog").unwrap();
        let path = dir.path().join("wal");
        {
            let mut log = FileLog::create(&path).unwrap();
            log.append(end(1), true).unwrap();
            log.append(end(2), false).unwrap();
            log.flush().unwrap();
        }
        let log = FileLog::open(&path).unwrap();
        let recs = log.records().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].payload, end(1));
        assert_eq!(log.next_lsn(), Lsn(2));
    }

    #[test]
    fn unflushed_records_lost_on_reopen() {
        let dir = TempDir::new("filelog").unwrap();
        let path = dir.path().join("wal");
        {
            let mut log = FileLog::create(&path).unwrap();
            log.append(end(1), true).unwrap();
            log.append(end(2), false).unwrap();
            // dropped without flush — record 2 was never written
        }
        let log = FileLog::open(&path).unwrap();
        assert_eq!(log.records().unwrap().len(), 1);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = TempDir::new("filelog").unwrap();
        let path = dir.path().join("wal");
        {
            let mut log = FileLog::create(&path).unwrap();
            log.append(end(1), true).unwrap();
            log.append(end(2), true).unwrap();
        }
        // Chop bytes off the tail to simulate a torn write.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let log = FileLog::open(&path).unwrap();
        let recs = log.records().unwrap();
        assert_eq!(recs.len(), 1, "torn second record dropped");
        assert_eq!(log.next_lsn(), Lsn(1));
    }

    #[test]
    fn simulate_crash_loses_pending() {
        let dir = TempDir::new("filelog").unwrap();
        let mut log = FileLog::create(dir.path().join("wal")).unwrap();
        log.append(end(1), true).unwrap();
        log.append(end(2), false).unwrap();
        assert_eq!(log.simulate_crash().unwrap(), 1);
        assert_eq!(log.records().unwrap().len(), 1);
        assert_eq!(log.next_lsn(), Lsn(1));
    }

    #[test]
    fn truncate_physically_shrinks_file() {
        let dir = TempDir::new("filelog").unwrap();
        let path = dir.path().join("wal");
        let mut log = FileLog::create(&path).unwrap();
        for i in 0..20 {
            log.append(end(i), true).unwrap();
        }
        let big = std::fs::metadata(&path).unwrap().len();
        log.truncate_prefix(Lsn(15)).unwrap();
        let small = std::fs::metadata(&path).unwrap().len();
        assert!(small < big, "{small} !< {big}");
        assert_eq!(log.records().unwrap().len(), 5);

        // Low-water mark survives reopen.
        drop(log);
        let log = FileLog::open(&path).unwrap();
        assert_eq!(log.low_water_mark(), Lsn(15));
        assert_eq!(log.next_lsn(), Lsn(20));
    }

    #[test]
    fn stale_rewrite_sibling_is_removed_on_open() {
        // A crash between writing `wal.rewrite` and the rename leaves a
        // stale sibling. Before the fix, `open` ignored it and the next
        // GC opened it with truncate(true), silently discarding it.
        let dir = TempDir::new("filelog-stale").unwrap();
        let path = dir.path().join("wal");
        {
            let mut log = FileLog::create(&path).unwrap();
            for i in 0..6 {
                log.append(end(i), true).unwrap();
            }
        }
        // Fabricate the crash artifact: a half-written rewrite sibling.
        let stale = path.with_extension("rewrite");
        std::fs::write(&stale, b"half-written rewrite from a crashed GC").unwrap();

        let mut log = FileLog::open(&path).unwrap();
        assert!(!stale.exists(), "open must clear the stale .rewrite");
        assert_eq!(log.records().unwrap().len(), 6, "main log untouched");
        // GC proceeds normally with the sibling gone.
        log.truncate_prefix(Lsn(4)).unwrap();
        assert_eq!(log.records().unwrap().len(), 2);
        assert!(!stale.exists(), "successful GC leaves no sibling behind");
    }

    #[test]
    fn failed_truncate_leaves_memory_and_disk_consistent() {
        // Inject a rewrite failure by squatting a *directory* on the
        // `.rewrite` path: opening it as a file fails with EISDIR.
        // Before the fix, `durable`/`stats`/`low_water` were already
        // mutated by then, leaving memory claiming a GC that disk never
        // performed.
        let dir = TempDir::new("filelog-gcfail").unwrap();
        let path = dir.path().join("wal");
        let mut log = FileLog::create(&path).unwrap();
        for i in 0..8 {
            log.append(end(i), true).unwrap();
        }
        let before_stats = log.stats();
        std::fs::create_dir(path.with_extension("rewrite")).unwrap();

        let err = log.truncate_prefix(Lsn(5)).unwrap_err();
        assert!(matches!(err, WalError::Io(_)), "expected I/O error, got {err:?}");
        // Nothing moved: the failed GC is invisible.
        assert_eq!(log.records().unwrap().len(), 8);
        assert_eq!(log.low_water_mark(), Lsn::ZERO);
        assert_eq!(log.stats().truncated, before_stats.truncated);
        // The log keeps working, and disk agrees with memory on reopen.
        log.append(end(100), true).unwrap();
        drop(log);
        std::fs::remove_dir(path.with_extension("rewrite")).unwrap();
        let mut log = FileLog::open(&path).unwrap();
        assert_eq!(log.records().unwrap().len(), 9);
        assert_eq!(log.low_water_mark(), Lsn::ZERO);
        // With the obstruction gone the retried GC succeeds.
        log.truncate_prefix(Lsn(5)).unwrap();
        assert_eq!(log.records().unwrap().len(), 4);
        assert_eq!(log.low_water_mark(), Lsn(5));
    }

    #[test]
    fn reopen_after_gc_sees_post_gc_image() {
        // End-to-end: GC, then a "crash" (drop without flush), then
        // reopen. The post-GC image — and only it — must be visible:
        // no resurrected pre-GC records, preserved low-water mark.
        let dir = TempDir::new("filelog-gcreopen").unwrap();
        let path = dir.path().join("wal");
        let mut log = FileLog::create(&path).unwrap();
        for i in 0..10 {
            log.append(end(i), true).unwrap();
        }
        log.truncate_prefix(Lsn(7)).unwrap();
        drop(log);
        let log = FileLog::open(&path).unwrap();
        assert_eq!(log.low_water_mark(), Lsn(7));
        let recs = log.records().unwrap();
        assert_eq!(recs.len(), 3);
        assert!(recs.iter().all(|r| r.lsn >= Lsn(7)), "no resurrected records");
    }

    #[test]
    fn appends_continue_after_truncate_and_reopen() {
        let dir = TempDir::new("filelog").unwrap();
        let path = dir.path().join("wal");
        let mut log = FileLog::create(&path).unwrap();
        for i in 0..5 {
            log.append(end(i), true).unwrap();
        }
        log.truncate_prefix(Lsn(5)).unwrap(); // empty log, low_water 5
        log.append(end(100), true).unwrap();
        drop(log);
        let log = FileLog::open(&path).unwrap();
        let recs = log.records().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].lsn, Lsn(5));
    }
}
