//! In-memory stable log with explicit crash semantics, for the
//! deterministic simulator and the model checker.
//!
//! "Stable" here means: records survive [`MemLog::crash`]. A force (or
//! flush) moves buffered records to the durable region; a crash discards
//! whatever is still buffered — exactly the stable-storage model the
//! paper's proofs assume ("a force-write ensures that a log record is
//! written into a stable storage that survives system failures").

use crate::encode::encode_payload;
use crate::error::WalError;
use crate::record::{LogRecord, Lsn, WalStats};
use crate::StableLog;
use acp_types::LogPayload;
use std::collections::VecDeque;

/// Per-record framing overhead used for byte accounting (magic + length
/// + lsn + forced + crc), matching [`crate::encode::encode_frame`].
const FRAME_OVERHEAD: u64 = 21;

/// An in-memory log with durable and volatile (buffered) regions.
#[derive(Clone, Debug, Default)]
pub struct MemLog {
    /// Durable records, oldest first. Front LSN equals `low_water`.
    durable: VecDeque<LogRecord>,
    /// Appended but not yet forced; lost on crash.
    buffered: Vec<LogRecord>,
    /// Smallest retained LSN.
    low_water: Lsn,
    /// LSN for the next append.
    next: Lsn,
    stats: WalStats,
}

impl MemLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulate a crash: every buffered (non-forced) record is lost.
    /// Returns how many records were lost.
    pub fn crash(&mut self) -> usize {
        let lost = self.buffered.len();
        self.stats.lost_on_crash += lost as u64;
        self.buffered.clear();
        // LSNs of lost records are reused: the writer that appended them
        // never learned they were durable, and after recovery appends
        // continue from the durable tail (as a real WAL would).
        self.next = self.durable.back().map_or(self.low_water, |r| r.lsn.next());
        lost
    }

    /// Number of durable records currently retained (not yet truncated).
    #[must_use]
    pub fn retained(&self) -> usize {
        self.durable.len()
    }

    /// Approximate bytes retained in the durable region, using the same
    /// framing overhead as the file log. This is the measurement used in
    /// the Theorem 2 experiment (log that can never be garbage
    /// collected).
    #[must_use]
    pub fn retained_bytes(&self) -> u64 {
        self.durable
            .iter()
            .map(|r| encode_payload(&r.payload).len() as u64 + FRAME_OVERHEAD)
            .sum()
    }

    /// All records including the still-buffered (not yet durable) tail
    /// — an observational view for tests and trace assertions; recovery
    /// must use [`StableLog::records`] instead.
    #[must_use]
    pub fn all_records(&self) -> Vec<LogRecord> {
        self.durable
            .iter()
            .chain(self.buffered.iter())
            .cloned()
            .collect()
    }

    fn make_durable(&mut self) {
        for rec in self.buffered.drain(..) {
            self.stats.durable_bytes += encode_payload(&rec.payload).len() as u64 + FRAME_OVERHEAD;
            self.durable.push_back(rec);
        }
    }
}

impl StableLog for MemLog {
    fn append(&mut self, payload: LogPayload, force: bool) -> Result<Lsn, WalError> {
        let lsn = self.next;
        self.next = self.next.next();
        self.stats.appends += 1;
        self.buffered.push(LogRecord {
            lsn,
            forced: force,
            payload,
        });
        if force {
            self.stats.forces += 1;
            self.make_durable();
        }
        Ok(lsn)
    }

    fn flush(&mut self) -> Result<(), WalError> {
        self.stats.flushes += 1;
        self.make_durable();
        Ok(())
    }

    fn records(&self) -> Result<Vec<LogRecord>, WalError> {
        Ok(self.durable.iter().cloned().collect())
    }

    fn for_each_record(&self, f: &mut dyn FnMut(&LogRecord)) -> Result<(), WalError> {
        for r in &self.durable {
            f(r);
        }
        Ok(())
    }

    fn truncate_prefix(&mut self, lsn: Lsn) -> Result<(), WalError> {
        let high = self.durable.back().map_or(self.low_water, |r| r.lsn.next());
        if lsn < self.low_water || lsn > high {
            return Err(WalError::BadTruncate {
                requested: lsn.raw(),
                low: self.low_water.raw(),
                high: high.raw(),
            });
        }
        while self.durable.front().is_some_and(|r| r.lsn < lsn) {
            self.durable.pop_front();
            self.stats.truncated += 1;
        }
        self.low_water = lsn;
        Ok(())
    }

    fn low_water_mark(&self) -> Lsn {
        self.low_water
    }

    fn next_lsn(&self) -> Lsn {
        self.next
    }

    fn stats(&self) -> WalStats {
        self.stats
    }

    fn lose_unflushed(&mut self) -> Result<usize, WalError> {
        Ok(self.crash())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::TxnId;

    fn end(t: u64) -> LogPayload {
        LogPayload::End { txn: TxnId::new(t) }
    }

    #[test]
    fn forced_records_survive_crash_buffered_do_not() {
        let mut log = MemLog::new();
        log.append(end(1), true).unwrap();
        log.append(end(2), false).unwrap();
        log.append(end(3), false).unwrap();
        assert_eq!(log.crash(), 2);
        let recs = log.records().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].payload, end(1));
        assert_eq!(log.stats().lost_on_crash, 2);
    }

    #[test]
    fn force_flushes_earlier_buffered_records() {
        let mut log = MemLog::new();
        log.append(end(1), false).unwrap();
        log.append(end(2), true).unwrap(); // forces record 1 too
        assert_eq!(log.crash(), 0);
        assert_eq!(log.records().unwrap().len(), 2);
    }

    #[test]
    fn lsns_continue_after_crash_from_durable_tail() {
        let mut log = MemLog::new();
        let l0 = log.append(end(1), true).unwrap();
        let l1 = log.append(end(2), false).unwrap();
        assert_eq!(l1, l0.next());
        log.crash();
        let l1_again = log.append(end(3), true).unwrap();
        assert_eq!(l1_again, l0.next(), "lost LSN is reused after crash");
    }

    #[test]
    fn truncate_bounds_checked() {
        let mut log = MemLog::new();
        log.append(end(1), true).unwrap();
        log.append(end(2), true).unwrap();
        assert!(matches!(
            log.truncate_prefix(Lsn(5)),
            Err(WalError::BadTruncate { .. })
        ));
        log.truncate_prefix(Lsn(1)).unwrap();
        assert!(matches!(
            log.truncate_prefix(Lsn(0)),
            Err(WalError::BadTruncate { .. })
        ));
        assert_eq!(log.retained(), 1);
        // Truncating the whole log is allowed (lsn == next).
        log.truncate_prefix(Lsn(2)).unwrap();
        assert_eq!(log.retained(), 0);
    }

    #[test]
    fn retained_bytes_shrink_on_truncate() {
        let mut log = MemLog::new();
        for i in 0..10 {
            log.append(end(i), true).unwrap();
        }
        let full = log.retained_bytes();
        log.truncate_prefix(Lsn(5)).unwrap();
        assert!(log.retained_bytes() < full);
        assert_eq!(log.stats().truncated, 5);
    }

    #[test]
    fn stats_track_forces_and_flushes() {
        let mut log = MemLog::new();
        log.append(end(1), true).unwrap();
        log.append(end(2), false).unwrap();
        log.flush().unwrap();
        let s = log.stats();
        assert_eq!(s.appends, 2);
        assert_eq!(s.forces, 1);
        assert_eq!(s.flushes, 1);
        assert!(s.durable_bytes > 0);
    }
}
