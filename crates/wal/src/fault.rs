//! Fault-injecting stable log: the hostile-storage counterpart of
//! [`crate::mem::MemLog`].
//!
//! [`FaultyLog`] maintains the *exact byte image* a [`crate::file::FileLog`]
//! would have on disk — 16-byte header followed by CRC32-framed records —
//! but keeps it in memory so tests can corrupt it deterministically. Three
//! fault classes from the paper's §2 failure model are injectable:
//!
//! * **torn writes** ([`Fault::TornTail`]) — a crash mid-`write` leaves a
//!   truncated final record on disk;
//! * **partial fsyncs** ([`Fault::PartialFsync`]) — `fsync` reports
//!   success but only a prefix of the forced batch reached the platter
//!   (lying-disk / dropped-write omission failure);
//! * **bit corruption** ([`Fault::BitFlip`]) — a byte at a configurable
//!   offset is XOR-damaged while the site is down.
//!
//! Faults queue via [`FaultyLog::inject`] and take effect at the next
//! crash (torn tails, bit flips) or the next force/flush (partial
//! fsyncs). [`FaultyLog::crash_and_recover`] then re-runs exactly the
//! scan [`crate::file::FileLog::open`] performs: decode frames until the
//! first torn/corrupt one, keep the longest valid prefix, truncate the
//! rest. The proptest fuzzer in `tests/fuzz_wal.rs` proves that under
//! arbitrary combinations of these faults the scan never accepts a
//! corrupted record.

use crate::encode::{decode_frame, encode_frame, FrameOutcome};
use crate::error::WalError;
use crate::file::{decode_header, encode_header, HEADER_LEN};
use crate::record::{LogRecord, Lsn, WalStats};
use crate::StableLog;
use acp_types::LogPayload;
use std::collections::VecDeque;

/// A storage fault to inject into a [`FaultyLog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Truncate `bytes` off the end of the durable image at the next
    /// crash — a write torn mid-record. Clamped so the header survives
    /// (a torn record never damages previously-synced sectors).
    TornTail {
        /// Number of tail bytes lost.
        bytes: u64,
    },
    /// At the next force/flush, silently drop the last `drop_bytes` of
    /// the batch being written: the fsync returns success but the tail
    /// of the batch never becomes durable. The divergence is only
    /// observable after the next crash, exactly like real lying disks.
    PartialFsync {
        /// Number of batch-tail bytes that never reach stable storage.
        drop_bytes: u64,
    },
    /// XOR the durable byte at `offset` (from the start of the image,
    /// header included) with `mask` at the next crash. A zero mask or an
    /// out-of-range offset is a no-op.
    BitFlip {
        /// Absolute byte offset into the image.
        offset: u64,
        /// XOR mask; at least one set bit to have any effect.
        mask: u8,
    },
}

/// What a crash-plus-recovery observed: how much data the injected
/// faults destroyed and what survived the re-scan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records buffered in volatile memory that the crash discarded.
    pub lost_buffered: usize,
    /// Durable records the fault damage destroyed (believed durable
    /// before the crash, absent after the re-scan).
    pub lost_durable: usize,
    /// Bytes truncated off the image by the re-scan (torn/corrupt tail).
    pub truncated_bytes: u64,
    /// Records that survived recovery.
    pub survivors: usize,
}

/// An in-memory stable log that stores the [`crate::file::FileLog`] byte
/// image and supports deterministic storage-fault injection.
#[derive(Clone, Debug)]
pub struct FaultyLog {
    /// Durable byte image: header + framed records, as FileLog would
    /// have them on disk after the last successful sync.
    image: Vec<u8>,
    /// Encoded frames appended but not yet forced/flushed.
    buffer: Vec<u8>,
    /// Decoded view of `image`'s records (what `records()` serves).
    durable: Vec<LogRecord>,
    /// Records represented in `buffer`.
    pending: Vec<LogRecord>,
    /// Faults waiting for their trigger point.
    queued: VecDeque<Fault>,
    low_water: Lsn,
    next: Lsn,
    stats: WalStats,
    faults_applied: u64,
    /// Model the parent-directory fsync after GC's `rename(tmp, path)`.
    /// `true` (the default) matches the fixed [`crate::file::FileLog`]:
    /// the post-GC image is crash-durable the moment `truncate_prefix`
    /// returns. `false` models the pre-fix bug: the rename lives only in
    /// the dentry cache, and a crash resurrects the pre-GC file.
    durable_gc_rename: bool,
    /// The pre-GC image that a crash would resurrect while the GC rename
    /// is still volatile (`durable_gc_rename == false`).
    pre_gc_image: Option<Vec<u8>>,
    /// When set, the next `truncate_prefix` fails with an injected I/O
    /// error *before* the image swap — the hostile-storage analogue of
    /// an `EIO` mid-rewrite.
    fail_next_gc_rewrite: bool,
}

impl Default for FaultyLog {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultyLog {
    /// An empty log with a fresh header and no queued faults.
    #[must_use]
    pub fn new() -> Self {
        FaultyLog {
            image: encode_header(Lsn::ZERO).to_vec(),
            buffer: Vec::new(),
            durable: Vec::new(),
            pending: Vec::new(),
            queued: VecDeque::new(),
            low_water: Lsn::ZERO,
            next: Lsn::ZERO,
            stats: WalStats::default(),
            faults_applied: 0,
            durable_gc_rename: true,
            pre_gc_image: None,
            fail_next_gc_rewrite: false,
        }
    }

    /// Model (or un-model) the missing parent-directory fsync after GC's
    /// rename. With `false`, a `truncate_prefix` followed by a crash
    /// resurrects the pre-GC image — the exact bug the directory sync in
    /// [`crate::file::FileLog::truncate_prefix`] exists to prevent.
    pub fn set_durable_gc_rename(&mut self, durable: bool) {
        self.durable_gc_rename = durable;
    }

    /// Make the next `truncate_prefix` fail with an injected I/O error
    /// before any state changes, so tests can prove the error path
    /// leaves memory and (simulated) disk consistent.
    pub fn fail_next_gc_rewrite(&mut self) {
        self.fail_next_gc_rewrite = true;
    }

    /// Queue a fault. Torn tails and bit flips fire at the next
    /// [`FaultyLog::crash_and_recover`]; partial fsyncs fire at the next
    /// force/flush.
    pub fn inject(&mut self, fault: Fault) {
        self.queued.push_back(fault);
    }

    /// Number of faults that have actually fired so far.
    #[must_use]
    pub fn faults_applied(&self) -> u64 {
        self.faults_applied
    }

    /// The durable byte image (exactly what a `FileLog` file would
    /// contain). Tests use this to cross-check against real file damage.
    #[must_use]
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    fn take_partial_fsync(&mut self) -> u64 {
        let mut drop_total = 0;
        let mut rest = VecDeque::new();
        for f in self.queued.drain(..) {
            match f {
                Fault::PartialFsync { drop_bytes } => {
                    drop_total += drop_bytes;
                    self.faults_applied += 1;
                }
                other => rest.push_back(other),
            }
        }
        self.queued = rest;
        drop_total
    }

    fn write_out(&mut self) -> Result<(), WalError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let drop_bytes = self.take_partial_fsync();
        let keep = self.buffer.len().saturating_sub(
            usize::try_from(drop_bytes).unwrap_or(usize::MAX),
        );
        // The *caller* believes the whole batch is durable: bookkeeping
        // proceeds as if the sync succeeded. Only the image — what a
        // post-crash scan will see — is short.
        self.image.extend_from_slice(&self.buffer[..keep]);
        self.stats.durable_bytes += self.buffer.len() as u64;
        self.buffer.clear();
        self.durable.append(&mut self.pending);
        Ok(())
    }

    /// Crash the site: lose the volatile buffer, fire every queued torn
    /// tail and bit flip against the image, then recover by re-scanning
    /// for the longest valid record prefix (the same scan
    /// [`crate::file::FileLog::open`] runs). Errors only if the header
    /// itself was corrupted — recoverable damage is reported, not raised.
    pub fn crash_and_recover(&mut self) -> Result<RecoveryReport, WalError> {
        let lost_buffered = self.pending.len();
        self.stats.lost_on_crash += lost_buffered as u64;
        self.buffer.clear();
        self.pending.clear();

        // A GC rename that was never made durable by a directory sync is
        // undone by the crash: the directory still points at the pre-GC
        // file, so the scan below runs against it — resurrecting every
        // record GC believed reclaimed, *and* losing everything appended
        // to the post-rename file since.
        if let Some(old) = self.pre_gc_image.take() {
            self.image = old;
        }

        for f in self.queued.drain(..) {
            match f {
                Fault::TornTail { bytes } => {
                    let floor = HEADER_LEN.min(self.image.len() as u64);
                    let new_len = (self.image.len() as u64).saturating_sub(bytes).max(floor);
                    self.image.truncate(new_len as usize);
                    self.faults_applied += 1;
                }
                Fault::BitFlip { offset, mask } => {
                    if let Ok(off) = usize::try_from(offset) {
                        if off < self.image.len() {
                            self.image[off] ^= mask;
                        }
                    }
                    self.faults_applied += 1;
                }
                // A partial fsync queued but never triggered by a
                // force/flush has nothing to damage: the batch it would
                // have shortened was already lost with the buffer.
                Fault::PartialFsync { .. } => {
                    self.faults_applied += 1;
                }
            }
        }

        let believed = self.durable.len();
        self.low_water = decode_header(&self.image)?;
        let mut survivors = Vec::new();
        let mut offset = HEADER_LEN as usize;
        while offset < self.image.len() {
            match decode_frame(&self.image[offset..], offset as u64)? {
                FrameOutcome::Record(rec, consumed) => {
                    survivors.push(rec);
                    offset += consumed;
                }
                FrameOutcome::Torn => break,
            }
        }
        let truncated_bytes = (self.image.len() - offset) as u64;
        self.image.truncate(offset);
        self.durable = survivors;
        self.next = self
            .durable
            .last()
            .map_or(self.low_water, |r| r.lsn.next());
        Ok(RecoveryReport {
            lost_buffered,
            lost_durable: believed.saturating_sub(self.durable.len()),
            truncated_bytes,
            survivors: self.durable.len(),
        })
    }
}

impl StableLog for FaultyLog {
    fn append(&mut self, payload: LogPayload, force: bool) -> Result<Lsn, WalError> {
        let lsn = self.next;
        self.next = self.next.next();
        self.stats.appends += 1;
        let rec = LogRecord {
            lsn,
            forced: force,
            payload,
        };
        self.buffer.extend_from_slice(&encode_frame(&rec));
        self.pending.push(rec);
        if force {
            self.stats.forces += 1;
            self.write_out()?;
        }
        Ok(lsn)
    }

    fn flush(&mut self) -> Result<(), WalError> {
        self.stats.flushes += 1;
        self.write_out()
    }

    fn records(&self) -> Result<Vec<LogRecord>, WalError> {
        Ok(self.durable.clone())
    }

    fn for_each_record(&self, f: &mut dyn FnMut(&LogRecord)) -> Result<(), WalError> {
        for r in &self.durable {
            f(r);
        }
        Ok(())
    }

    fn truncate_prefix(&mut self, lsn: Lsn) -> Result<(), WalError> {
        let high = self.durable.last().map_or(self.low_water, |r| r.lsn.next());
        if lsn < self.low_water || lsn > high {
            return Err(WalError::BadTruncate {
                requested: lsn.raw(),
                low: self.low_water.raw(),
                high: high.raw(),
            });
        }
        if self.fail_next_gc_rewrite {
            self.fail_next_gc_rewrite = false;
            return Err(WalError::Io(std::io::Error::other(
                "injected gc rewrite failure",
            )));
        }
        // Stage the rewrite the way FileLog's truncate rewrites the file:
        // build the post-GC image first, commit in-memory state only
        // after the "swap" — an injected failure above must leave the
        // log untouched.
        let retained: Vec<LogRecord> = self
            .durable
            .iter()
            .filter(|r| r.lsn >= lsn)
            .cloned()
            .collect();
        let mut new_image = encode_header(lsn).to_vec();
        for rec in &retained {
            new_image.extend_from_slice(&encode_frame(rec));
        }
        if !self.durable_gc_rename {
            // The rename happened but the directory entry was never
            // synced: remember the file a crash would bring back. Only
            // the oldest un-synced image matters — that is what the
            // directory still durably points at.
            if self.pre_gc_image.is_none() {
                self.pre_gc_image = Some(self.image.clone());
            }
        } else {
            self.pre_gc_image = None;
        }
        self.stats.truncated += (self.durable.len() - retained.len()) as u64;
        self.image = new_image;
        self.durable = retained;
        self.low_water = lsn;
        Ok(())
    }

    fn low_water_mark(&self) -> Lsn {
        self.low_water
    }

    fn next_lsn(&self) -> Lsn {
        self.next
    }

    fn stats(&self) -> WalStats {
        self.stats
    }

    fn lose_unflushed(&mut self) -> Result<usize, WalError> {
        Ok(self.crash_and_recover()?.lost_buffered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::FileLog;
    use crate::tempdir::TempDir;
    use acp_types::TxnId;
    use std::io::Write;

    fn end(t: u64) -> LogPayload {
        LogPayload::End { txn: TxnId::new(t) }
    }

    #[test]
    fn image_matches_file_log_bytes() {
        let dir = TempDir::new("faulty-fidelity").unwrap();
        let path = dir.path().join("wal");
        let mut file = FileLog::create(&path).unwrap();
        let mut faulty = FaultyLog::new();
        for i in 0..6 {
            file.append(end(i), i % 2 == 0).unwrap();
            faulty.append(end(i), i % 2 == 0).unwrap();
        }
        file.flush().unwrap();
        faulty.flush().unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(faulty.image(), &on_disk[..], "byte image diverged from FileLog");
    }

    #[test]
    fn torn_tail_matches_real_file_truncation() {
        // Apply the same damage to a FaultyLog image and a real FileLog
        // file; both recoveries must keep exactly the same records.
        for cut in [1u64, 5, 13, 21, 40] {
            let dir = TempDir::new("faulty-torn").unwrap();
            let path = dir.path().join("wal");
            let mut file = FileLog::create(&path).unwrap();
            let mut faulty = FaultyLog::new();
            for i in 0..4 {
                file.append(end(i), true).unwrap();
                faulty.append(end(i), true).unwrap();
            }
            drop(file);
            let len = std::fs::metadata(&path).unwrap().len();
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(len.saturating_sub(cut)).unwrap();
            drop(f);

            faulty.inject(Fault::TornTail { bytes: cut });
            let report = faulty.crash_and_recover().unwrap();
            let reopened = FileLog::open(&path).unwrap();
            assert_eq!(
                faulty.records().unwrap(),
                reopened.records().unwrap(),
                "cut={cut} diverged from FileLog recovery"
            );
            assert_eq!(report.survivors, reopened.records().unwrap().len());
        }
    }

    #[test]
    fn bit_flip_matches_real_file_corruption() {
        // Flip the same byte in both images; surviving prefixes agree.
        let offsets = [16u64, 20, 24, 33, 45, 60, 70];
        for &off in &offsets {
            let dir = TempDir::new("faulty-flip").unwrap();
            let path = dir.path().join("wal");
            let mut file = FileLog::create(&path).unwrap();
            let mut faulty = FaultyLog::new();
            for i in 0..3 {
                file.append(end(i), true).unwrap();
                faulty.append(end(i), true).unwrap();
            }
            drop(file);
            let mut bytes = std::fs::read(&path).unwrap();
            if (off as usize) < bytes.len() {
                bytes[off as usize] ^= 0x40;
                let mut f = std::fs::OpenOptions::new()
                    .write(true)
                    .truncate(true)
                    .open(&path)
                    .unwrap();
                f.write_all(&bytes).unwrap();
            }

            faulty.inject(Fault::BitFlip { offset: off, mask: 0x40 });
            faulty.crash_and_recover().unwrap();
            let reopened = FileLog::open(&path).unwrap();
            assert_eq!(
                faulty.records().unwrap(),
                reopened.records().unwrap(),
                "offset={off} diverged from FileLog recovery"
            );
        }
    }

    #[test]
    fn partial_fsync_drops_forced_batch_tail_only_after_crash() {
        let mut log = FaultyLog::new();
        log.append(end(1), true).unwrap();
        // The next force loses its last 4 bytes of framed data.
        log.inject(Fault::PartialFsync { drop_bytes: 4 });
        log.append(end(2), false).unwrap();
        log.append(end(3), true).unwrap();
        // Before the crash the log *believes* all three are durable —
        // that is the lie a partial fsync tells.
        assert_eq!(log.records().unwrap().len(), 3);

        let report = log.crash_and_recover().unwrap();
        // Record 3's frame lost its tail; record 2 (same batch, earlier
        // bytes) survives.
        assert_eq!(report.survivors, 2);
        assert_eq!(report.lost_durable, 1);
        let recs = log.records().unwrap();
        assert_eq!(recs.last().unwrap().payload, end(2));
        // Recovery is idempotent: a second crash with no new faults
        // changes nothing.
        let again = log.crash_and_recover().unwrap();
        assert_eq!(again.survivors, 2);
        assert_eq!(again.truncated_bytes, 0);
    }

    #[test]
    fn mid_log_bit_flip_truncates_to_longest_valid_prefix() {
        let mut log = FaultyLog::new();
        for i in 0..5 {
            log.append(end(i), true).unwrap();
        }
        // Damage the second record's payload region.
        let second_frame_start = HEADER_LEN + (log.image().len() as u64 - HEADER_LEN) / 5;
        log.inject(Fault::BitFlip {
            offset: second_frame_start + 10,
            mask: 0x01,
        });
        let report = log.crash_and_recover().unwrap();
        assert_eq!(report.survivors, 1, "only the first record is a valid prefix");
        assert_eq!(report.lost_durable, 4);
        assert!(report.truncated_bytes > 0);
        // Appends resume from the surviving tail.
        let lsn = log.append(end(99), true).unwrap();
        assert_eq!(lsn, Lsn(1));
    }

    #[test]
    fn lsns_continue_from_surviving_tail_after_faulty_recovery() {
        let mut log = FaultyLog::new();
        for i in 0..3 {
            log.append(end(i), true).unwrap();
        }
        log.inject(Fault::TornTail { bytes: 3 });
        log.crash_and_recover().unwrap();
        assert_eq!(log.next_lsn(), Lsn(2));
        assert_eq!(log.append(end(7), true).unwrap(), Lsn(2));
        let report = log.crash_and_recover().unwrap();
        assert_eq!(report.survivors, 3);
    }

    #[test]
    fn truncate_prefix_rewrites_image_consistently() {
        let mut log = FaultyLog::new();
        for i in 0..8 {
            log.append(end(i), true).unwrap();
        }
        let full = log.image().len();
        log.truncate_prefix(Lsn(5)).unwrap();
        assert!(log.image().len() < full);
        // The rewritten image must itself recover cleanly.
        let report = log.crash_and_recover().unwrap();
        assert_eq!(report.survivors, 3);
        assert_eq!(log.low_water_mark(), Lsn(5));
    }

    #[test]
    fn volatile_gc_rename_resurrects_pre_gc_records() {
        // The pre-fix FileLog bug, modelled: truncate_prefix renames the
        // rewritten file into place but never fsyncs the directory. A
        // crash then resurrects the pre-GC file — records above the
        // low-water mark come back, and post-GC appends are lost with
        // the orphaned post-rename inode.
        let mut log = FaultyLog::new();
        for i in 0..8 {
            log.append(end(i), true).unwrap();
        }
        log.set_durable_gc_rename(false);
        log.truncate_prefix(Lsn(5)).unwrap();
        assert_eq!(log.records().unwrap().len(), 3, "GC looks fine pre-crash");
        log.append(end(100), true).unwrap();

        let report = log.crash_and_recover().unwrap();
        // Resurrection: all 8 pre-GC records are back, the appended
        // record is gone, and the low-water mark rolled backwards.
        assert_eq!(report.survivors, 8);
        assert_eq!(log.low_water_mark(), Lsn::ZERO);
        assert!(log.records().unwrap().iter().all(|r| r.lsn < Lsn(8)));
    }

    #[test]
    fn durable_gc_rename_survives_crash() {
        // With the directory sync (the fix, and the default), a crash
        // right after truncate_prefix must see exactly the post-GC
        // image: same records a real FileLog reopen yields.
        let dir = TempDir::new("faulty-gc-crash").unwrap();
        let path = dir.path().join("wal");
        let mut file = FileLog::create(&path).unwrap();
        let mut faulty = FaultyLog::new();
        for i in 0..8 {
            file.append(end(i), true).unwrap();
            faulty.append(end(i), true).unwrap();
        }
        file.truncate_prefix(Lsn(5)).unwrap();
        faulty.truncate_prefix(Lsn(5)).unwrap();

        let report = faulty.crash_and_recover().unwrap();
        assert_eq!(report.survivors, 3);
        assert_eq!(report.lost_durable, 0);
        assert_eq!(faulty.low_water_mark(), Lsn(5));

        drop(file);
        let reopened = FileLog::open(&path).unwrap();
        assert_eq!(
            faulty.records().unwrap(),
            reopened.records().unwrap(),
            "post-GC crash recovery diverged from FileLog reopen"
        );
        assert_eq!(reopened.low_water_mark(), Lsn(5));
    }

    #[test]
    fn injected_gc_rewrite_failure_leaves_state_unchanged() {
        let mut log = FaultyLog::new();
        for i in 0..6 {
            log.append(end(i), true).unwrap();
        }
        let image_before = log.image().to_vec();
        let stats_before = log.stats();
        log.fail_next_gc_rewrite();
        let err = log.truncate_prefix(Lsn(4)).unwrap_err();
        assert!(matches!(err, WalError::Io(_)));
        assert_eq!(log.records().unwrap().len(), 6);
        assert_eq!(log.low_water_mark(), Lsn::ZERO);
        assert_eq!(log.image(), &image_before[..], "image untouched by failed GC");
        assert_eq!(log.stats().truncated, stats_before.truncated);
        // The failure is one-shot: the retry succeeds and recovers clean.
        log.truncate_prefix(Lsn(4)).unwrap();
        let report = log.crash_and_recover().unwrap();
        assert_eq!(report.survivors, 2);
        assert_eq!(log.low_water_mark(), Lsn(4));
    }

    #[test]
    fn header_corruption_is_fatal() {
        let mut log = FaultyLog::new();
        log.append(end(1), true).unwrap();
        log.inject(Fault::BitFlip { offset: 0, mask: 0xFF });
        assert!(log.crash_and_recover().is_err());
    }
}
