//! Fault-injecting stable log: the hostile-storage counterpart of
//! [`crate::mem::MemLog`].
//!
//! [`FaultyLog`] maintains the *exact byte image* a [`crate::file::FileLog`]
//! would have on disk — 16-byte header followed by CRC32-framed records —
//! but keeps it in memory so tests can corrupt it deterministically. Three
//! fault classes from the paper's §2 failure model are injectable:
//!
//! * **torn writes** ([`Fault::TornTail`]) — a crash mid-`write` leaves a
//!   truncated final record on disk;
//! * **partial fsyncs** ([`Fault::PartialFsync`]) — `fsync` reports
//!   success but only a prefix of the forced batch reached the platter
//!   (lying-disk / dropped-write omission failure);
//! * **bit corruption** ([`Fault::BitFlip`]) — a byte at a configurable
//!   offset is XOR-damaged while the site is down.
//!
//! Faults queue via [`FaultyLog::inject`] and take effect at the next
//! crash (torn tails, bit flips) or the next force/flush (partial
//! fsyncs). [`FaultyLog::crash_and_recover`] then re-runs exactly the
//! scan [`crate::file::FileLog::open`] performs: decode frames until the
//! first torn/corrupt one, keep the longest valid prefix, truncate the
//! rest. The proptest fuzzer in `tests/fuzz_wal.rs` proves that under
//! arbitrary combinations of these faults the scan never accepts a
//! corrupted record.

use crate::encode::{decode_frame, encode_frame, FrameOutcome};
use crate::error::WalError;
use crate::file::{decode_header, encode_header, HEADER_LEN};
use crate::record::{LogRecord, Lsn, WalStats};
use crate::StableLog;
use acp_types::LogPayload;
use std::collections::VecDeque;

/// A storage fault to inject into a [`FaultyLog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Truncate `bytes` off the end of the durable image at the next
    /// crash — a write torn mid-record. Clamped so the header survives
    /// (a torn record never damages previously-synced sectors).
    TornTail {
        /// Number of tail bytes lost.
        bytes: u64,
    },
    /// At the next force/flush, silently drop the last `drop_bytes` of
    /// the batch being written: the fsync returns success but the tail
    /// of the batch never becomes durable. The divergence is only
    /// observable after the next crash, exactly like real lying disks.
    PartialFsync {
        /// Number of batch-tail bytes that never reach stable storage.
        drop_bytes: u64,
    },
    /// XOR the durable byte at `offset` (from the start of the image,
    /// header included) with `mask` at the next crash. A zero mask or an
    /// out-of-range offset is a no-op.
    BitFlip {
        /// Absolute byte offset into the image.
        offset: u64,
        /// XOR mask; at least one set bit to have any effect.
        mask: u8,
    },
}

/// What a crash-plus-recovery observed: how much data the injected
/// faults destroyed and what survived the re-scan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records buffered in volatile memory that the crash discarded.
    pub lost_buffered: usize,
    /// Durable records the fault damage destroyed (believed durable
    /// before the crash, absent after the re-scan).
    pub lost_durable: usize,
    /// Bytes truncated off the image by the re-scan (torn/corrupt tail).
    pub truncated_bytes: u64,
    /// Records that survived recovery.
    pub survivors: usize,
}

/// An in-memory stable log that stores the [`crate::file::FileLog`] byte
/// image and supports deterministic storage-fault injection.
#[derive(Clone, Debug)]
pub struct FaultyLog {
    /// Durable byte image: header + framed records, as FileLog would
    /// have them on disk after the last successful sync.
    image: Vec<u8>,
    /// Encoded frames appended but not yet forced/flushed.
    buffer: Vec<u8>,
    /// Decoded view of `image`'s records (what `records()` serves).
    durable: Vec<LogRecord>,
    /// Records represented in `buffer`.
    pending: Vec<LogRecord>,
    /// Faults waiting for their trigger point.
    queued: VecDeque<Fault>,
    low_water: Lsn,
    next: Lsn,
    stats: WalStats,
    faults_applied: u64,
}

impl Default for FaultyLog {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultyLog {
    /// An empty log with a fresh header and no queued faults.
    #[must_use]
    pub fn new() -> Self {
        FaultyLog {
            image: encode_header(Lsn::ZERO).to_vec(),
            buffer: Vec::new(),
            durable: Vec::new(),
            pending: Vec::new(),
            queued: VecDeque::new(),
            low_water: Lsn::ZERO,
            next: Lsn::ZERO,
            stats: WalStats::default(),
            faults_applied: 0,
        }
    }

    /// Queue a fault. Torn tails and bit flips fire at the next
    /// [`FaultyLog::crash_and_recover`]; partial fsyncs fire at the next
    /// force/flush.
    pub fn inject(&mut self, fault: Fault) {
        self.queued.push_back(fault);
    }

    /// Number of faults that have actually fired so far.
    #[must_use]
    pub fn faults_applied(&self) -> u64 {
        self.faults_applied
    }

    /// The durable byte image (exactly what a `FileLog` file would
    /// contain). Tests use this to cross-check against real file damage.
    #[must_use]
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    fn take_partial_fsync(&mut self) -> u64 {
        let mut drop_total = 0;
        let mut rest = VecDeque::new();
        for f in self.queued.drain(..) {
            match f {
                Fault::PartialFsync { drop_bytes } => {
                    drop_total += drop_bytes;
                    self.faults_applied += 1;
                }
                other => rest.push_back(other),
            }
        }
        self.queued = rest;
        drop_total
    }

    fn write_out(&mut self) -> Result<(), WalError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let drop_bytes = self.take_partial_fsync();
        let keep = self.buffer.len().saturating_sub(
            usize::try_from(drop_bytes).unwrap_or(usize::MAX),
        );
        // The *caller* believes the whole batch is durable: bookkeeping
        // proceeds as if the sync succeeded. Only the image — what a
        // post-crash scan will see — is short.
        self.image.extend_from_slice(&self.buffer[..keep]);
        self.stats.durable_bytes += self.buffer.len() as u64;
        self.buffer.clear();
        self.durable.append(&mut self.pending);
        Ok(())
    }

    /// Crash the site: lose the volatile buffer, fire every queued torn
    /// tail and bit flip against the image, then recover by re-scanning
    /// for the longest valid record prefix (the same scan
    /// [`crate::file::FileLog::open`] runs). Errors only if the header
    /// itself was corrupted — recoverable damage is reported, not raised.
    pub fn crash_and_recover(&mut self) -> Result<RecoveryReport, WalError> {
        let lost_buffered = self.pending.len();
        self.stats.lost_on_crash += lost_buffered as u64;
        self.buffer.clear();
        self.pending.clear();

        for f in self.queued.drain(..) {
            match f {
                Fault::TornTail { bytes } => {
                    let floor = HEADER_LEN.min(self.image.len() as u64);
                    let new_len = (self.image.len() as u64).saturating_sub(bytes).max(floor);
                    self.image.truncate(new_len as usize);
                    self.faults_applied += 1;
                }
                Fault::BitFlip { offset, mask } => {
                    if let Ok(off) = usize::try_from(offset) {
                        if off < self.image.len() {
                            self.image[off] ^= mask;
                        }
                    }
                    self.faults_applied += 1;
                }
                // A partial fsync queued but never triggered by a
                // force/flush has nothing to damage: the batch it would
                // have shortened was already lost with the buffer.
                Fault::PartialFsync { .. } => {
                    self.faults_applied += 1;
                }
            }
        }

        let believed = self.durable.len();
        self.low_water = decode_header(&self.image)?;
        let mut survivors = Vec::new();
        let mut offset = HEADER_LEN as usize;
        while offset < self.image.len() {
            match decode_frame(&self.image[offset..], offset as u64)? {
                FrameOutcome::Record(rec, consumed) => {
                    survivors.push(rec);
                    offset += consumed;
                }
                FrameOutcome::Torn => break,
            }
        }
        let truncated_bytes = (self.image.len() - offset) as u64;
        self.image.truncate(offset);
        self.durable = survivors;
        self.next = self
            .durable
            .last()
            .map_or(self.low_water, |r| r.lsn.next());
        Ok(RecoveryReport {
            lost_buffered,
            lost_durable: believed.saturating_sub(self.durable.len()),
            truncated_bytes,
            survivors: self.durable.len(),
        })
    }
}

impl StableLog for FaultyLog {
    fn append(&mut self, payload: LogPayload, force: bool) -> Result<Lsn, WalError> {
        let lsn = self.next;
        self.next = self.next.next();
        self.stats.appends += 1;
        let rec = LogRecord {
            lsn,
            forced: force,
            payload,
        };
        self.buffer.extend_from_slice(&encode_frame(&rec));
        self.pending.push(rec);
        if force {
            self.stats.forces += 1;
            self.write_out()?;
        }
        Ok(lsn)
    }

    fn flush(&mut self) -> Result<(), WalError> {
        self.stats.flushes += 1;
        self.write_out()
    }

    fn records(&self) -> Result<Vec<LogRecord>, WalError> {
        Ok(self.durable.clone())
    }

    fn for_each_record(&self, f: &mut dyn FnMut(&LogRecord)) -> Result<(), WalError> {
        for r in &self.durable {
            f(r);
        }
        Ok(())
    }

    fn truncate_prefix(&mut self, lsn: Lsn) -> Result<(), WalError> {
        let high = self.durable.last().map_or(self.low_water, |r| r.lsn.next());
        if lsn < self.low_water || lsn > high {
            return Err(WalError::BadTruncate {
                requested: lsn.raw(),
                low: self.low_water.raw(),
                high: high.raw(),
            });
        }
        let before = self.durable.len();
        self.durable.retain(|r| r.lsn >= lsn);
        self.stats.truncated += (before - self.durable.len()) as u64;
        self.low_water = lsn;
        // Rewrite the image the way FileLog's truncate rewrites the file.
        self.image.clear();
        self.image.extend_from_slice(&encode_header(self.low_water));
        for rec in &self.durable {
            self.image.extend_from_slice(&encode_frame(rec));
        }
        Ok(())
    }

    fn low_water_mark(&self) -> Lsn {
        self.low_water
    }

    fn next_lsn(&self) -> Lsn {
        self.next
    }

    fn stats(&self) -> WalStats {
        self.stats
    }

    fn lose_unflushed(&mut self) -> Result<usize, WalError> {
        Ok(self.crash_and_recover()?.lost_buffered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::FileLog;
    use crate::tempdir::TempDir;
    use acp_types::TxnId;
    use std::io::Write;

    fn end(t: u64) -> LogPayload {
        LogPayload::End { txn: TxnId::new(t) }
    }

    #[test]
    fn image_matches_file_log_bytes() {
        let dir = TempDir::new("faulty-fidelity").unwrap();
        let path = dir.path().join("wal");
        let mut file = FileLog::create(&path).unwrap();
        let mut faulty = FaultyLog::new();
        for i in 0..6 {
            file.append(end(i), i % 2 == 0).unwrap();
            faulty.append(end(i), i % 2 == 0).unwrap();
        }
        file.flush().unwrap();
        faulty.flush().unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(faulty.image(), &on_disk[..], "byte image diverged from FileLog");
    }

    #[test]
    fn torn_tail_matches_real_file_truncation() {
        // Apply the same damage to a FaultyLog image and a real FileLog
        // file; both recoveries must keep exactly the same records.
        for cut in [1u64, 5, 13, 21, 40] {
            let dir = TempDir::new("faulty-torn").unwrap();
            let path = dir.path().join("wal");
            let mut file = FileLog::create(&path).unwrap();
            let mut faulty = FaultyLog::new();
            for i in 0..4 {
                file.append(end(i), true).unwrap();
                faulty.append(end(i), true).unwrap();
            }
            drop(file);
            let len = std::fs::metadata(&path).unwrap().len();
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(len.saturating_sub(cut)).unwrap();
            drop(f);

            faulty.inject(Fault::TornTail { bytes: cut });
            let report = faulty.crash_and_recover().unwrap();
            let reopened = FileLog::open(&path).unwrap();
            assert_eq!(
                faulty.records().unwrap(),
                reopened.records().unwrap(),
                "cut={cut} diverged from FileLog recovery"
            );
            assert_eq!(report.survivors, reopened.records().unwrap().len());
        }
    }

    #[test]
    fn bit_flip_matches_real_file_corruption() {
        // Flip the same byte in both images; surviving prefixes agree.
        let offsets = [16u64, 20, 24, 33, 45, 60, 70];
        for &off in &offsets {
            let dir = TempDir::new("faulty-flip").unwrap();
            let path = dir.path().join("wal");
            let mut file = FileLog::create(&path).unwrap();
            let mut faulty = FaultyLog::new();
            for i in 0..3 {
                file.append(end(i), true).unwrap();
                faulty.append(end(i), true).unwrap();
            }
            drop(file);
            let mut bytes = std::fs::read(&path).unwrap();
            if (off as usize) < bytes.len() {
                bytes[off as usize] ^= 0x40;
                let mut f = std::fs::OpenOptions::new()
                    .write(true)
                    .truncate(true)
                    .open(&path)
                    .unwrap();
                f.write_all(&bytes).unwrap();
            }

            faulty.inject(Fault::BitFlip { offset: off, mask: 0x40 });
            faulty.crash_and_recover().unwrap();
            let reopened = FileLog::open(&path).unwrap();
            assert_eq!(
                faulty.records().unwrap(),
                reopened.records().unwrap(),
                "offset={off} diverged from FileLog recovery"
            );
        }
    }

    #[test]
    fn partial_fsync_drops_forced_batch_tail_only_after_crash() {
        let mut log = FaultyLog::new();
        log.append(end(1), true).unwrap();
        // The next force loses its last 4 bytes of framed data.
        log.inject(Fault::PartialFsync { drop_bytes: 4 });
        log.append(end(2), false).unwrap();
        log.append(end(3), true).unwrap();
        // Before the crash the log *believes* all three are durable —
        // that is the lie a partial fsync tells.
        assert_eq!(log.records().unwrap().len(), 3);

        let report = log.crash_and_recover().unwrap();
        // Record 3's frame lost its tail; record 2 (same batch, earlier
        // bytes) survives.
        assert_eq!(report.survivors, 2);
        assert_eq!(report.lost_durable, 1);
        let recs = log.records().unwrap();
        assert_eq!(recs.last().unwrap().payload, end(2));
        // Recovery is idempotent: a second crash with no new faults
        // changes nothing.
        let again = log.crash_and_recover().unwrap();
        assert_eq!(again.survivors, 2);
        assert_eq!(again.truncated_bytes, 0);
    }

    #[test]
    fn mid_log_bit_flip_truncates_to_longest_valid_prefix() {
        let mut log = FaultyLog::new();
        for i in 0..5 {
            log.append(end(i), true).unwrap();
        }
        // Damage the second record's payload region.
        let second_frame_start = HEADER_LEN + (log.image().len() as u64 - HEADER_LEN) / 5;
        log.inject(Fault::BitFlip {
            offset: second_frame_start + 10,
            mask: 0x01,
        });
        let report = log.crash_and_recover().unwrap();
        assert_eq!(report.survivors, 1, "only the first record is a valid prefix");
        assert_eq!(report.lost_durable, 4);
        assert!(report.truncated_bytes > 0);
        // Appends resume from the surviving tail.
        let lsn = log.append(end(99), true).unwrap();
        assert_eq!(lsn, Lsn(1));
    }

    #[test]
    fn lsns_continue_from_surviving_tail_after_faulty_recovery() {
        let mut log = FaultyLog::new();
        for i in 0..3 {
            log.append(end(i), true).unwrap();
        }
        log.inject(Fault::TornTail { bytes: 3 });
        log.crash_and_recover().unwrap();
        assert_eq!(log.next_lsn(), Lsn(2));
        assert_eq!(log.append(end(7), true).unwrap(), Lsn(2));
        let report = log.crash_and_recover().unwrap();
        assert_eq!(report.survivors, 3);
    }

    #[test]
    fn truncate_prefix_rewrites_image_consistently() {
        let mut log = FaultyLog::new();
        for i in 0..8 {
            log.append(end(i), true).unwrap();
        }
        let full = log.image().len();
        log.truncate_prefix(Lsn(5)).unwrap();
        assert!(log.image().len() < full);
        // The rewritten image must itself recover cleanly.
        let report = log.crash_and_recover().unwrap();
        assert_eq!(report.survivors, 3);
        assert_eq!(log.low_water_mark(), Lsn(5));
    }

    #[test]
    fn header_corruption_is_fatal() {
        let mut log = FaultyLog::new();
        log.append(end(1), true).unwrap();
        log.inject(Fault::BitFlip { offset: 0, mask: 0xFF });
        assert!(log.crash_and_recover().is_err());
    }
}
