//! Log sequence numbers, materialized records and WAL statistics.

use acp_types::LogPayload;
use std::fmt;

/// Log sequence number: the position of a record in its log.
///
/// LSNs are dense (0, 1, 2, …) within one log and never reused, even
/// after garbage collection truncates a prefix.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The first LSN of an empty log.
    pub const ZERO: Lsn = Lsn(0);

    /// The raw sequence value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The next LSN.
    #[must_use]
    pub const fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A record as stored in (and scanned back from) a log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogRecord {
    /// Position in the log.
    pub lsn: Lsn,
    /// Whether the record was appended with `force = true`. Retained for
    /// trace/cost verification; has no semantic effect once durable.
    pub forced: bool,
    /// The payload.
    pub payload: LogPayload,
}

impl fmt::Display for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let marker = if self.forced { "F" } else { " " };
        write!(f, "[{:>4}{}] {}", self.lsn, marker, self.payload)
    }
}

/// Operational statistics for a log.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WalStats {
    /// Records appended (durable or not yet).
    pub appends: u64,
    /// Appends that requested a force.
    pub forces: u64,
    /// Explicit flushes (not counting those implied by forces).
    pub flushes: u64,
    /// Encoded bytes made durable.
    pub durable_bytes: u64,
    /// Records discarded because a crash hit before they were forced.
    pub lost_on_crash: u64,
    /// Records reclaimed by prefix truncation.
    pub truncated: u64,
}

impl fmt::Display for WalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "appends={} forces={} flushes={} bytes={} lost={} truncated={}",
            self.appends,
            self.forces,
            self.flushes,
            self.durable_bytes,
            self.lost_on_crash,
            self.truncated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::TxnId;

    #[test]
    fn lsn_ordering_and_next() {
        assert!(Lsn::ZERO < Lsn::ZERO.next());
        assert_eq!(Lsn(5).next(), Lsn(6));
        assert_eq!(format!("{:?}", Lsn(7)), "lsn:7");
    }

    #[test]
    fn record_display_marks_forced() {
        let r = LogRecord {
            lsn: Lsn(3),
            forced: true,
            payload: LogPayload::End { txn: TxnId::new(1) },
        };
        assert!(r.to_string().contains("3F"));
        let r = LogRecord { forced: false, ..r };
        assert!(!r.to_string().contains("3F"));
    }
}
