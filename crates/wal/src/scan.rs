//! Log analysis: per-transaction summaries of what a log records.
//!
//! §4.2 defines coordinator recovery entirely in terms of which records
//! a transaction has ("For each transaction that has a decision log
//! record without an initiation record …"); participant and engine
//! recovery need the same view. [`analyze`] builds it in one pass.

use crate::record::LogRecord;
use acp_types::{CommitMode, LogPayload, Outcome, ParticipantEntry, SiteId, TxnId};
use std::collections::BTreeMap;

/// A data update image: `(key, before, after)`.
pub type UpdateImage = (Vec<u8>, Option<Vec<u8>>, Option<Vec<u8>>);

/// A checkpoint snapshot entry list, as stored in the record.
pub type CheckpointEntries = [(Vec<u8>, Vec<u8>)];

/// Everything one log says about one transaction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TxnLogSummary {
    // ----- coordinator-side records -----
    /// The initiation record, if any (PrC / PrAny coordinators).
    pub initiation: Option<(CommitMode, Vec<ParticipantEntry>)>,
    /// The coordinator decision record, if any.
    pub decision: Option<Outcome>,
    /// Participants recorded in the decision record (PrN/PrA style,
    /// where no initiation record exists).
    pub decision_participants: Vec<ParticipantEntry>,
    /// Whether a coordinator end record exists.
    pub ended: bool,

    // ----- participant-side records -----
    /// The prepared record, if any, with the coordinator to inquire at.
    pub prepared: Option<SiteId>,
    /// The participant decision record, if any.
    pub part_decision: Option<Outcome>,
    /// Whether a participant end record exists.
    pub part_ended: bool,

    // ----- Paxos acceptor records -----
    /// Paxos-Commit acceptances in log order: `(ballot, instances)`.
    /// An empty instance list is a promise-only record. The latest
    /// entry carries the acceptor's current promise/acceptance state.
    pub paxos_accepts: Vec<(u64, Vec<(SiteId, bool)>)>,

    // ----- engine data records -----
    /// Data updates in log order (for redo/undo).
    pub updates: Vec<UpdateImage>,
}

impl TxnLogSummary {
    /// Is this transaction *in doubt* at a participant: prepared but with
    /// no decision on record? Such transactions must hold their locks
    /// and inquire at the coordinator.
    #[must_use]
    pub fn in_doubt(&self) -> bool {
        self.prepared.is_some() && self.part_decision.is_none() && !self.part_ended
    }

    /// Does the coordinator still owe this transaction recovery work
    /// (some protocol record exists but no end record)?
    #[must_use]
    pub fn coordinator_open(&self) -> bool {
        (self.initiation.is_some() || self.decision.is_some()) && !self.ended
    }
}

/// Build per-transaction summaries from a scanned log.
///
/// Returns a `BTreeMap` so iteration order is deterministic (important
/// for the reproducible simulator and the model checker).
#[must_use]
pub fn analyze(records: &[LogRecord]) -> BTreeMap<TxnId, TxnLogSummary> {
    let mut map: BTreeMap<TxnId, TxnLogSummary> = BTreeMap::new();
    for rec in records {
        // Checkpoints belong to no transaction; see [`latest_checkpoint`].
        if matches!(rec.payload, LogPayload::Checkpoint { .. }) {
            continue;
        }
        let entry = map.entry(rec.payload.txn()).or_default();
        match &rec.payload {
            LogPayload::Initiation {
                participants, mode, ..
            } => {
                entry.initiation = Some((*mode, participants.clone()));
            }
            LogPayload::CoordDecision {
                outcome,
                participants,
                ..
            } => {
                entry.decision = Some(*outcome);
                entry.decision_participants = participants.clone();
            }
            LogPayload::End { .. } => entry.ended = true,
            LogPayload::PaxosAccept {
                ballot, instances, ..
            } => entry.paxos_accepts.push((*ballot, instances.clone())),
            LogPayload::Prepared { coordinator, .. } => entry.prepared = Some(*coordinator),
            LogPayload::PartDecision { outcome, .. } => entry.part_decision = Some(*outcome),
            LogPayload::PartEnd { .. } => entry.part_ended = true,
            LogPayload::Update {
                key, before, after, ..
            } => {
                entry
                    .updates
                    .push((key.clone(), before.clone(), after.clone()));
            }
            LogPayload::Checkpoint { .. } => unreachable!("filtered above"),
        }
    }
    map
}

/// The position and contents of the latest checkpoint in a scanned
/// log, if any.
#[must_use]
pub fn latest_checkpoint(
    records: &[LogRecord],
) -> Option<(crate::record::Lsn, &CheckpointEntries)> {
    records.iter().rev().find_map(|r| match &r.payload {
        LogPayload::Checkpoint { entries } => Some((r.lsn, entries.as_slice())),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Lsn;
    use acp_types::ProtocolKind;

    fn rec(lsn: u64, payload: LogPayload) -> LogRecord {
        LogRecord {
            lsn: Lsn(lsn),
            forced: true,
            payload,
        }
    }

    #[test]
    fn coordinator_summary() {
        let t = TxnId::new(1);
        let recs = vec![
            rec(
                0,
                LogPayload::Initiation {
                    txn: t,
                    participants: vec![ParticipantEntry::new(SiteId::new(1), ProtocolKind::PrA)],
                    mode: CommitMode::PrAny,
                },
            ),
            rec(
                1,
                LogPayload::CoordDecision {
                    txn: t,
                    outcome: Outcome::Commit,
                    participants: vec![],
                },
            ),
        ];
        let m = analyze(&recs);
        let s = &m[&t];
        assert!(s.coordinator_open());
        assert_eq!(s.decision, Some(Outcome::Commit));
        let (mode, parts) = s.initiation.as_ref().unwrap();
        assert_eq!(*mode, CommitMode::PrAny);
        assert_eq!(parts.len(), 1);

        // Adding an end record closes it.
        let mut recs = recs;
        recs.push(rec(2, LogPayload::End { txn: t }));
        assert!(!analyze(&recs)[&t].coordinator_open());
    }

    #[test]
    fn participant_in_doubt_detection() {
        let t = TxnId::new(2);
        let prepared = rec(
            0,
            LogPayload::Prepared {
                txn: t,
                coordinator: SiteId::new(0),
            },
        );
        let m = analyze(std::slice::from_ref(&prepared));
        assert!(m[&t].in_doubt());

        let decided = rec(
            1,
            LogPayload::PartDecision {
                txn: t,
                outcome: Outcome::Abort,
            },
        );
        let m = analyze(&[prepared, decided]);
        assert!(!m[&t].in_doubt());
        assert_eq!(m[&t].part_decision, Some(Outcome::Abort));
    }

    #[test]
    fn updates_kept_in_log_order() {
        let t = TxnId::new(3);
        let recs = vec![
            rec(
                0,
                LogPayload::Update {
                    txn: t,
                    key: b"a".to_vec(),
                    before: None,
                    after: Some(b"1".to_vec()),
                },
            ),
            rec(
                1,
                LogPayload::Update {
                    txn: t,
                    key: b"b".to_vec(),
                    before: Some(b"1".to_vec()),
                    after: None,
                },
            ),
        ];
        let m = analyze(&recs);
        let ups = &m[&t].updates;
        assert_eq!(ups.len(), 2);
        assert_eq!(ups[0].0, b"a");
        assert_eq!(ups[1].0, b"b");
    }

    #[test]
    fn multiple_transactions_separated() {
        let recs = vec![
            rec(0, LogPayload::End { txn: TxnId::new(1) }),
            rec(
                1,
                LogPayload::Prepared {
                    txn: TxnId::new(2),
                    coordinator: SiteId::new(0),
                },
            ),
        ];
        let m = analyze(&recs);
        assert_eq!(m.len(), 2);
        assert!(m[&TxnId::new(1)].ended);
        assert!(m[&TxnId::new(2)].in_doubt());
    }

    #[test]
    fn empty_log_analyzes_empty() {
        assert!(analyze(&[]).is_empty());
    }
}
