//! An observability adapter for any [`StableLog`]: mirrors every append
//! into the typed protocol-event stream as a [`ProtocolEvent::ForceWrite`]
//! or [`ProtocolEvent::NonForcedWrite`], and every prefix truncation as a
//! [`ProtocolEvent::LogGc`].
//!
//! The paper's cost model (§1.2, Table 1) is stated entirely in terms of
//! these log-level observables — which records a protocol writes, which
//! it forces, and when it may reclaim them — so wrapping a log is the
//! most direct way to meter an engine that does not emit events itself.

use crate::record::{LogRecord, Lsn, WalStats};
use crate::{StableLog, WalError};
use acp_obs::{ProtoLabel, ProtocolEvent, TraceSink};
use acp_types::LogPayload;
use std::sync::Arc;

/// A [`StableLog`] wrapper that reports every durability-relevant
/// operation to a [`TraceSink`].
///
/// Timestamps come from the caller-provided `clock` (microseconds in
/// whatever timebase the surrounding runtime uses — sim-time under the
/// simulator, elapsed wall time under the threaded runtime).
pub struct ObservedLog<L: StableLog> {
    inner: L,
    sink: Arc<dyn TraceSink>,
    site: u32,
    proto: ProtoLabel,
    clock: Box<dyn Fn() -> u64 + Send>,
}

impl<L: StableLog> ObservedLog<L> {
    /// Wrap `inner`, attributing events to `site` under `proto`.
    pub fn new(
        inner: L,
        sink: Arc<dyn TraceSink>,
        site: u32,
        proto: ProtoLabel,
        clock: impl Fn() -> u64 + Send + 'static,
    ) -> Self {
        ObservedLog {
            inner,
            sink,
            site,
            proto,
            clock: Box::new(clock),
        }
    }

    /// The wrapped log.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// The wrapped log, mutably (operations through this reference are
    /// not observed).
    pub fn inner_mut(&mut self) -> &mut L {
        &mut self.inner
    }

    /// Unwrap, discarding the observation plumbing.
    pub fn into_inner(self) -> L {
        self.inner
    }

    fn now(&self) -> u64 {
        (self.clock)()
    }
}

impl<L: StableLog> StableLog for ObservedLog<L> {
    fn append(&mut self, payload: LogPayload, force: bool) -> Result<Lsn, WalError> {
        let record = payload.kind_name();
        let txn = Some(payload.txn().raw());
        let lsn = self.inner.append(payload, force)?;
        let at_us = self.now();
        let ev = if force {
            ProtocolEvent::ForceWrite {
                at_us,
                site: self.site,
                proto: self.proto,
                record,
                txn,
            }
        } else {
            ProtocolEvent::NonForcedWrite {
                at_us,
                site: self.site,
                proto: self.proto,
                record,
                txn,
            }
        };
        self.sink.record(&ev);
        Ok(lsn)
    }

    fn flush(&mut self) -> Result<(), WalError> {
        self.inner.flush()
    }

    fn records(&self) -> Result<Vec<LogRecord>, WalError> {
        self.inner.records()
    }

    fn for_each_record(&self, f: &mut dyn FnMut(&LogRecord)) -> Result<(), WalError> {
        self.inner.for_each_record(f)
    }

    fn truncate_prefix(&mut self, lsn: Lsn) -> Result<(), WalError> {
        let mut released = 0u64;
        self.inner.for_each_record(&mut |r| {
            if r.lsn < lsn {
                released += 1;
            }
        })?;
        self.inner.truncate_prefix(lsn)?;
        if released > 0 {
            self.sink.record(&ProtocolEvent::LogGc {
                at_us: self.now(),
                site: self.site,
                proto: self.proto,
                released_up_to: lsn.0,
                records_released: released,
                // The log has no view of decision times; runtimes that
                // track them report latency through their own LogGc
                // events instead.
                since_decision_us: None,
            });
        }
        Ok(())
    }

    fn low_water_mark(&self) -> Lsn {
        self.inner.low_water_mark()
    }

    fn next_lsn(&self) -> Lsn {
        self.inner.next_lsn()
    }

    fn stats(&self) -> WalStats {
        self.inner.stats()
    }

    fn lose_unflushed(&mut self) -> Result<usize, WalError> {
        self.inner.lose_unflushed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemLog;
    use acp_obs::VecSink;
    use acp_types::TxnId;

    fn observed(sink: Arc<VecSink>) -> ObservedLog<MemLog> {
        ObservedLog::new(MemLog::new(), sink, 7, ProtoLabel::PrA, || 42)
    }

    #[test]
    fn appends_are_mirrored_with_force_mode() {
        let sink = Arc::new(VecSink::new());
        let mut log = observed(Arc::clone(&sink));
        let t = TxnId::new(1);
        log.append(LogPayload::End { txn: t }, false).unwrap();
        log.append(
            LogPayload::Prepared {
                txn: t,
                coordinator: acp_types::SiteId::new(0),
            },
            true,
        )
        .unwrap();
        let evs = sink.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].tag(), "non_forced_write");
        assert_eq!(evs[1].tag(), "force_write");
        assert!(matches!(
            evs[1],
            ProtocolEvent::ForceWrite {
                site: 7,
                proto: ProtoLabel::PrA,
                record: "prepared",
                at_us: 42,
                ..
            }
        ));
    }

    #[test]
    fn truncation_reports_released_count() {
        let sink = Arc::new(VecSink::new());
        let mut log = observed(Arc::clone(&sink));
        let t = TxnId::new(1);
        log.append(LogPayload::End { txn: t }, true).unwrap();
        let keep = log.append(LogPayload::End { txn: t.next() }, true).unwrap();
        log.truncate_prefix(keep).unwrap();
        let evs = sink.snapshot();
        assert_eq!(evs.last().unwrap().tag(), "log_gc");
        assert!(matches!(
            evs.last().unwrap(),
            ProtocolEvent::LogGc {
                records_released: 1,
                since_decision_us: None,
                ..
            }
        ));
        // An empty truncation is not an event.
        log.truncate_prefix(keep).unwrap();
        assert_eq!(sink.snapshot().len(), 3);
    }

    #[test]
    fn inner_log_still_behaves_like_a_stable_log() {
        let sink = Arc::new(VecSink::new());
        let mut log = observed(sink);
        let t = TxnId::new(9);
        let lsn = log.append(LogPayload::End { txn: t }, true).unwrap();
        assert_eq!(log.records().unwrap().len(), 1);
        assert_eq!(log.low_water_mark(), Lsn(0));
        assert!(log.next_lsn() > lsn);
    }
}
