//! WAL error type.

use std::fmt;
use std::io;

/// Errors surfaced by log implementations and the codec.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure (file-backed logs only).
    Io(io::Error),
    /// A record failed CRC validation or was structurally malformed.
    ///
    /// During recovery scans a corrupt *tail* record is interpreted as a
    /// torn write and silently truncated; corruption in the middle of
    /// the log is surfaced as this error.
    Corrupt {
        /// Byte offset of the bad record within the log image.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// Attempt to truncate to an LSN below the current low-water mark or
    /// above the durable tail.
    BadTruncate {
        /// The requested LSN.
        requested: u64,
        /// The valid range (low-water mark ..= next LSN).
        low: u64,
        /// Upper bound of the valid range.
        high: u64,
    },
    /// The decoder encountered an unknown record tag (log written by a
    /// newer version).
    UnknownTag(u8),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt { offset, detail } => {
                write!(f, "corrupt wal record at offset {offset}: {detail}")
            }
            WalError::BadTruncate {
                requested,
                low,
                high,
            } => write!(
                f,
                "invalid truncation to lsn {requested} (valid range {low}..={high})"
            ),
            WalError::UnknownTag(t) => write!(f, "unknown wal record tag {t:#x}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = WalError::Corrupt {
            offset: 128,
            detail: "bad crc".into(),
        };
        assert!(e.to_string().contains("offset 128"));
        let e = WalError::BadTruncate {
            requested: 9,
            low: 2,
            high: 5,
        };
        assert!(e.to_string().contains("2..=5"));
        let e = WalError::UnknownTag(0xFF);
        assert!(e.to_string().contains("0xff"));
    }

    #[test]
    fn io_error_source_preserved() {
        use std::error::Error as _;
        let e = WalError::from(io::Error::other("disk on fire"));
        assert!(e.source().is_some());
    }
}
