//! Group commit: amortize forced log writes across concurrent
//! transactions.
//!
//! The paper prices every protocol in *forced* log writes, and E10
//! measured a force at ~135µs on [`crate::file::FileLog`] — the fsync
//! dominates every commit path. Group commit is the classical remedy
//! (DeWitt et al. 1984; Gray & Reuter §9): decision and prepared records
//! from concurrent transactions accumulate in a shared buffer and one
//! physical force makes the whole batch durable, so the per-transaction
//! fsync cost drops by the batch occupancy.
//!
//! Two hosts with very different concurrency models need this, so the
//! module has two entry points:
//!
//! * [`GroupCommitLog`] — a single-owner wrapper for event-loop hosts
//!   (the deterministic simulator, `acp-net`'s one-thread-per-site
//!   actors). Batches are delimited by a *batch window* of host time
//!   ([`GroupCommitLog::windowed`], deterministic accounting for the
//!   sim) or by explicit turn boundaries ([`GroupCommitLog::deferred`]
//!   plus [`GroupCommitLog::commit_batch`], real fsync deferral for the
//!   actor loop). [`GroupCommitLog::passthrough`] disables batching
//!   entirely and is bit-for-bit today's unbatched behavior — a batch
//!   of one degenerates to exactly one force, which is why clean
//!   single-transaction traces stay byte-identical.
//! * [`SharedGroupLog`] — a `Send + Sync` handle for threaded hosts
//!   where concurrent transactions share one commit log. Appends stage
//!   their record and join the open batch; the first staged appender
//!   becomes the *leader*, holds the batch open for the configured
//!   window so followers can pile in, then performs the single force.
//!   Followers observe completion through a sequence/epoch handshake
//!   (`seq` / `durable_seq` under a mutex+condvar).

use crate::error::WalError;
use crate::record::{LogRecord, Lsn, WalStats};
use crate::StableLog;
use acp_types::LogPayload;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Batching effectiveness counters, shared by both host shapes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Physical batch forces performed (fsync-equivalents under
    /// batching). Every batch has occupancy ≥ 1, so this never exceeds
    /// `batched_appends`.
    pub batches: u64,
    /// Forced appends absorbed into those batches.
    pub batched_appends: u64,
    /// Largest single batch observed.
    pub max_occupancy: u64,
}

impl GroupCommitStats {
    /// Mean batch occupancy ×1000 (fixed-point, to stay float-free like
    /// the rest of the workspace's cost arithmetic).
    #[must_use]
    pub fn occupancy_x1000(&self) -> u64 {
        if self.batches == 0 {
            0
        } else {
            self.batched_appends * 1000 / self.batches
        }
    }

    fn absorb(&mut self, occupancy: u64) {
        self.batches += 1;
        self.batched_appends += occupancy;
        self.max_occupancy = self.max_occupancy.max(occupancy);
    }

    /// Fold another site's counters into this aggregate.
    pub fn merge(&mut self, other: &GroupCommitStats) {
        self.batches += other.batches;
        self.batched_appends += other.batched_appends;
        self.max_occupancy = self.max_occupancy.max(other.max_occupancy);
    }
}

/// A batch that has been closed (its single physical force is done, or
/// — in windowed accounting mode — its window expired). Hosts drain
/// these via [`GroupCommitLog::take_closed`] to emit trace events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClosedBatch {
    /// Host time (µs) at which the batch opened; 0 in deferred mode,
    /// where the host supplies its own clock when emitting.
    pub opened_at_us: u64,
    /// Forced appends the batch absorbed.
    pub occupancy: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// No batching: every forced append forces the inner log. Exactly
    /// the unbatched behavior, byte for byte.
    Passthrough,
    /// Deterministic accounting for the simulator: forced appends still
    /// force the inner log immediately (crash semantics are untouched),
    /// but forces whose host time falls within `window_us` of the
    /// window opener are *accounted* as one batch — the number of
    /// physical forces a batching backend would have performed.
    Windowed {
        /// Batch window in host microseconds. `0` coalesces only
        /// simultaneous forces (same sim instant).
        window_us: u64,
    },
    /// Real deferral for single-threaded actor hosts: forced appends
    /// are staged unforced and one [`GroupCommitLog::commit_batch`]
    /// flush — one fsync — makes the whole turn durable. The host MUST
    /// commit the batch before externalizing any message that depends
    /// on the staged records.
    Deferred,
}

/// Single-owner group-commit wrapper. See the module docs for the mode
/// semantics; construct with [`GroupCommitLog::passthrough`],
/// [`GroupCommitLog::windowed`] or [`GroupCommitLog::deferred`].
#[derive(Debug)]
pub struct GroupCommitLog<L: StableLog> {
    inner: L,
    mode: Mode,
    /// Host clock, advanced by [`GroupCommitLog::tick`].
    now_us: u64,
    /// Open batch: (opened_at_us, occupancy). `None` when empty.
    open: Option<(u64, u64)>,
    closed: Vec<ClosedBatch>,
    stats: GroupCommitStats,
    /// Forced appends requested at this layer — the protocol-meaningful
    /// force count, independent of how many physical syncs served them.
    logical_forces: u64,
}

impl<L: StableLog> GroupCommitLog<L> {
    /// No batching at all: a transparent wrapper whose observable
    /// behavior is identical to the bare inner log.
    pub fn passthrough(inner: L) -> Self {
        Self::with_mode(inner, Mode::Passthrough)
    }

    /// Deterministic batch-window accounting for the simulator.
    pub fn windowed(inner: L, window_us: u64) -> Self {
        Self::with_mode(inner, Mode::Windowed { window_us })
    }

    /// Turn-deferred batching for single-threaded actor hosts.
    pub fn deferred(inner: L) -> Self {
        Self::with_mode(inner, Mode::Deferred)
    }

    fn with_mode(inner: L, mode: Mode) -> Self {
        GroupCommitLog {
            inner,
            mode,
            now_us: 0,
            open: None,
            closed: Vec::new(),
            stats: GroupCommitStats::default(),
            logical_forces: 0,
        }
    }

    /// The wrapped log.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Mutable access to the wrapped log. Appends made directly on the
    /// inner log bypass batching and its accounting.
    pub fn inner_mut(&mut self) -> &mut L {
        &mut self.inner
    }

    /// Unwrap, discarding batching state. Any deferred batch should be
    /// committed first.
    pub fn into_inner(self) -> L {
        self.inner
    }

    /// Batching counters.
    pub fn group_stats(&self) -> GroupCommitStats {
        self.stats
    }

    /// Is batching active (windowed or deferred)?
    pub fn batching(&self) -> bool {
        self.mode != Mode::Passthrough
    }

    /// Advance the host clock. In windowed mode this closes the open
    /// batch once its window has expired; hosts call it before
    /// processing each event.
    pub fn tick(&mut self, now_us: u64) {
        self.now_us = self.now_us.max(now_us);
        if let Mode::Windowed { window_us } = self.mode {
            if let Some((opened, _)) = self.open {
                if self.now_us > opened.saturating_add(window_us) {
                    self.close_open();
                }
            }
        }
    }

    /// The batched forced-append path. In passthrough mode this is a
    /// plain forced append; in windowed mode the force happens
    /// immediately but joins the open accounting window; in deferred
    /// mode the record is staged until [`GroupCommitLog::commit_batch`].
    pub fn append_forced_batched(&mut self, payload: LogPayload) -> Result<Lsn, WalError> {
        self.logical_forces += 1;
        match self.mode {
            Mode::Passthrough => self.inner.append(payload, true),
            Mode::Windowed { window_us } => {
                let lsn = self.inner.append(payload, true)?;
                match &mut self.open {
                    Some((opened, occ)) if self.now_us <= opened.saturating_add(window_us) => {
                        *occ += 1;
                    }
                    _ => {
                        self.close_open();
                        self.open = Some((self.now_us, 1));
                    }
                }
                Ok(lsn)
            }
            Mode::Deferred => {
                let lsn = self.inner.append(payload, false)?;
                match &mut self.open {
                    Some((_, occ)) => *occ += 1,
                    None => self.open = Some((self.now_us, 1)),
                }
                Ok(lsn)
            }
        }
    }

    /// Close the open batch. In deferred mode this performs the single
    /// physical force (one flush) that makes the staged records
    /// durable; in windowed mode it just seals the accounting window.
    /// Returns the closed batch, if one was open.
    pub fn commit_batch(&mut self) -> Result<Option<ClosedBatch>, WalError> {
        if self.open.is_none() {
            return Ok(None);
        }
        if self.mode == Mode::Deferred {
            self.inner.flush()?;
        }
        self.close_open();
        Ok(self.closed.last().copied())
    }

    /// Drain the batches closed since the last call (for trace-event
    /// emission).
    pub fn take_closed(&mut self) -> Vec<ClosedBatch> {
        std::mem::take(&mut self.closed)
    }

    /// Occupancy of the currently open batch (0 when none is open).
    /// Hosts with an adaptive batch window use this to force a
    /// lone-record batch immediately instead of waiting out the window —
    /// batching only ever pays when at least two forces share the fsync.
    #[must_use]
    pub fn open_occupancy(&self) -> u64 {
        self.open.map_or(0, |(_, occ)| occ)
    }

    fn close_open(&mut self) {
        if let Some((opened, occ)) = self.open.take() {
            self.stats.absorb(occ);
            self.closed.push(ClosedBatch {
                opened_at_us: opened,
                occupancy: occ,
            });
        }
    }
}

impl<L: StableLog> StableLog for GroupCommitLog<L> {
    fn append(&mut self, payload: LogPayload, force: bool) -> Result<Lsn, WalError> {
        if force {
            self.append_forced_batched(payload)
        } else {
            self.inner.append(payload, false)
        }
    }

    fn flush(&mut self) -> Result<(), WalError> {
        // A flush makes everything durable, so it subsumes any deferred
        // batch (which it closes — the flush IS the batch's force).
        if self.mode == Mode::Deferred {
            self.close_open();
        }
        self.inner.flush()
    }

    fn records(&self) -> Result<Vec<LogRecord>, WalError> {
        self.inner.records()
    }

    fn for_each_record(&self, f: &mut dyn FnMut(&LogRecord)) -> Result<(), WalError> {
        self.inner.for_each_record(f)
    }

    fn truncate_prefix(&mut self, lsn: Lsn) -> Result<(), WalError> {
        self.inner.truncate_prefix(lsn)
    }

    fn low_water_mark(&self) -> Lsn {
        self.inner.low_water_mark()
    }

    fn next_lsn(&self) -> Lsn {
        self.inner.next_lsn()
    }

    fn stats(&self) -> WalStats {
        // Report the *logical* force count: what the protocol asked
        // for, independent of physical batching. Physical syncs are in
        // `group_stats().batches` (windowed/deferred) or equal anyway
        // (passthrough).
        let mut s = self.inner.stats();
        s.forces = self.logical_forces;
        s
    }

    fn lose_unflushed(&mut self) -> Result<usize, WalError> {
        // A deferred batch that never committed dies with the crash —
        // its records were staged unforced, so the inner log loses them
        // (correct: nothing externalized them yet). A windowed batch's
        // members were physically forced; only the accounting window
        // closes.
        match self.mode {
            Mode::Deferred => {
                self.open = None;
            }
            _ => self.close_open(),
        }
        self.inner.lose_unflushed()
    }
}

// ---------------------------------------------------------------------
// Per-shard fsync domains.
// ---------------------------------------------------------------------

/// Coalescing counters for one [`FsyncDomain`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DomainStats {
    /// Force rounds completed (turns in which at least one member site
    /// committed a deferred batch). The domain's coalescing claim is
    /// `rounds ≪ records`: one round per shard turn no matter how many
    /// transactions forced in it.
    pub rounds: u64,
    /// Rounds led: the first member batch committed in each round. By
    /// construction `leader_flushes == rounds`.
    pub leader_flushes: u64,
    /// Member batches that joined a round already opened by a leader —
    /// forces that ride the round instead of starting one.
    pub follower_flushes: u64,
    /// Staged records made durable through the domain (sum of member
    /// batch occupancies).
    pub records: u64,
    /// Largest number of member sites in a single round.
    pub max_members: u64,
    /// Rounds with exactly one member (no cross-site coalescing — the
    /// degenerate case a lone transaction produces).
    pub solo_rounds: u64,
}

impl DomainStats {
    /// Fold another shard's domain counters into this aggregate.
    pub fn merge(&mut self, other: &DomainStats) {
        self.rounds += other.rounds;
        self.leader_flushes += other.leader_flushes;
        self.follower_flushes += other.follower_flushes;
        self.records += other.records;
        self.max_members = self.max_members.max(other.max_members);
        self.solo_rounds += other.solo_rounds;
    }
}

/// A per-shard fsync domain: the single-owner analogue of
/// [`SharedGroupLog`]'s leader election for event-loop hosts where one
/// reactor thread owns several sites, each with its own deferred
/// [`GroupCommitLog`].
///
/// At the end of a reactor turn every member site with staged records
/// commits its batch **through the domain**
/// ([`FsyncDomain::force_member`]). The first member in the round is
/// the *leader* — exactly as the first staged appender is in
/// [`SharedGroupLog`], just elected by turn order instead of by lock
/// acquisition, because shard single-threadedness already serializes
/// the members. Remaining members are followers whose forces ride the
/// same round. [`FsyncDomain::end_round`] seals the round at the turn
/// boundary.
///
/// The domain is an *accounting* layer over the member logs' real
/// deferral: each member's `commit_batch` still performs its own
/// physical flush (members keep independent WAL files so per-site crash
/// and recovery semantics are untouched), and the round structure
/// records what a shared commit device would have coalesced — one
/// leader force per shard turn. E14 reports one `DomainStats` per
/// shard to prove each shard is one coalesced force domain.
#[derive(Debug, Default)]
pub struct FsyncDomain {
    stats: DomainStats,
    /// Member batches committed in the currently open round.
    open_members: u64,
}

impl FsyncDomain {
    /// A fresh domain with no open round.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Commit one member log's deferred batch as part of the current
    /// force round, opening the round if this is its first member.
    /// Returns the member's closed batch (None if it had nothing
    /// staged — an empty member never joins the round).
    pub fn force_member<L: StableLog>(
        &mut self,
        log: &mut GroupCommitLog<L>,
    ) -> Result<Option<ClosedBatch>, WalError> {
        let closed = log.commit_batch()?;
        if let Some(batch) = closed {
            if self.open_members == 0 {
                self.stats.leader_flushes += 1;
            } else {
                self.stats.follower_flushes += 1;
            }
            self.open_members += 1;
            self.stats.records += batch.occupancy;
        }
        Ok(closed)
    }

    /// Seal the current force round (the reactor calls this once per
    /// turn, after every member site has had its chance to force). A
    /// round with no members is not counted.
    pub fn end_round(&mut self) {
        if self.open_members > 0 {
            self.stats.rounds += 1;
            self.stats.max_members = self.stats.max_members.max(self.open_members);
            if self.open_members == 1 {
                self.stats.solo_rounds += 1;
            }
            self.open_members = 0;
        }
    }

    /// Is a force round currently open (members committed, round not yet
    /// sealed)?
    #[must_use]
    pub fn round_open(&self) -> bool {
        self.open_members > 0
    }

    /// Coalescing counters. Call after [`FsyncDomain::end_round`] for a
    /// turn-consistent view.
    #[must_use]
    pub fn stats(&self) -> DomainStats {
        self.stats
    }
}

// ---------------------------------------------------------------------
// Threaded leader/follower handshake.
// ---------------------------------------------------------------------

struct SharedState<L: StableLog> {
    inner: L,
    /// Sequence number of the most recent staged append.
    seq: u64,
    /// Sequence through which staged appends are durable.
    durable_seq: u64,
    /// A leader is currently holding the batch open / forcing it.
    leader_active: bool,
    stats: GroupCommitStats,
}

struct Shared<L: StableLog> {
    state: Mutex<SharedState<L>>,
    cond: Condvar,
    window: Duration,
}

/// A cloneable, thread-safe group-commit handle: concurrent
/// transactions on different threads share one commit log and their
/// forced appends coalesce into leader-forced batches.
pub struct SharedGroupLog<L: StableLog> {
    shared: Arc<Shared<L>>,
}

impl<L: StableLog> Clone for SharedGroupLog<L> {
    fn clone(&self) -> Self {
        SharedGroupLog {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<L: StableLog> SharedGroupLog<L> {
    /// Wrap `inner` with the given batch window. The window is what
    /// creates batches: a leader holds its batch open for `window` so
    /// concurrent appenders can stage and join (the condvar wait
    /// releases the lock). A zero window degenerates to one force per
    /// append — staging requires the same lock the leader's force
    /// holds, so nothing can join an instantaneous batch.
    pub fn new(inner: L, window: Duration) -> Self {
        SharedGroupLog {
            shared: Arc::new(Shared {
                state: Mutex::new(SharedState {
                    inner,
                    seq: 0,
                    durable_seq: 0,
                    leader_active: false,
                    stats: GroupCommitStats::default(),
                }),
                cond: Condvar::new(),
                window,
            }),
        }
    }

    /// Forced append through the batched path. Durable on return — the
    /// calling transaction either led a batch force or was a follower
    /// whose sequence the leader's force covered.
    pub fn append_forced_batched(&self, payload: LogPayload) -> Result<Lsn, WalError> {
        let sh = &*self.shared;
        let mut st = sh.state.lock().expect("group log poisoned");
        // Stage unforced: the batch force below makes it durable.
        let lsn = st.inner.append(payload, false)?;
        st.seq += 1;
        let my_seq = st.seq;
        loop {
            if st.durable_seq >= my_seq {
                // A leader's force already covered us.
                return Ok(lsn);
            }
            if !st.leader_active {
                break;
            }
            st = sh.cond.wait(st).expect("group log poisoned");
        }
        // Become the leader: hold the batch open for the window so
        // concurrent appenders can join (they stage under the mutex
        // while we wait — wait_timeout releases it).
        st.leader_active = true;
        if !sh.window.is_zero() {
            let deadline = Instant::now() + sh.window;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = sh
                    .cond
                    .wait_timeout(st, deadline - now)
                    .expect("group log poisoned");
                st = guard;
            }
        }
        let cut = st.seq;
        match st.inner.flush() {
            Ok(()) => {
                let occupancy = cut - st.durable_seq;
                st.durable_seq = cut;
                st.leader_active = false;
                st.stats.absorb(occupancy);
                sh.cond.notify_all();
                Ok(lsn)
            }
            Err(e) => {
                // Leave durable_seq honest; followers will retry the
                // force as new leaders (or surface the error themselves).
                st.leader_active = false;
                sh.cond.notify_all();
                Err(e)
            }
        }
    }

    /// Unbatched forced append (baseline path for comparisons): same
    /// lock, same inner log, but every call pays its own force.
    pub fn append_forced_direct(&self, payload: LogPayload) -> Result<Lsn, WalError> {
        let mut st = self.shared.state.lock().expect("group log poisoned");
        let lsn = st.inner.append(payload, true)?;
        st.seq += 1;
        st.durable_seq = st.seq;
        Ok(lsn)
    }

    /// Batching counters.
    pub fn group_stats(&self) -> GroupCommitStats {
        self.shared.state.lock().expect("group log poisoned").stats
    }

    /// Inner-log statistics (flushes = physical syncs of the batched
    /// path).
    pub fn wal_stats(&self) -> WalStats {
        self.shared
            .state
            .lock()
            .expect("group log poisoned")
            .inner
            .stats()
    }

    /// Durable records of the inner log.
    pub fn records(&self) -> Result<Vec<LogRecord>, WalError> {
        self.shared
            .state
            .lock()
            .expect("group log poisoned")
            .inner
            .records()
    }

    /// Unwrap the inner log. Fails (returns `self` back) while other
    /// handles exist.
    pub fn try_into_inner(self) -> Result<L, SharedGroupLog<L>> {
        match Arc::try_unwrap(self.shared) {
            Ok(sh) => Ok(sh.state.into_inner().expect("group log poisoned").inner),
            Err(arc) => Err(SharedGroupLog { shared: arc }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemLog;
    use acp_types::TxnId;

    fn end(t: u64) -> LogPayload {
        LogPayload::End { txn: TxnId::new(t) }
    }

    #[test]
    fn passthrough_is_bit_for_bit_identical() {
        let mut plain = MemLog::new();
        let mut wrapped = GroupCommitLog::passthrough(MemLog::new());
        for i in 0..6 {
            plain.append(end(i), i % 2 == 0).unwrap();
            wrapped.append(end(i), i % 2 == 0).unwrap();
        }
        plain.flush().unwrap();
        wrapped.flush().unwrap();
        assert_eq!(plain.records().unwrap(), wrapped.records().unwrap());
        assert_eq!(plain.stats(), wrapped.stats());
        assert_eq!(wrapped.group_stats(), GroupCommitStats::default());
    }

    #[test]
    fn windowed_coalesces_forces_within_window() {
        let mut log = GroupCommitLog::windowed(MemLog::new(), 100);
        log.tick(1_000);
        log.append_forced_batched(end(1)).unwrap();
        log.append_forced_batched(end(2)).unwrap();
        log.tick(1_050); // still inside the window
        log.append_forced_batched(end(3)).unwrap();
        log.tick(1_200); // window expired
        log.append_forced_batched(end(4)).unwrap();
        log.commit_batch().unwrap();

        let s = log.group_stats();
        assert_eq!(s.batches, 2, "one window of 3, one of 1");
        assert_eq!(s.batched_appends, 4);
        assert_eq!(s.max_occupancy, 3);
        // Durability was never deferred: all four records are durable.
        assert_eq!(log.records().unwrap().len(), 4);
        let closed = log.take_closed();
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0], ClosedBatch { opened_at_us: 1_000, occupancy: 3 });
        assert_eq!(closed[1], ClosedBatch { opened_at_us: 1_200, occupancy: 1 });
    }

    #[test]
    fn windowed_zero_window_coalesces_only_simultaneous_forces() {
        let mut log = GroupCommitLog::windowed(MemLog::new(), 0);
        log.tick(500);
        log.append_forced_batched(end(1)).unwrap();
        log.append_forced_batched(end(2)).unwrap();
        log.tick(501);
        log.append_forced_batched(end(3)).unwrap();
        log.commit_batch().unwrap();
        let s = log.group_stats();
        assert_eq!(s.batches, 2);
        assert_eq!(s.max_occupancy, 2);
    }

    #[test]
    fn deferred_batch_is_one_physical_flush() {
        let mut log = GroupCommitLog::deferred(MemLog::new());
        let flushes_before = log.inner().stats().flushes;
        for i in 0..5 {
            log.append_forced_batched(end(i)).unwrap();
        }
        // Nothing durable until the batch commits.
        assert_eq!(log.records().unwrap().len(), 0);
        let closed = log.commit_batch().unwrap().unwrap();
        assert_eq!(closed.occupancy, 5);
        assert_eq!(log.records().unwrap().len(), 5);
        assert_eq!(
            log.inner().stats().flushes,
            flushes_before + 1,
            "five forced appends, one physical flush"
        );
        // Logical force accounting is preserved for cost checks.
        assert_eq!(log.stats().forces, 5);
        assert_eq!(log.group_stats().batches, 1);
    }

    #[test]
    fn deferred_uncommitted_batch_dies_with_a_crash() {
        let mut log = GroupCommitLog::deferred(MemLog::new());
        log.append_forced_batched(end(1)).unwrap();
        log.commit_batch().unwrap();
        log.append_forced_batched(end(2)).unwrap();
        let lost = log.lose_unflushed().unwrap();
        assert_eq!(lost, 1, "the staged record is lost");
        assert_eq!(log.records().unwrap().len(), 1);
        assert_eq!(log.group_stats().batches, 1, "the dead batch never counted");
    }

    #[test]
    fn fsync_domain_elects_one_leader_per_round() {
        let mut domain = FsyncDomain::new();
        let mut coord = GroupCommitLog::deferred(MemLog::new());
        let mut part = GroupCommitLog::deferred(MemLog::new());
        let mut idle = GroupCommitLog::deferred(MemLog::new());

        // Round 1: both active members force; the idle one stays out.
        coord.append_forced_batched(end(1)).unwrap();
        coord.append_forced_batched(end(2)).unwrap();
        part.append_forced_batched(end(1)).unwrap();
        assert!(domain.force_member(&mut coord).unwrap().is_some());
        assert!(domain.round_open());
        assert!(domain.force_member(&mut part).unwrap().is_some());
        assert!(domain.force_member(&mut idle).unwrap().is_none());
        domain.end_round();
        assert!(!domain.round_open());

        // Round 2: a lone member — the solo (no-coalescing) case.
        part.append_forced_batched(end(2)).unwrap();
        domain.force_member(&mut part).unwrap();
        domain.end_round();
        // A memberless turn counts no round.
        domain.end_round();

        let s = domain.stats();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.leader_flushes, 2, "exactly one leader per round");
        assert_eq!(s.follower_flushes, 1);
        assert_eq!(s.records, 4, "3 staged records in round 1, 1 in round 2");
        assert_eq!(s.max_members, 2);
        assert_eq!(s.solo_rounds, 1);
        // The member logs really are durable (the domain does not defer
        // beyond the member commit).
        assert_eq!(coord.records().unwrap().len(), 2);
        assert_eq!(part.records().unwrap().len(), 2);
    }

    #[test]
    fn fsync_domain_stats_merge_across_shards() {
        let mut a = DomainStats {
            rounds: 3,
            leader_flushes: 3,
            follower_flushes: 2,
            records: 9,
            max_members: 2,
            solo_rounds: 1,
        };
        let b = DomainStats {
            rounds: 1,
            leader_flushes: 1,
            follower_flushes: 0,
            records: 1,
            max_members: 3,
            solo_rounds: 1,
        };
        a.merge(&b);
        assert_eq!(a.rounds, 4);
        assert_eq!(a.leader_flushes, 4);
        assert_eq!(a.follower_flushes, 2);
        assert_eq!(a.records, 10);
        assert_eq!(a.max_members, 3);
        assert_eq!(a.solo_rounds, 2);
    }

    #[test]
    fn shared_handshake_makes_every_append_durable() {
        let log = SharedGroupLog::new(MemLog::new(), Duration::from_micros(200));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = log.clone();
                std::thread::spawn(move || {
                    for i in 0..16 {
                        h.append_forced_batched(end(t * 100 + i)).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(log.records().unwrap().len(), 8 * 16);
        let s = log.group_stats();
        assert_eq!(s.batched_appends, 8 * 16);
        assert!(s.batches >= 1 && s.batches <= 8 * 16);
        assert_eq!(log.wal_stats().flushes, s.batches, "one flush per batch");
    }

    #[test]
    fn shared_single_thread_degenerates_to_batches_of_one() {
        let log = SharedGroupLog::new(MemLog::new(), Duration::ZERO);
        for i in 0..4 {
            log.append_forced_batched(end(i)).unwrap();
        }
        let s = log.group_stats();
        assert_eq!(s.batches, 4);
        assert_eq!(s.max_occupancy, 1);
        assert_eq!(log.records().unwrap().len(), 4);
    }

    #[test]
    fn shared_direct_path_counts_no_batches() {
        let log = SharedGroupLog::new(MemLog::new(), Duration::ZERO);
        for i in 0..4 {
            log.append_forced_direct(end(i)).unwrap();
        }
        assert_eq!(log.group_stats().batches, 0);
        assert_eq!(log.wal_stats().forces, 4);
        assert_eq!(log.records().unwrap().len(), 4);
    }
}
