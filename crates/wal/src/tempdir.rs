//! Minimal scoped temporary directory (avoids an external `tempfile`
//! dependency). Used by file-log tests and the threaded runtime.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{fs, io};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp root, removed recursively on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory whose name starts with `prefix`.
    pub fn new(prefix: &str) -> io::Result<TempDir> {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("acp-{prefix}-{}-{n}", std::process::id()));
        fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let kept;
        {
            let d = TempDir::new("t").unwrap();
            kept = d.path().to_path_buf();
            assert!(kept.is_dir());
            std::fs::write(kept.join("x"), b"y").unwrap();
        }
        assert!(!kept.exists());
    }

    #[test]
    fn distinct_paths() {
        let a = TempDir::new("t").unwrap();
        let b = TempDir::new("t").unwrap();
        assert_ne!(a.path(), b.path());
    }
}
