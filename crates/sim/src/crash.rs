//! Failure schedules: pre-planned crash/recover sequences for
//! randomized campaigns.

use crate::process::Process;
use crate::time::SimTime;
use crate::world::World;
use acp_types::SiteId;
use rand::rngs::StdRng;
use rand::Rng;

/// One planned outage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outage {
    /// The site that fails.
    pub site: SiteId,
    /// When it crashes.
    pub crash_at: SimTime,
    /// When it recovers (the paper assumes every failed site
    /// "will, eventually, recover").
    pub recover_at: SimTime,
}

/// A set of planned outages to apply to a world.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailureSchedule {
    /// The outages, in no particular order.
    pub outages: Vec<Outage>,
}

impl FailureSchedule {
    /// No failures.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A single outage.
    #[must_use]
    pub fn single(site: SiteId, crash_at: SimTime, recover_at: SimTime) -> Self {
        assert!(recover_at > crash_at, "recovery must follow the crash");
        FailureSchedule {
            outages: vec![Outage {
                site,
                crash_at,
                recover_at,
            }],
        }
    }

    /// Add an outage.
    pub fn push(&mut self, site: SiteId, crash_at: SimTime, recover_at: SimTime) {
        assert!(recover_at > crash_at, "recovery must follow the crash");
        self.outages.push(Outage {
            site,
            crash_at,
            recover_at,
        });
    }

    /// Generate `count` random outages across `sites` within
    /// `[0, horizon)`, each lasting at most `max_outage`.
    #[must_use]
    pub fn random(
        rng: &mut StdRng,
        sites: &[SiteId],
        horizon: SimTime,
        count: usize,
        max_outage: SimTime,
    ) -> Self {
        assert!(!sites.is_empty(), "need at least one site");
        assert!(horizon > SimTime::ZERO && max_outage > SimTime::ZERO);
        let mut schedule = FailureSchedule::none();
        for _ in 0..count {
            let site = sites[rng.random_range(0..sites.len())];
            let crash_at = SimTime::from_micros(rng.random_range(0..horizon.as_micros()));
            let outage = SimTime::from_micros(rng.random_range(1..=max_outage.as_micros()));
            schedule.push(site, crash_at, crash_at + outage);
        }
        schedule
    }

    /// Enqueue every outage in a world.
    pub fn apply<P: Process>(&self, world: &mut World<P>) {
        for o in &self.outages {
            world.schedule_crash(o.site, o.crash_at);
            world.schedule_recover(o.site, o.recover_at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_schedules_are_reproducible_and_bounded() {
        let sites = [SiteId::new(0), SiteId::new(1), SiteId::new(2)];
        let horizon = SimTime::from_millis(100);
        let max_outage = SimTime::from_millis(10);
        let make = || {
            let mut rng = StdRng::seed_from_u64(5);
            FailureSchedule::random(&mut rng, &sites, horizon, 20, max_outage)
        };
        let a = make();
        assert_eq!(a, make());
        assert_eq!(a.outages.len(), 20);
        for o in &a.outages {
            assert!(o.crash_at < horizon);
            assert!(o.recover_at > o.crash_at);
            assert!(o.recover_at - o.crash_at <= max_outage);
            assert!(sites.contains(&o.site));
        }
    }

    #[test]
    #[should_panic(expected = "recovery must follow the crash")]
    fn rejects_backwards_outage() {
        let _ = FailureSchedule::single(SiteId::new(0), SimTime(10), SimTime(10));
    }
}
