//! Failure schedules: pre-planned crash/recover sequences for
//! randomized campaigns.
//!
//! ## Overlap semantics
//!
//! A schedule may contain any number of outages per site, including
//! back-to-back and overlapping ones (a "double crash": the site fails
//! again while it is still down or the instant it comes back). The
//! defined meaning is the **union**: a site is down at time `t` iff `t`
//! falls inside at least one of its `[crash_at, recover_at)` intervals.
//! [`FailureSchedule::apply`] enforces this by merging each site's
//! overlapping or adjacent intervals before scheduling, so the world
//! never sees a recovery event that lands inside a later outage (which
//! would otherwise resurrect the site mid-outage — the bug this
//! normalization exists to prevent).
//!
//! A second crash strictly *after* a recovery, however close, is kept as
//! a distinct outage: the site runs its recovery procedure, may get
//! partway through re-resolving in-doubt transactions, and crashes
//! again. That is the crash-during-recovery schedule the double-crash
//! sweeps in `tests/double_crash.rs` exercise; recovery must be
//! idempotent under it.

use crate::process::Process;
use crate::time::SimTime;
use crate::world::World;
use acp_types::SiteId;
use rand::rngs::StdRng;
use rand::Rng;

/// One planned outage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outage {
    /// The site that fails.
    pub site: SiteId,
    /// When it crashes.
    pub crash_at: SimTime,
    /// When it recovers (the paper assumes every failed site
    /// "will, eventually, recover").
    pub recover_at: SimTime,
}

/// A set of planned outages to apply to a world.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailureSchedule {
    /// The outages, in no particular order.
    pub outages: Vec<Outage>,
}

impl FailureSchedule {
    /// No failures.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A single outage.
    #[must_use]
    pub fn single(site: SiteId, crash_at: SimTime, recover_at: SimTime) -> Self {
        assert!(recover_at > crash_at, "recovery must follow the crash");
        FailureSchedule {
            outages: vec![Outage {
                site,
                crash_at,
                recover_at,
            }],
        }
    }

    /// Add an outage. Outages of the same site may overlap or touch;
    /// see the module docs for the union semantics this implies.
    pub fn push(&mut self, site: SiteId, crash_at: SimTime, recover_at: SimTime) {
        assert!(recover_at > crash_at, "recovery must follow the crash");
        self.outages.push(Outage {
            site,
            crash_at,
            recover_at,
        });
    }

    /// A crash-during-recovery schedule: the site crashes, recovers at
    /// `first_recover`, gets `redo_window` of virtual time to re-run its
    /// recovery procedure, then crashes again for `second_outage`.
    ///
    /// With `redo_window` zero the two outages touch and merge into one
    /// (the recovery at the boundary never runs); any positive window
    /// interrupts an in-progress recovery, which must be idempotent.
    #[must_use]
    pub fn double_crash(
        site: SiteId,
        crash_at: SimTime,
        first_recover: SimTime,
        redo_window: SimTime,
        second_outage: SimTime,
    ) -> Self {
        assert!(second_outage > SimTime::ZERO, "second outage must be nonempty");
        let mut s = Self::single(site, crash_at, first_recover);
        let second_crash = first_recover + redo_window;
        s.push(site, second_crash, second_crash + second_outage);
        s
    }

    /// Each site's down intervals under the union semantics: overlapping
    /// or adjacent outages merged, sorted by crash time. This is exactly
    /// what [`FailureSchedule::apply`] schedules.
    #[must_use]
    pub fn merged(&self) -> Vec<Outage> {
        let mut sorted = self.outages.clone();
        sorted.sort_by_key(|o| (o.site, o.crash_at, o.recover_at));
        let mut out: Vec<Outage> = Vec::with_capacity(sorted.len());
        for o in sorted {
            match out.last_mut() {
                Some(prev) if prev.site == o.site && o.crash_at <= prev.recover_at => {
                    prev.recover_at = prev.recover_at.max(o.recover_at);
                }
                _ => out.push(o),
            }
        }
        out
    }

    /// Is `site` down at time `t` under this schedule (union semantics)?
    #[must_use]
    pub fn is_down_at(&self, site: SiteId, t: SimTime) -> bool {
        self.outages
            .iter()
            .any(|o| o.site == site && o.crash_at <= t && t < o.recover_at)
    }

    /// Generate `count` random outages across `sites` within
    /// `[0, horizon)`, each lasting at most `max_outage`.
    #[must_use]
    pub fn random(
        rng: &mut StdRng,
        sites: &[SiteId],
        horizon: SimTime,
        count: usize,
        max_outage: SimTime,
    ) -> Self {
        assert!(!sites.is_empty(), "need at least one site");
        assert!(horizon > SimTime::ZERO && max_outage > SimTime::ZERO);
        let mut schedule = FailureSchedule::none();
        for _ in 0..count {
            let site = sites[rng.random_range(0..sites.len())];
            let crash_at = SimTime::from_micros(rng.random_range(0..horizon.as_micros()));
            let outage = SimTime::from_micros(rng.random_range(1..=max_outage.as_micros()));
            schedule.push(site, crash_at, crash_at + outage);
        }
        schedule
    }

    /// Enqueue every outage in a world, after merging overlapping and
    /// adjacent same-site outages (union semantics — see module docs).
    pub fn apply<P: Process>(&self, world: &mut World<P>) {
        for o in self.merged() {
            world.schedule_crash(o.site, o.crash_at);
            world.schedule_recover(o.site, o.recover_at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_schedules_are_reproducible_and_bounded() {
        let sites = [SiteId::new(0), SiteId::new(1), SiteId::new(2)];
        let horizon = SimTime::from_millis(100);
        let max_outage = SimTime::from_millis(10);
        let make = || {
            let mut rng = StdRng::seed_from_u64(5);
            FailureSchedule::random(&mut rng, &sites, horizon, 20, max_outage)
        };
        let a = make();
        assert_eq!(a, make());
        assert_eq!(a.outages.len(), 20);
        for o in &a.outages {
            assert!(o.crash_at < horizon);
            assert!(o.recover_at > o.crash_at);
            assert!(o.recover_at - o.crash_at <= max_outage);
            assert!(sites.contains(&o.site));
        }
    }

    #[test]
    #[should_panic(expected = "recovery must follow the crash")]
    fn rejects_backwards_outage() {
        let _ = FailureSchedule::single(SiteId::new(0), SimTime(10), SimTime(10));
    }

    #[test]
    fn overlapping_same_site_outages_merge_to_union() {
        let s = SiteId::new(3);
        let mut sched = FailureSchedule::single(s, SimTime(10), SimTime(30));
        // Second crash lands while the site is still down.
        sched.push(s, SimTime(20), SimTime(50));
        let merged = sched.merged();
        assert_eq!(
            merged,
            vec![Outage {
                site: s,
                crash_at: SimTime(10),
                recover_at: SimTime(50),
            }]
        );
        for (t, down) in [(9, false), (10, true), (35, true), (49, true), (50, false)] {
            assert_eq!(sched.is_down_at(s, SimTime(t)), down, "t={t}");
        }
    }

    #[test]
    fn back_to_back_outages_fuse_at_the_boundary() {
        let s = SiteId::new(1);
        let mut sched = FailureSchedule::single(s, SimTime(10), SimTime(20));
        sched.push(s, SimTime(20), SimTime(40));
        assert_eq!(sched.merged().len(), 1);
        assert_eq!(sched.merged()[0].recover_at, SimTime(40));
    }

    #[test]
    fn disjoint_outages_and_other_sites_stay_separate() {
        let a = SiteId::new(0);
        let b = SiteId::new(1);
        let mut sched = FailureSchedule::single(a, SimTime(10), SimTime(20));
        sched.push(a, SimTime(25), SimTime(30)); // crash during recovery window
        sched.push(b, SimTime(12), SimTime(28)); // overlaps in time, not site
        let merged = sched.merged();
        assert_eq!(merged.len(), 3);
        assert!(!sched.is_down_at(a, SimTime(22)));
        assert!(sched.is_down_at(a, SimTime(27)));
        assert!(sched.is_down_at(b, SimTime(22)));
    }

    #[test]
    fn double_crash_constructor_shapes() {
        let s = SiteId::new(2);
        // Positive redo window: two distinct outages.
        let sched =
            FailureSchedule::double_crash(s, SimTime(100), SimTime(200), SimTime(50), SimTime(80));
        assert_eq!(
            sched.merged(),
            vec![
                Outage {
                    site: s,
                    crash_at: SimTime(100),
                    recover_at: SimTime(200)
                },
                Outage {
                    site: s,
                    crash_at: SimTime(250),
                    recover_at: SimTime(330)
                },
            ]
        );
        // Zero redo window: the boundary recovery never happens.
        let sched =
            FailureSchedule::double_crash(s, SimTime(100), SimTime(200), SimTime::ZERO, SimTime(80));
        assert_eq!(
            sched.merged(),
            vec![Outage {
                site: s,
                crash_at: SimTime(100),
                recover_at: SimTime(280)
            }]
        );
    }

    #[test]
    fn world_down_status_matches_union_for_overlapping_outages() {
        use crate::network::NetworkConfig;
        use crate::process::Context;
        use acp_types::Message;

        struct Idle;
        impl Process for Idle {
            fn on_message(&mut self, _m: &Message, _ctx: &mut Context) {}
        }

        let s = SiteId::new(0);
        let mut sched = FailureSchedule::single(s, SimTime(10), SimTime(30));
        sched.push(s, SimTime(20), SimTime(50)); // overlap: union is [10, 50)
        let mut w = World::new(NetworkConfig::reliable(SimTime(1)), 0);
        w.add(s, Idle);
        sched.apply(&mut w);

        // Without normalization the recovery at 30 would resurrect the
        // site inside the second outage.
        w.run_until(SimTime(35));
        assert!(!w.is_up(s), "site must still be down at t=35 (union of outages)");
        w.run_until(SimTime(60));
        assert!(w.is_up(s));
    }
}
