//! # acp-sim
//!
//! Deterministic discrete-event simulation substrate.
//!
//! The paper's proofs quantify over failures "in spite of communication
//! and site failures" at arbitrary points in the protocol. To turn those
//! arguments into experiments we need an environment where
//!
//! * time, message delivery order, loss and crash points are all drawn
//!   from a seeded RNG (reproducible campaigns), and
//! * a site's volatile state and its stable log are rigorously
//!   separated, so a crash loses exactly what the paper says it loses.
//!
//! A [`world::World`] owns a set of [`process::Process`]es (one per
//! site), an event queue and a [`network::Network`] model. Processes are
//! fail-stop: a crash suspends event delivery and invalidates timers
//! until the scheduled recovery, whereupon the process is notified and
//! may analyze its stable log (the recovery procedures of §4.2 live in
//! `acp-core`; this crate only provides the machinery).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crash;
pub mod event;
pub mod network;
pub mod process;
pub mod time;
pub mod trace;
pub mod world;

pub use crash::FailureSchedule;
pub use event::SimEvent;
pub use network::{Network, NetworkConfig};
pub use process::{Context, Process};
pub use time::SimTime;
pub use trace::{Trace, TraceEntry, TraceKind};
pub use world::World;
