//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in abstract microseconds.
///
/// Only differences and ordering matter to the protocols; the unit is
/// fixed so network/storage latency parameters read naturally.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// The raw microsecond count.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{}ms", self.0 / 1_000)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(2);
        let b = SimTime::from_micros(500);
        assert_eq!((a + b).as_micros(), 2_500);
        assert_eq!((a - b).as_micros(), 1_500);
        assert_eq!(b - a, SimTime::ZERO, "subtraction saturates");
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(3).to_string(), "3ms");
        assert_eq!(SimTime::from_micros(1500).to_string(), "1500us");
    }
}
