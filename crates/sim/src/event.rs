//! Simulation events and the priority queue ordering.

use crate::time::SimTime;
use acp_types::{Message, SiteId};

/// Something scheduled to happen in the simulated world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimEvent {
    /// A message arrives at its destination.
    Deliver(Message),
    /// A site-local timer fires. `incarnation` identifies the boot of
    /// the site that set it: timers are volatile, so a timer set before
    /// a crash must not fire after recovery.
    Timer {
        /// The site whose timer fires.
        site: SiteId,
        /// Opaque token chosen by the process when the timer was set.
        token: u64,
        /// Site incarnation at set time.
        incarnation: u64,
    },
    /// The site fail-stops: volatile state is lost, stable log survives.
    Crash {
        /// The crashing site.
        site: SiteId,
    },
    /// The site completes restart and runs its recovery procedure.
    Recover {
        /// The recovering site.
        site: SiteId,
    },
}

/// A queue entry: event plus its firing time and a tie-breaking sequence
/// number (FIFO among simultaneous events, keeping runs deterministic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scheduled {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-breaker: insertion order.
    pub seq: u64,
    /// The event.
    pub event: SimEvent,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn heap_pops_earliest_first_fifo_on_ties() {
        let mut h = BinaryHeap::new();
        let crash = |s: u32| SimEvent::Crash {
            site: SiteId::new(s),
        };
        h.push(Scheduled {
            at: SimTime(5),
            seq: 0,
            event: crash(0),
        });
        h.push(Scheduled {
            at: SimTime(3),
            seq: 1,
            event: crash(1),
        });
        h.push(Scheduled {
            at: SimTime(3),
            seq: 2,
            event: crash(2),
        });

        let order: Vec<_> = std::iter::from_fn(|| h.pop()).collect();
        assert_eq!(order[0].event, crash(1));
        assert_eq!(order[1].event, crash(2), "ties broken FIFO");
        assert_eq!(order[2].event, crash(0));
    }
}
