//! The process interface sites implement, and the context through which
//! they act on the world.

use crate::time::SimTime;
use acp_types::{Message, Payload, SiteId};

/// Collects the outputs of one event-handler invocation: messages to
/// send, timers to set and trace notes. The world drains it after the
/// handler returns.
#[derive(Debug)]
pub struct Context {
    /// Current virtual time.
    pub now: SimTime,
    /// The site this context belongs to.
    pub self_id: SiteId,
    pub(crate) outbox: Vec<Message>,
    pub(crate) timers: Vec<(SimTime, u64)>,
    pub(crate) notes: Vec<(String, String)>,
}

impl Context {
    pub(crate) fn new(now: SimTime, self_id: SiteId) -> Self {
        Context {
            now,
            self_id,
            outbox: Vec::new(),
            timers: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Send a message to another site.
    pub fn send(&mut self, to: SiteId, payload: Payload) {
        self.outbox.push(Message::new(self.self_id, to, payload));
    }

    /// Set a volatile timer that fires `delay` from now with the given
    /// token — unless this site crashes first.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.timers.push((delay, token));
    }

    /// Emit a protocol-level trace note (e.g. `"force:commit"`).
    pub fn note(&mut self, tag: impl Into<String>, detail: impl Into<String>) {
        self.notes.push((tag.into(), detail.into()));
    }
}

/// A fail-stop process occupying one site of the simulated world.
///
/// Handlers are invoked only while the site is up. Between a
/// [`Process::on_crash`] and the matching [`Process::on_recover`] the
/// site receives nothing; messages addressed to it are lost and its
/// timers are invalidated (they were volatile state).
pub trait Process {
    /// Called once when the world starts, to kick off initial work.
    fn on_start(&mut self, _ctx: &mut Context) {}

    /// A message arrived.
    fn on_message(&mut self, msg: &Message, ctx: &mut Context);

    /// A timer set via [`Context::set_timer`] fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Context) {}

    /// The site fail-stops. Implementations must discard exactly their
    /// volatile state here (protocol tables, buffered log records) and
    /// keep exactly their stable state (the forced log).
    fn on_crash(&mut self) {}

    /// The site restarts; run the recovery procedure (log analysis,
    /// re-sent decisions, inquiries).
    fn on_recover(&mut self, _ctx: &mut Context) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::TxnId;

    #[test]
    fn context_collects_outputs() {
        let mut ctx = Context::new(SimTime(10), SiteId::new(1));
        ctx.send(SiteId::new(2), Payload::Ack { txn: TxnId::new(1) });
        ctx.set_timer(SimTime(100), 7);
        ctx.note("force:prepared", "T1");
        assert_eq!(ctx.outbox.len(), 1);
        assert_eq!(ctx.outbox[0].from, SiteId::new(1));
        assert_eq!(ctx.timers, vec![(SimTime(100), 7)]);
        assert_eq!(ctx.notes[0].0, "force:prepared");
    }
}
