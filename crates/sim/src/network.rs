//! Network model: latency, message loss and partitions.
//!
//! The paper's failure model allows omission failures — messages may be
//! lost, and messages addressed to a crashed site are lost. The network
//! draws per-message latency uniformly from a configured range and drops
//! messages with a configured probability or when the link is
//! partitioned.

use crate::time::SimTime;
use acp_types::SiteId;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Network parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Minimum one-way latency.
    pub min_latency: SimTime,
    /// Maximum one-way latency (inclusive).
    pub max_latency: SimTime,
    /// Probability a message is silently dropped (0.0 ..= 1.0).
    pub loss_probability: f64,
    /// Deliver messages on each (sender, receiver) link in send order,
    /// like a TCP connection (on by default). The protocols' footnote-5
    /// rule — "a participant without any memory regarding a transaction
    /// is assumed to have already received and enforced the decision" —
    /// is only sound without reordering, so turn this off only to study
    /// what breaks.
    pub fifo: bool,
}

impl NetworkConfig {
    /// A perfectly reliable network with fixed latency — the baseline
    /// for figure-trace experiments where the exact schedule matters.
    #[must_use]
    pub fn reliable(latency: SimTime) -> Self {
        NetworkConfig {
            min_latency: latency,
            max_latency: latency,
            loss_probability: 0.0,
            fifo: true,
        }
    }

    /// A LAN-ish default: 100–500us latency, no loss.
    #[must_use]
    pub fn lan() -> Self {
        NetworkConfig {
            min_latency: SimTime::from_micros(100),
            max_latency: SimTime::from_micros(500),
            loss_probability: 0.0,
            fifo: true,
        }
    }

    /// A lossy network for failure campaigns.
    #[must_use]
    pub fn lossy(loss_probability: f64) -> Self {
        NetworkConfig {
            loss_probability,
            ..Self::lan()
        }
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self::lan()
    }
}

/// The fate the network assigns a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Delivered at the given absolute time.
    Deliver(SimTime),
    /// Silently dropped.
    Drop,
}

/// The network: decides each message's fate deterministically from the
/// world's RNG.
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    /// Unordered pairs of sites that cannot currently communicate.
    partitions: BTreeSet<(SiteId, SiteId)>,
    /// Last scheduled delivery per directed link (FIFO enforcement).
    last_delivery: BTreeMap<(SiteId, SiteId), SimTime>,
}

fn pair(a: SiteId, b: SiteId) -> (SiteId, SiteId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Network {
    /// Build a network with the given parameters.
    #[must_use]
    pub fn new(config: NetworkConfig) -> Self {
        Network {
            config,
            partitions: BTreeSet::new(),
            last_delivery: BTreeMap::new(),
        }
    }

    /// Sever the link between two sites (both directions).
    pub fn partition(&mut self, a: SiteId, b: SiteId) {
        self.partitions.insert(pair(a, b));
    }

    /// Restore the link between two sites.
    pub fn heal(&mut self, a: SiteId, b: SiteId) {
        self.partitions.remove(&pair(a, b));
    }

    /// Is the link between two sites currently severed?
    #[must_use]
    pub fn is_partitioned(&self, a: SiteId, b: SiteId) -> bool {
        self.partitions.contains(&pair(a, b))
    }

    /// Decide the fate of a message sent at `now` from `from` to `to`.
    /// On delivery the returned time is absolute.
    pub fn fate(&mut self, from: SiteId, to: SiteId, now: SimTime, rng: &mut StdRng) -> Fate {
        if self.is_partitioned(from, to) {
            return Fate::Drop;
        }
        if self.config.loss_probability > 0.0 && rng.random::<f64>() < self.config.loss_probability
        {
            return Fate::Drop;
        }
        let (lo, hi) = (
            self.config.min_latency.as_micros(),
            self.config.max_latency.as_micros(),
        );
        let delay = if lo == hi {
            lo
        } else {
            rng.random_range(lo..=hi)
        };
        let mut at = now + SimTime::from_micros(delay);
        if self.config.fifo {
            if let Some(&last) = self.last_delivery.get(&(from, to)) {
                at = at.max(last + SimTime::from_micros(1));
            }
            self.last_delivery.insert((from, to), at);
        }
        Fate::Deliver(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn reliable_network_has_fixed_delay() {
        let mut n = Network::new(NetworkConfig::reliable(SimTime::from_micros(250)));
        let mut r = rng();
        for i in 0..10u64 {
            let now = SimTime::from_millis(i);
            assert_eq!(
                n.fate(SiteId::new(0), SiteId::new(1), now, &mut r),
                Fate::Deliver(now + SimTime::from_micros(250))
            );
        }
    }

    #[test]
    fn fifo_links_never_reorder() {
        let mut n = Network::new(NetworkConfig::lan());
        let mut r = rng();
        let mut last = SimTime::ZERO;
        for _ in 0..200 {
            // All sent at the same instant: delivery times must still be
            // strictly increasing on the link.
            match n.fate(SiteId::new(0), SiteId::new(1), SimTime::ZERO, &mut r) {
                Fate::Deliver(at) => {
                    assert!(at > last, "{at:?} !> {last:?}");
                    last = at;
                }
                Fate::Drop => panic!("lossless network dropped a message"),
            }
        }
    }

    #[test]
    fn non_fifo_network_can_reorder() {
        let mut cfg = NetworkConfig::lan();
        cfg.fifo = false;
        let mut n = Network::new(cfg);
        let mut r = rng();
        let times: Vec<SimTime> = (0..200)
            .map(
                |_| match n.fate(SiteId::new(0), SiteId::new(1), SimTime::ZERO, &mut r) {
                    Fate::Deliver(at) => at,
                    Fate::Drop => panic!(),
                },
            )
            .collect();
        assert!(
            times.windows(2).any(|w| w[1] < w[0]),
            "expected at least one reorder"
        );
    }

    #[test]
    fn latency_stays_in_range() {
        let mut r = rng();
        let mut cfg = NetworkConfig::lan();
        cfg.fifo = false;
        let mut n = Network::new(cfg);
        for _ in 0..1000 {
            match n.fate(SiteId::new(0), SiteId::new(1), SimTime::ZERO, &mut r) {
                Fate::Deliver(d) => {
                    assert!(d >= SimTime::from_micros(100) && d <= SimTime::from_micros(500))
                }
                Fate::Drop => panic!("lossless network dropped a message"),
            }
        }
    }

    #[test]
    fn loss_probability_respected_statistically() {
        let mut n = Network::new(NetworkConfig::lossy(0.3));
        let mut r = rng();
        let drops = (0..10_000)
            .filter(|_| n.fate(SiteId::new(0), SiteId::new(1), SimTime::ZERO, &mut r) == Fate::Drop)
            .count();
        assert!((2_500..3_500).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn partitions_are_symmetric_and_healable() {
        let mut n = Network::new(NetworkConfig::lan());
        let (a, b) = (SiteId::new(3), SiteId::new(1));
        n.partition(a, b);
        let mut r = rng();
        assert_eq!(n.fate(a, b, SimTime::ZERO, &mut r), Fate::Drop);
        assert_eq!(n.fate(b, a, SimTime::ZERO, &mut r), Fate::Drop);
        assert!(n.is_partitioned(b, a));
        n.heal(b, a);
        assert!(matches!(
            n.fate(a, b, SimTime::ZERO, &mut r),
            Fate::Deliver(_)
        ));
    }

    #[test]
    fn same_seed_same_fates() {
        let run = || {
            let mut n = Network::new(NetworkConfig::lossy(0.2));
            let mut r = rng();
            (0..100)
                .map(|_| n.fate(SiteId::new(0), SiteId::new(1), SimTime::ZERO, &mut r))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
