//! Execution traces.
//!
//! Every world records what happened: messages sent/delivered/dropped,
//! crashes, recoveries, and protocol-level notes emitted by processes
//! (log writes, decisions, forgets). The figure experiments (E1–E4)
//! assert on these traces; debugging reads them.

use crate::time::SimTime;
use acp_types::{Message, SiteId};
use std::fmt;

/// What a trace entry describes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A message was handed to the network.
    Sent(Message),
    /// A message arrived and was processed.
    Delivered(Message),
    /// A message was lost (network drop, partition, or dead receiver).
    Dropped(Message),
    /// A site crashed.
    Crashed(SiteId),
    /// A site recovered.
    Recovered(SiteId),
    /// A protocol-level note from a site: log writes, decisions,
    /// forgets. `tag` is machine-matchable, `detail` human-readable.
    Note {
        /// The site emitting the note.
        site: SiteId,
        /// Machine-matchable tag, e.g. `"force:initiation"`.
        tag: String,
        /// Human-readable elaboration.
        detail: String,
    },
}

/// A timestamped trace entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>8}  ", self.at.to_string())?;
        match &self.kind {
            TraceKind::Sent(m) => write!(f, "send     {m}"),
            TraceKind::Delivered(m) => write!(f, "deliver  {m}"),
            TraceKind::Dropped(m) => write!(f, "drop     {m}"),
            TraceKind::Crashed(s) => write!(f, "CRASH    {s}"),
            TraceKind::Recovered(s) => write!(f, "RECOVER  {s}"),
            TraceKind::Note { site, tag, detail } => write!(f, "note     {site} {tag}: {detail}"),
        }
    }
}

/// An append-only execution trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry.
    pub fn push(&mut self, at: SimTime, kind: TraceKind) {
        self.entries.push(TraceEntry { at, kind });
    }

    /// All entries in order.
    #[must_use]
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Notes from one site whose tag starts with `prefix`, in order.
    pub fn notes_of<'a>(
        &'a self,
        site: SiteId,
        prefix: &'a str,
    ) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| {
            matches!(&e.kind, TraceKind::Note { site: s, tag, .. } if *s == site && tag.starts_with(prefix))
        })
    }

    /// The ordered list of note tags emitted by a site — the "schedule"
    /// the figure experiments compare against the paper.
    #[must_use]
    pub fn tag_schedule(&self, site: SiteId) -> Vec<String> {
        self.entries
            .iter()
            .filter_map(|e| match &e.kind {
                TraceKind::Note { site: s, tag, .. } if *s == site => Some(tag.clone()),
                _ => None,
            })
            .collect()
    }

    /// Render the whole trace (one entry per line).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::{Payload, TxnId};

    #[test]
    fn schedule_extraction_per_site() {
        let mut t = Trace::new();
        let s0 = SiteId::new(0);
        let s1 = SiteId::new(1);
        t.push(
            SimTime(1),
            TraceKind::Note {
                site: s0,
                tag: "force:initiation".into(),
                detail: String::new(),
            },
        );
        t.push(
            SimTime(2),
            TraceKind::Note {
                site: s1,
                tag: "force:prepared".into(),
                detail: String::new(),
            },
        );
        t.push(
            SimTime(3),
            TraceKind::Note {
                site: s0,
                tag: "force:commit".into(),
                detail: String::new(),
            },
        );
        assert_eq!(t.tag_schedule(s0), vec!["force:initiation", "force:commit"]);
        assert_eq!(t.notes_of(s0, "force:").count(), 2);
        assert_eq!(t.notes_of(s1, "force:prepared").count(), 1);
    }

    #[test]
    fn render_is_line_per_entry() {
        let mut t = Trace::new();
        let m = Message::new(
            SiteId::new(0),
            SiteId::new(1),
            Payload::Prepare { txn: TxnId::new(1) },
        );
        t.push(SimTime(0), TraceKind::Sent(m.clone()));
        t.push(SimTime(5), TraceKind::Delivered(m));
        t.push(SimTime(9), TraceKind::Crashed(SiteId::new(1)));
        let r = t.render();
        assert_eq!(r.lines().count(), 3);
        assert!(r.contains("CRASH"));
    }
}
