//! The simulated world: event loop, site lifecycle and determinism.

use crate::event::{Scheduled, SimEvent};
use crate::network::{Fate, Network, NetworkConfig};
use crate::process::{Context, Process};
use crate::time::SimTime;
use crate::trace::{Trace, TraceKind};
use acp_obs::{ProtoLabel, ProtocolEvent, TraceSink};
use acp_types::{Message, SiteId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::Arc;

/// A deterministic simulated world of fail-stop sites.
///
/// Determinism: all nondeterminism (latencies, losses) is drawn from a
/// single seeded RNG; simultaneous events fire in insertion order; site
/// containers are `BTreeMap`s. Two worlds built identically with the
/// same seed produce byte-identical traces.
pub struct World<P: Process> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    procs: BTreeMap<SiteId, P>,
    down: BTreeSet<SiteId>,
    incarnation: BTreeMap<SiteId, u64>,
    network: Network,
    rng: StdRng,
    trace: Trace,
    events_processed: u64,
    /// Optional typed-event sink (transport-level events: sends,
    /// deliveries, crashes, recoveries). Protocol-level events are the
    /// processes' business.
    sink: Option<Arc<dyn TraceSink>>,
    /// Protocol attribution per site for emitted events.
    labels: BTreeMap<SiteId, ProtoLabel>,
}

impl<P: Process> World<P> {
    /// Build a world with the given network model and RNG seed.
    #[must_use]
    pub fn new(config: NetworkConfig, seed: u64) -> Self {
        World {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            procs: BTreeMap::new(),
            down: BTreeSet::new(),
            incarnation: BTreeMap::new(),
            network: Network::new(config),
            rng: StdRng::seed_from_u64(seed),
            trace: Trace::new(),
            events_processed: 0,
            sink: None,
            labels: BTreeMap::new(),
        }
    }

    /// Attach a typed-event sink. The world emits [`ProtocolEvent`]s for
    /// network sends/deliveries and site crashes/recoveries (timestamped
    /// in virtual microseconds); protocol-level events are emitted by
    /// the processes themselves.
    pub fn set_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Set the protocol label attributed to `site`'s transport events
    /// (defaults to [`ProtoLabel::Other`]).
    pub fn set_label(&mut self, site: SiteId, label: ProtoLabel) {
        self.labels.insert(site, label);
    }

    fn label(&self, site: SiteId) -> ProtoLabel {
        self.labels.get(&site).copied().unwrap_or(ProtoLabel::Other)
    }

    fn emit(&self, ev: ProtocolEvent) {
        if let Some(sink) = &self.sink {
            sink.record(&ev);
        }
    }

    fn emit_send(&self, msg: &Message) {
        if self.sink.is_some() {
            self.emit(ProtocolEvent::MsgSend {
                at_us: self.now.as_micros(),
                site: msg.from.raw(),
                proto: self.label(msg.from),
                to: msg.to.raw(),
                kind: msg.payload.kind_name(),
                txn: Some(msg.payload.txn().raw()),
            });
        }
    }

    /// Add a site. Panics if the id is already taken.
    pub fn add(&mut self, site: SiteId, process: P) {
        let prev = self.procs.insert(site, process);
        assert!(prev.is_none(), "duplicate site {site}");
        self.incarnation.insert(site, 0);
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Is the site currently up?
    #[must_use]
    pub fn is_up(&self, site: SiteId) -> bool {
        !self.down.contains(&site)
    }

    /// Immutable access to a site's process (for assertions).
    #[must_use]
    pub fn process(&self, site: SiteId) -> &P {
        &self.procs[&site]
    }

    /// Mutable access to a site's process (for test instrumentation).
    pub fn process_mut(&mut self, site: SiteId) -> &mut P {
        self.procs.get_mut(&site).expect("unknown site")
    }

    /// The execution trace so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Mutable access to the network (to create/heal partitions).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    fn push(&mut self, at: SimTime, event: SimEvent) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, event });
    }

    /// Schedule a crash of `site` at absolute time `at`.
    pub fn schedule_crash(&mut self, site: SiteId, at: SimTime) {
        self.push(at, SimEvent::Crash { site });
    }

    /// Schedule a recovery of `site` at absolute time `at`.
    pub fn schedule_recover(&mut self, site: SiteId, at: SimTime) {
        self.push(at, SimEvent::Recover { site });
    }

    /// Crash a site immediately (takes effect before the next event).
    pub fn crash_now(&mut self, site: SiteId) {
        self.apply_crash(site);
    }

    /// Recover a site immediately (takes effect before the next event).
    pub fn recover_now(&mut self, site: SiteId) {
        self.apply_recover(site);
    }

    /// Invoke `on_start` on every site, collecting initial messages.
    pub fn start(&mut self) {
        let sites: Vec<SiteId> = self.procs.keys().copied().collect();
        for site in sites {
            let mut ctx = Context::new(self.now, site);
            self.procs.get_mut(&site).expect("site").on_start(&mut ctx);
            self.drain(site, ctx);
        }
    }

    /// Route one handler's outputs into the queue and the trace.
    fn drain(&mut self, site: SiteId, ctx: Context) {
        let Context {
            outbox,
            timers,
            notes,
            ..
        } = ctx;
        for (tag, detail) in notes {
            self.trace
                .push(self.now, TraceKind::Note { site, tag, detail });
        }
        for msg in outbox {
            self.trace.push(self.now, TraceKind::Sent(msg.clone()));
            self.emit_send(&msg);
            match self.network.fate(msg.from, msg.to, self.now, &mut self.rng) {
                Fate::Deliver(at) => {
                    self.push(at, SimEvent::Deliver(msg));
                }
                Fate::Drop => self.trace.push(self.now, TraceKind::Dropped(msg)),
            }
        }
        let inc = self.incarnation[&site];
        for (delay, token) in timers {
            let at = self.now + delay;
            self.push(
                at,
                SimEvent::Timer {
                    site,
                    token,
                    incarnation: inc,
                },
            );
        }
    }

    fn apply_crash(&mut self, site: SiteId) {
        if !self.down.insert(site) {
            return; // already down
        }
        self.trace.push(self.now, TraceKind::Crashed(site));
        self.emit(ProtocolEvent::CrashObserved {
            at_us: self.now.as_micros(),
            site: site.raw(),
            proto: self.label(site),
        });
        self.procs.get_mut(&site).expect("site").on_crash();
    }

    fn apply_recover(&mut self, site: SiteId) {
        if !self.down.remove(&site) {
            return; // not down
        }
        *self.incarnation.get_mut(&site).expect("site") += 1;
        self.trace.push(self.now, TraceKind::Recovered(site));
        self.emit(ProtocolEvent::RecoveryStep {
            at_us: self.now.as_micros(),
            site: site.raw(),
            proto: self.label(site),
            detail: "site back up; restart procedure begins".to_string(),
        });
        let mut ctx = Context::new(self.now, site);
        self.procs
            .get_mut(&site)
            .expect("site")
            .on_recover(&mut ctx);
        self.drain(site, ctx);
    }

    /// Process the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Scheduled { at, event, .. }) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.events_processed += 1;
        match event {
            SimEvent::Deliver(msg) => {
                if self.down.contains(&msg.to) {
                    self.trace.push(self.now, TraceKind::Dropped(msg));
                } else {
                    self.trace.push(self.now, TraceKind::Delivered(msg.clone()));
                    if self.sink.is_some() {
                        self.emit(ProtocolEvent::MsgRecv {
                            at_us: self.now.as_micros(),
                            site: msg.to.raw(),
                            proto: self.label(msg.to),
                            from: msg.from.raw(),
                            kind: msg.payload.kind_name(),
                            txn: Some(msg.payload.txn().raw()),
                        });
                    }
                    let site = msg.to;
                    let mut ctx = Context::new(self.now, site);
                    self.procs
                        .get_mut(&site)
                        .expect("site")
                        .on_message(&msg, &mut ctx);
                    self.drain(site, ctx);
                }
            }
            SimEvent::Timer {
                site,
                token,
                incarnation,
            } => {
                let live = !self.down.contains(&site) && self.incarnation[&site] == incarnation;
                if live {
                    let mut ctx = Context::new(self.now, site);
                    self.procs
                        .get_mut(&site)
                        .expect("site")
                        .on_timer(token, &mut ctx);
                    self.drain(site, ctx);
                }
            }
            SimEvent::Crash { site } => self.apply_crash(site),
            SimEvent::Recover { site } => self.apply_recover(site),
        }
        true
    }

    /// Run until no events remain or `max_events` have been processed.
    /// Returns the number of events processed by this call.
    pub fn run_until_quiescent(&mut self, max_events: u64) -> u64 {
        let start = self.events_processed;
        while self.events_processed - start < max_events {
            if !self.step() {
                break;
            }
        }
        self.events_processed - start
    }

    /// Run until virtual time reaches `until` (events at later times stay
    /// queued) or the queue empties.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(head) = self.queue.peek() {
            if head.at > until {
                break;
            }
            self.step();
        }
        self.now = self.now.max(until);
    }

    /// Iterate over all site ids.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.procs.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acp_types::{Message, Payload, TxnId};

    /// A ping-pong process: replies to every `Prepare` with an `Ack`,
    /// counts what it saw.
    #[derive(Default)]
    struct PingPong {
        received: u32,
        recovered: bool,
        crashed: bool,
    }

    impl Process for PingPong {
        fn on_message(&mut self, msg: &Message, ctx: &mut Context) {
            self.received += 1;
            if let Payload::Prepare { txn } = msg.payload {
                ctx.send(msg.from, Payload::Ack { txn });
            }
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut Context) {
            ctx.send(ctx.self_id, Payload::Ack { txn: TxnId::new(0) });
        }
        fn on_crash(&mut self) {
            self.crashed = true;
        }
        fn on_recover(&mut self, _ctx: &mut Context) {
            self.recovered = true;
        }
    }

    /// A starter that sends one Prepare to site 1 on start.
    struct Starter;
    impl Process for Starter {
        fn on_start(&mut self, ctx: &mut Context) {
            ctx.send(SiteId::new(1), Payload::Prepare { txn: TxnId::new(1) });
        }
        fn on_message(&mut self, _msg: &Message, _ctx: &mut Context) {}
    }

    enum Proc {
        Start(Starter),
        Pong(PingPong),
    }
    impl Process for Proc {
        fn on_start(&mut self, ctx: &mut Context) {
            match self {
                Proc::Start(p) => p.on_start(ctx),
                Proc::Pong(p) => p.on_start(ctx),
            }
        }
        fn on_message(&mut self, m: &Message, ctx: &mut Context) {
            match self {
                Proc::Start(p) => p.on_message(m, ctx),
                Proc::Pong(p) => p.on_message(m, ctx),
            }
        }
        fn on_timer(&mut self, t: u64, ctx: &mut Context) {
            match self {
                Proc::Start(p) => p.on_timer(t, ctx),
                Proc::Pong(p) => p.on_timer(t, ctx),
            }
        }
        fn on_crash(&mut self) {
            match self {
                Proc::Start(p) => p.on_crash(),
                Proc::Pong(p) => p.on_crash(),
            }
        }
        fn on_recover(&mut self, ctx: &mut Context) {
            match self {
                Proc::Start(p) => p.on_recover(ctx),
                Proc::Pong(p) => p.on_recover(ctx),
            }
        }
    }

    fn two_site_world() -> World<Proc> {
        let mut w = World::new(NetworkConfig::reliable(SimTime::from_micros(100)), 1);
        w.add(SiteId::new(0), Proc::Start(Starter));
        w.add(SiteId::new(1), Proc::Pong(PingPong::default()));
        w
    }

    #[test]
    fn message_roundtrip() {
        let mut w = two_site_world();
        w.start();
        w.run_until_quiescent(100);
        match w.process(SiteId::new(1)) {
            Proc::Pong(p) => assert_eq!(p.received, 1),
            _ => unreachable!(),
        }
        // Trace: prepare sent+delivered, ack sent+delivered.
        assert_eq!(w.trace().entries().len(), 4);
        assert_eq!(w.now(), SimTime::from_micros(200));
    }

    #[test]
    fn messages_to_crashed_site_are_dropped() {
        let mut w = two_site_world();
        w.crash_now(SiteId::new(1));
        w.start();
        w.run_until_quiescent(100);
        match w.process(SiteId::new(1)) {
            Proc::Pong(p) => {
                assert_eq!(p.received, 0);
                assert!(p.crashed);
            }
            _ => unreachable!(),
        }
        assert!(w
            .trace()
            .entries()
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Dropped(_))));
    }

    #[test]
    fn recovery_invokes_on_recover_and_resumes_delivery() {
        let mut w = two_site_world();
        w.crash_now(SiteId::new(1));
        w.schedule_recover(SiteId::new(1), SimTime::from_millis(1));
        w.start();
        w.run_until_quiescent(100);
        match w.process(SiteId::new(1)) {
            Proc::Pong(p) => assert!(p.recovered),
            _ => unreachable!(),
        }
        assert!(w.is_up(SiteId::new(1)));
    }

    #[test]
    fn timers_do_not_survive_crash() {
        let mut w = World::new(NetworkConfig::reliable(SimTime::from_micros(10)), 3);
        let s = SiteId::new(0);
        w.add(s, Proc::Pong(PingPong::default()));
        // Set a timer by hand through a message that triggers on_timer via
        // the context: simpler — schedule the timer directly.
        {
            let mut ctx = Context::new(w.now(), s);
            ctx.set_timer(SimTime::from_millis(5), 9);
            w.drain(s, ctx);
        }
        w.schedule_crash(s, SimTime::from_millis(1));
        w.schedule_recover(s, SimTime::from_millis(2));
        w.run_until_quiescent(100);
        match w.process(s) {
            // Timer would have sent a self-message; none should arrive.
            Proc::Pong(p) => assert_eq!(p.received, 0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        let run = |seed: u64| {
            let mut w = World::new(NetworkConfig::lan(), seed);
            w.add(SiteId::new(0), Proc::Start(Starter));
            w.add(SiteId::new(1), Proc::Pong(PingPong::default()));
            w.start();
            w.run_until_quiescent(1000);
            w.trace().render()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn run_until_stops_at_time_bound() {
        let mut w = two_site_world();
        w.start();
        w.run_until(SimTime::from_micros(150));
        // Prepare delivered at 100; ack (due 200) still queued.
        assert_eq!(w.now(), SimTime::from_micros(150));
        match w.process(SiteId::new(1)) {
            Proc::Pong(p) => assert_eq!(p.received, 1),
            _ => unreachable!(),
        }
        w.run_until_quiescent(10);
        assert_eq!(w.now(), SimTime::from_micros(200));
    }

    #[test]
    #[should_panic(expected = "duplicate site")]
    fn duplicate_site_rejected() {
        let mut w = two_site_world();
        w.add(SiteId::new(1), Proc::Start(Starter));
    }
}
