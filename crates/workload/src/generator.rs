//! The open-loop transaction generator: arrivals x keys x shape.
//!
//! [`OpenLoopPlan`] fuses the three sampled dimensions into one
//! reproducible schedule: *when* each transaction arrives (Poisson,
//! [`crate::arrival`]), *what* it touches (zipfian keys,
//! [`crate::keyspace`]), and *where* it runs (how many partitions, and
//! which). The output is pure data — a sorted `Vec<PlannedTxn>` — so
//! the same plan can drive the threaded cluster, the reactor, the
//! multi-reactor shards, or a closed-form model, and two backends fed
//! the same plan are comparable point by point.

use crate::arrival::OpenLoopArrivals;
use crate::keyspace::ZipfKeyspace;
use acp_types::SiteId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How many partitions a transaction spans and how many keys it
/// touches on each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnShape {
    /// Minimum participant partitions.
    pub min_partitions: usize,
    /// Maximum participant partitions (inclusive).
    pub max_partitions: usize,
    /// Keys written per participant partition.
    pub keys_per_partition: usize,
}

impl Default for TxnShape {
    fn default() -> Self {
        TxnShape {
            min_partitions: 2,
            max_partitions: 3,
            keys_per_partition: 2,
        }
    }
}

/// One planned open-loop transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedTxn {
    /// Arrival instant, microseconds from run start.
    pub arrival_us: u64,
    /// Participant sites, sorted and distinct.
    pub participants: Vec<SiteId>,
    /// Keys per participant, `keys_per_partition` each, in participant
    /// order (flattened).
    pub keys: Vec<String>,
    /// Per-transaction identity: seeds the retry policy's jitter.
    pub salt: u64,
}

/// A full open-loop workload configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpenLoopPlan {
    /// Arrival process (offered rate, count, seed).
    pub arrivals: OpenLoopArrivals,
    /// Key population size.
    pub key_population: u64,
    /// Zipfian skew exponent (0 = uniform).
    pub key_skew: f64,
    /// Transaction shape.
    pub shape: TxnShape,
}

impl OpenLoopPlan {
    /// Generate the planned transactions over a pool of participant
    /// sites, sorted by arrival time.
    ///
    /// # Panics
    /// If the shape asks for more partitions than `sites` offers, or
    /// for zero partitions or keys.
    #[must_use]
    pub fn generate(&self, sites: &[SiteId]) -> Vec<PlannedTxn> {
        assert!(self.shape.min_partitions >= 1, "need at least 1 partition");
        assert!(self.shape.keys_per_partition >= 1, "need at least 1 key");
        assert!(self.shape.max_partitions >= self.shape.min_partitions);
        assert!(
            self.shape.max_partitions <= sites.len(),
            "shape spans {} partitions but only {} sites exist",
            self.shape.max_partitions,
            sites.len()
        );
        let schedule = self.arrivals.schedule_us();
        // Shapes and keys come from an rng derived from — but distinct
        // from — the arrival seed, so changing the offered rate does
        // not reshuffle which keys each transaction touches.
        let mut rng = StdRng::seed_from_u64(self.arrivals.seed ^ 0x6b65_7973);
        let keyspace = ZipfKeyspace::new(self.key_population, self.key_skew);
        let mut out = Vec::with_capacity(schedule.len());
        for (i, arrival_us) in schedule.into_iter().enumerate() {
            let n = rng.random_range(self.shape.min_partitions..=self.shape.max_partitions);
            let mut pool = sites.to_vec();
            pool.shuffle(&mut rng);
            let mut participants: Vec<SiteId> = pool.into_iter().take(n).collect();
            participants.sort();
            let keys = (0..n * self.shape.keys_per_partition)
                .map(|_| keyspace.sample_key(&mut rng))
                .collect();
            out.push(PlannedTxn {
                arrival_us,
                participants,
                keys,
                salt: acp_core::harness::jitter_hash(self.arrivals.seed, 0x706c_616e, i as u64),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(n: u32) -> Vec<SiteId> {
        (1..=n).map(SiteId::new).collect()
    }

    fn plan(rate: f64, seed: u64) -> OpenLoopPlan {
        OpenLoopPlan {
            arrivals: OpenLoopArrivals {
                rate_per_sec: rate,
                count: 200,
                seed,
            },
            key_population: 100_000,
            key_skew: 0.99,
            shape: TxnShape::default(),
        }
    }

    #[test]
    fn plans_are_sorted_sized_and_deterministic() {
        let p = plan(1000.0, 5);
        let txns = p.generate(&sites(6));
        assert_eq!(txns.len(), 200);
        assert!(txns.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
        for t in &txns {
            assert!((2..=3).contains(&t.participants.len()));
            assert_eq!(t.keys.len(), t.participants.len() * 2);
            let mut dedup = t.participants.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), t.participants.len());
        }
        assert_eq!(txns, p.generate(&sites(6)));
    }

    #[test]
    fn rate_changes_keep_shapes_and_keys_fixed() {
        // Open-loop sweeps vary only the offered rate; the work itself
        // (shapes, keys) must stay identical across sweep cells.
        let slow = plan(500.0, 5).generate(&sites(6));
        let fast = plan(5000.0, 5).generate(&sites(6));
        for (a, b) in slow.iter().zip(&fast) {
            assert_eq!(a.participants, b.participants);
            assert_eq!(a.keys, b.keys);
            assert_eq!(a.salt, b.salt);
        }
    }

    #[test]
    fn salts_are_distinct_per_txn() {
        let txns = plan(1000.0, 8).generate(&sites(4));
        let mut salts: Vec<u64> = txns.iter().map(|t| t.salt).collect();
        salts.sort_unstable();
        salts.dedup();
        assert_eq!(salts.len(), txns.len());
    }
}
