//! Per-transaction lifecycle accounting.
//!
//! A goodput number alone hides the cost structure of an overloaded
//! run: two systems can commit the same number of transactions while
//! one of them burned 3x the forced writes getting there. The ledger
//! separates *offered* work from *useful* work — first-attempt commits
//! vs commits that needed retries, attempts aborted by the no-wait
//! lock table vs attempts shed at the admission door, transactions
//! abandoned by the retry policy — and keeps a running bill of the
//! forces and messages wasted on attempts that did not commit.

/// How one attempt of one transaction ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The attempt committed.
    Committed,
    /// The attempt aborted (conflict, No vote, timeout).
    Aborted,
    /// The attempt never entered the system: shed by admission
    /// control before any protocol work.
    Shed,
}

/// Aggregate lifecycle accounting for a generator run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LifecycleLedger {
    /// Transactions the generator offered (first attempts).
    pub offered: u64,
    /// Transactions that committed on their first attempt.
    pub first_attempt_commits: u64,
    /// Transactions that committed after at least one retry.
    pub retried_commits: u64,
    /// Transactions abandoned by the retry policy without committing.
    pub give_ups: u64,
    /// Attempts that aborted inside the system.
    pub aborted_attempts: u64,
    /// Attempts rejected at the admission door.
    pub shed_attempts: u64,
    /// Retry attempts issued (total attempts minus first attempts).
    pub retries: u64,
    /// Forced log writes spent on attempts that did not commit.
    pub wasted_forces: u64,
    /// Messages spent on attempts that did not commit.
    pub wasted_msgs: u64,
}

impl LifecycleLedger {
    /// A zeroed ledger.
    #[must_use]
    pub fn new() -> Self {
        LifecycleLedger::default()
    }

    /// Record that a new transaction was offered.
    pub fn offer(&mut self) {
        self.offered += 1;
    }

    /// Record that a retry attempt was issued.
    pub fn retry(&mut self) {
        self.retries += 1;
    }

    /// Record the end of an attempt. `attempt` counts from 1;
    /// `wasted_forces`/`wasted_msgs` bill the protocol work this
    /// attempt consumed if it failed (ignored for commits — that work
    /// was useful).
    pub fn finish_attempt(
        &mut self,
        attempt: u32,
        outcome: AttemptOutcome,
        wasted_forces: u64,
        wasted_msgs: u64,
    ) {
        match outcome {
            AttemptOutcome::Committed => {
                if attempt <= 1 {
                    self.first_attempt_commits += 1;
                } else {
                    self.retried_commits += 1;
                }
            }
            AttemptOutcome::Aborted => {
                self.aborted_attempts += 1;
                self.wasted_forces += wasted_forces;
                self.wasted_msgs += wasted_msgs;
            }
            AttemptOutcome::Shed => {
                // A shed costs no protocol work by construction; the
                // wasted bill stays untouched.
                self.shed_attempts += 1;
            }
        }
    }

    /// Record that the retry policy abandoned a transaction.
    pub fn give_up(&mut self) {
        self.give_ups += 1;
    }

    /// Transactions that eventually committed (any attempt).
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.first_attempt_commits + self.retried_commits
    }

    /// Total attempts issued (first attempts plus retries).
    #[must_use]
    pub fn attempts(&self) -> u64 {
        self.offered + self.retries
    }

    /// Fraction of attempts that aborted inside the system.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        if self.attempts() == 0 {
            0.0
        } else {
            self.aborted_attempts as f64 / self.attempts() as f64
        }
    }

    /// Fold another ledger into this one (for merging per-generator
    /// ledgers into a run total).
    pub fn merge(&mut self, other: &LifecycleLedger) {
        self.offered += other.offered;
        self.first_attempt_commits += other.first_attempt_commits;
        self.retried_commits += other.retried_commits;
        self.give_ups += other.give_ups;
        self.aborted_attempts += other.aborted_attempts;
        self.shed_attempts += other.shed_attempts;
        self.retries += other.retries;
        self.wasted_forces += other.wasted_forces;
        self.wasted_msgs += other.wasted_msgs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commits_split_by_attempt_number() {
        let mut l = LifecycleLedger::new();
        l.offer();
        l.finish_attempt(1, AttemptOutcome::Committed, 0, 0);
        l.offer();
        l.finish_attempt(1, AttemptOutcome::Aborted, 3, 8);
        l.retry();
        l.finish_attempt(2, AttemptOutcome::Committed, 0, 0);
        assert_eq!(l.first_attempt_commits, 1);
        assert_eq!(l.retried_commits, 1);
        assert_eq!(l.committed(), 2);
        assert_eq!(l.attempts(), 3);
        assert_eq!(l.wasted_forces, 3);
        assert_eq!(l.wasted_msgs, 8);
    }

    #[test]
    fn sheds_cost_nothing_and_abort_rate_counts_attempts() {
        let mut l = LifecycleLedger::new();
        l.offer();
        l.finish_attempt(1, AttemptOutcome::Shed, 99, 99);
        l.retry();
        l.finish_attempt(2, AttemptOutcome::Aborted, 1, 2);
        l.give_up();
        assert_eq!(l.shed_attempts, 1);
        assert_eq!(l.wasted_forces, 1);
        assert_eq!(l.give_ups, 1);
        assert!((l.abort_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_fieldwise() {
        let mut a = LifecycleLedger::new();
        a.offer();
        a.finish_attempt(1, AttemptOutcome::Committed, 0, 0);
        let mut b = LifecycleLedger::new();
        b.offer();
        b.finish_attempt(1, AttemptOutcome::Aborted, 2, 5);
        b.give_up();
        let mut total = a;
        total.merge(&b);
        assert_eq!(total.offered, 2);
        assert_eq!(total.committed(), 1);
        assert_eq!(total.give_ups, 1);
        assert_eq!(total.wasted_msgs, 5);
    }
}
