//! Open-loop arrival processes.
//!
//! An *open-loop* generator decides transaction start times before it
//! sees any response: arrivals keep coming at the offered rate whether
//! or not the system keeps up. This is the load model that exposes the
//! overload knee — a closed loop (wait for each reply before issuing
//! the next request) self-throttles and can never push a system past
//! saturation, so it hides exactly the region experiment E17 studies.
//!
//! Inter-arrival gaps are exponential, making the arrival process
//! Poisson: memoryless, bursty at small scales, with a well-defined
//! offered rate λ. Everything is drawn from a seeded RNG so a schedule
//! is a pure function of `(rate, count, seed)`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Exp};

/// A Poisson (exponential-gap) open-loop arrival schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpenLoopArrivals {
    /// Offered load in transactions per second.
    pub rate_per_sec: f64,
    /// Number of arrivals to schedule.
    pub count: usize,
    /// RNG seed; the schedule is a pure function of the three fields.
    pub seed: u64,
}

impl OpenLoopArrivals {
    /// The arrival instants in microseconds from the start of the run,
    /// non-decreasing, `count` entries.
    ///
    /// # Panics
    /// If `rate_per_sec` is not finite and positive.
    #[must_use]
    pub fn schedule_us(&self) -> Vec<u64> {
        assert!(
            self.rate_per_sec.is_finite() && self.rate_per_sec > 0.0,
            "offered rate must be positive, got {}",
            self.rate_per_sec
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        // λ in events per microsecond keeps the sampled gaps directly
        // in the unit the runtimes speak.
        let gaps = Exp::new(self.rate_per_sec / 1e6);
        let mut at = 0.0f64;
        let mut out = Vec::with_capacity(self.count);
        for _ in 0..self.count {
            at += gaps.sample(&mut rng);
            out.push(at as u64);
        }
        out
    }

    /// The mean inter-arrival gap in microseconds (1/λ).
    #[must_use]
    pub fn mean_gap_us(&self) -> f64 {
        1e6 / self.rate_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_sorted_and_sized() {
        let arrivals = OpenLoopArrivals {
            rate_per_sec: 1000.0,
            count: 500,
            seed: 7,
        };
        let s = arrivals.schedule_us();
        assert_eq!(s.len(), 500);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn mean_gap_tracks_offered_rate() {
        let arrivals = OpenLoopArrivals {
            rate_per_sec: 2000.0,
            count: 20_000,
            seed: 11,
        };
        let s = arrivals.schedule_us();
        let span = *s.last().unwrap() as f64;
        let mean = span / (s.len() - 1) as f64;
        // Expected 500us mean gap; 20k samples keep the estimate tight.
        assert!(
            (mean - 500.0).abs() < 25.0,
            "mean inter-arrival gap {mean}us vs expected 500us"
        );
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let make = |seed| {
            OpenLoopArrivals {
                rate_per_sec: 750.0,
                count: 64,
                seed,
            }
            .schedule_us()
        };
        assert_eq!(make(3), make(3));
        assert_ne!(make(3), make(4));
    }
}
