//! Transaction mixes.

use acp_sim::SimTime;
use acp_types::{SiteId, TxnId, Vote};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeMap;

/// Parameters of a transaction workload.
#[derive(Clone, Copy, Debug)]
pub struct TxnMix {
    /// Number of transactions to generate.
    pub count: usize,
    /// Minimum participants per transaction.
    pub min_participants: usize,
    /// Maximum participants per transaction (inclusive).
    pub max_participants: usize,
    /// Probability a transaction carries a "No" voter (aborts).
    pub abort_probability: f64,
    /// Probability each *participant* of a transaction is read-only.
    pub read_only_probability: f64,
    /// Mean gap between transaction starts.
    pub inter_start: SimTime,
}

impl Default for TxnMix {
    fn default() -> Self {
        TxnMix {
            count: 100,
            min_participants: 2,
            max_participants: 4,
            abort_probability: 0.1,
            read_only_probability: 0.0,
            inter_start: SimTime::from_millis(2),
        }
    }
}

/// One generated transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxnPlan {
    /// Transaction id.
    pub txn: TxnId,
    /// Start time.
    pub start_at: SimTime,
    /// Participant sites.
    pub participants: Vec<SiteId>,
    /// Non-default votes.
    pub votes: BTreeMap<SiteId, Vote>,
}

impl TxnMix {
    /// Generate the plans over a pool of participant sites.
    pub fn generate(&self, rng: &mut StdRng, sites: &[SiteId]) -> Vec<TxnPlan> {
        assert!(self.min_participants >= 1);
        assert!(self.max_participants >= self.min_participants);
        assert!(
            self.max_participants <= sites.len(),
            "not enough sites for the configured transaction size"
        );
        let mut plans = Vec::with_capacity(self.count);
        let mut at = SimTime::ZERO;
        for i in 0..self.count {
            at += SimTime::from_micros(rng.random_range(1..=self.inter_start.as_micros() * 2));
            let n = rng.random_range(self.min_participants..=self.max_participants);
            let mut pool = sites.to_vec();
            pool.shuffle(rng);
            let mut participants: Vec<SiteId> = pool.into_iter().take(n).collect();
            participants.sort();

            let mut votes = BTreeMap::new();
            for &p in &participants {
                if rng.random::<f64>() < self.read_only_probability {
                    votes.insert(p, Vote::ReadOnly);
                }
            }
            if rng.random::<f64>() < self.abort_probability {
                // One participant refuses (overriding any read-only mark).
                let victim = participants[rng.random_range(0..participants.len())];
                votes.insert(victim, Vote::No);
            }
            plans.push(TxnPlan {
                txn: TxnId::new(i as u64 + 1),
                start_at: at,
                participants,
                votes,
            });
        }
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sites(n: u32) -> Vec<SiteId> {
        (1..=n).map(SiteId::new).collect()
    }

    #[test]
    fn generates_requested_count_with_bounded_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mix = TxnMix {
            count: 50,
            min_participants: 2,
            max_participants: 3,
            ..TxnMix::default()
        };
        let plans = mix.generate(&mut rng, &sites(5));
        assert_eq!(plans.len(), 50);
        for p in &plans {
            assert!((2..=3).contains(&p.participants.len()));
            // Distinct participants.
            let mut dedup = p.participants.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), p.participants.len());
        }
        // Start times strictly increase.
        assert!(plans.windows(2).all(|w| w[0].start_at < w[1].start_at));
    }

    #[test]
    fn abort_probability_materializes_as_no_votes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mix = TxnMix {
            count: 400,
            abort_probability: 0.5,
            ..TxnMix::default()
        };
        let plans = mix.generate(&mut rng, &sites(6));
        let aborters = plans
            .iter()
            .filter(|p| p.votes.values().any(|v| *v == Vote::No))
            .count();
        assert!((120..280).contains(&aborters), "aborters = {aborters}");
    }

    #[test]
    fn zero_probabilities_mean_all_yes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mix = TxnMix {
            count: 30,
            abort_probability: 0.0,
            read_only_probability: 0.0,
            ..TxnMix::default()
        };
        let plans = mix.generate(&mut rng, &sites(4));
        assert!(plans.iter().all(|p| p.votes.is_empty()));
    }

    #[test]
    fn generation_is_reproducible() {
        let gen = || {
            let mut rng = StdRng::seed_from_u64(9);
            TxnMix::default().generate(&mut rng, &sites(5))
        };
        assert_eq!(gen(), gen());
    }

    #[test]
    #[should_panic(expected = "not enough sites")]
    fn oversized_transactions_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mix = TxnMix {
            max_participants: 9,
            ..TxnMix::default()
        };
        mix.generate(&mut rng, &sites(3));
    }
}
