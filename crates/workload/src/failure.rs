//! Failure plans: rate-based crash scheduling.

use acp_sim::{FailureSchedule, SimTime};
use acp_types::SiteId;
use rand::rngs::StdRng;

/// A rate-based description of failures over a run.
#[derive(Clone, Copy, Debug)]
pub struct FailurePlan {
    /// Expected crashes per simulated second, across all sites.
    pub crashes_per_second: f64,
    /// Maximum outage length.
    pub max_outage: SimTime,
}

impl FailurePlan {
    /// No failures.
    #[must_use]
    pub fn none() -> Self {
        FailurePlan {
            crashes_per_second: 0.0,
            max_outage: SimTime::from_millis(1),
        }
    }

    /// A harsh plan for correctness campaigns.
    #[must_use]
    pub fn harsh() -> Self {
        FailurePlan {
            crashes_per_second: 20.0,
            max_outage: SimTime::from_millis(100),
        }
    }

    /// Materialize into a schedule over `sites` for a run of length
    /// `horizon`.
    pub fn schedule(
        &self,
        rng: &mut StdRng,
        sites: &[SiteId],
        horizon: SimTime,
    ) -> FailureSchedule {
        let seconds = horizon.as_micros() as f64 / 1_000_000.0;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let count = (self.crashes_per_second * seconds).round() as usize;
        if count == 0 {
            return FailureSchedule::none();
        }
        FailureSchedule::random(rng, sites, horizon, count, self.max_outage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn none_produces_no_outages() {
        let mut rng = StdRng::seed_from_u64(1);
        let sites = [SiteId::new(0), SiteId::new(1)];
        let s = FailurePlan::none().schedule(&mut rng, &sites, SimTime::from_millis(500));
        assert!(s.outages.is_empty());
    }

    #[test]
    fn rate_scales_with_horizon() {
        let mut rng = StdRng::seed_from_u64(2);
        let sites = [SiteId::new(0), SiteId::new(1), SiteId::new(2)];
        let plan = FailurePlan {
            crashes_per_second: 10.0,
            max_outage: SimTime::from_millis(5),
        };
        let short = plan.schedule(&mut rng, &sites, SimTime::from_millis(100));
        let long = plan.schedule(&mut rng, &sites, SimTime::from_millis(1000));
        assert_eq!(short.outages.len(), 1);
        assert_eq!(long.outages.len(), 10);
    }
}
