//! Zipfian key populations.
//!
//! Real transaction workloads touch keys with a heavily skewed
//! popularity distribution — a handful of hot rows absorb most of the
//! traffic. Under no-wait two-phase locking that skew is what turns
//! offered load into aborts: two concurrent transactions touching the
//! same hot key conflict, one of them votes No, and the work already
//! done on its other participants is wasted. [`ZipfKeyspace`] models
//! the skew with a rejection-inversion Zipf sampler over populations of
//! millions of keys (O(1) per draw, no table), so experiments can dial
//! contention with a single exponent: `s = 0` is uniform (minimal
//! conflict), `s = 0.99` is the YCSB-style default, `s > 1` is a
//! hot-spot regime.

use rand::rngs::StdRng;
use rand_distr::{Distribution, Zipf};

/// A seeded zipfian key population.
#[derive(Clone, Debug)]
pub struct ZipfKeyspace {
    dist: Zipf,
}

impl ZipfKeyspace {
    /// A keyspace of `population` keys with skew exponent `skew`.
    ///
    /// # Panics
    /// If `population` is zero or `skew` is negative or non-finite.
    #[must_use]
    pub fn new(population: u64, skew: f64) -> Self {
        ZipfKeyspace {
            dist: Zipf::new(population, skew),
        }
    }

    /// Number of distinct keys.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.dist.n()
    }

    /// The skew exponent.
    #[must_use]
    pub fn skew(&self) -> f64 {
        self.dist.exponent()
    }

    /// Draw one key rank in `1..=population`; rank 1 is the hottest.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        self.dist.sample(rng)
    }

    /// Draw one key and render it as a storage key string.
    ///
    /// Ranks are scrambled through a fixed bijection before rendering
    /// so that hot keys are spread across the lexicographic keyspace
    /// (adjacent ranks are not adjacent keys), matching how a hashed
    /// primary key behaves in a real store.
    pub fn sample_key(&self, rng: &mut StdRng) -> String {
        let rank = self.sample(rng);
        format!("k{:016x}", scramble(rank))
    }
}

/// A fixed 64-bit bijection (SplitMix64 finalizer). Deterministic, so
/// two generators with the same seed still collide on the same keys —
/// only the *names* are spread out, not the popularity mass.
fn scramble(v: u64) -> u64 {
    let mut z = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    #[test]
    fn ranks_stay_in_population() {
        let ks = ZipfKeyspace::new(1_000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let r = ks.sample(&mut rng);
            assert!((1..=1_000).contains(&r));
        }
    }

    #[test]
    fn skew_concentrates_mass_on_the_head() {
        let draws = |skew: f64| {
            let ks = ZipfKeyspace::new(1_000_000, skew);
            let mut rng = StdRng::seed_from_u64(5);
            let mut head = 0usize;
            for _ in 0..20_000 {
                if ks.sample(&mut rng) <= 10 {
                    head += 1;
                }
            }
            head
        };
        let uniform_head = draws(0.0);
        let skewed_head = draws(1.1);
        // Under uniform, the 10 hottest of a million keys get ~0 of
        // 20k draws; under s=1.1 they get a large constant fraction.
        assert!(uniform_head < 50, "uniform head hits = {uniform_head}");
        assert!(skewed_head > 5_000, "skewed head hits = {skewed_head}");
    }

    #[test]
    fn scrambled_keys_are_collision_faithful() {
        // Same ranks -> same key strings; distinct ranks -> distinct
        // keys (the scramble is a bijection, so popularity mass is
        // preserved exactly).
        let ks = ZipfKeyspace::new(10_000, 1.0);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut seen: BTreeMap<String, u64> = BTreeMap::new();
        for _ in 0..5_000 {
            let key = ks.sample_key(&mut a);
            let rank = ks.sample(&mut b);
            if let Some(prev) = seen.insert(key.clone(), rank) {
                assert_eq!(prev, rank, "two ranks rendered to one key");
            }
        }
    }
}
