//! Participant-protocol populations.

use acp_types::ProtocolKind;
use rand::rngs::StdRng;
use rand::Rng;

/// A distribution over participant protocols.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PopulationMix {
    /// Weight of PrN sites.
    pub prn: f64,
    /// Weight of PrA sites.
    pub pra: f64,
    /// Weight of PrC sites.
    pub prc: f64,
}

impl PopulationMix {
    /// A homogeneous population.
    #[must_use]
    pub fn homogeneous(p: ProtocolKind) -> Self {
        match p {
            ProtocolKind::PrN => PopulationMix {
                prn: 1.0,
                pra: 0.0,
                prc: 0.0,
            },
            ProtocolKind::PrA => PopulationMix {
                prn: 0.0,
                pra: 1.0,
                prc: 0.0,
            },
            ProtocolKind::PrC => PopulationMix {
                prn: 0.0,
                pra: 0.0,
                prc: 1.0,
            },
        }
    }

    /// The multidatabase default the paper motivates: PrN and PrA
    /// dominate ("widely implemented in commercial systems"), PrC is the
    /// coming standard.
    #[must_use]
    pub fn mdbs() -> Self {
        PopulationMix {
            prn: 0.4,
            pra: 0.4,
            prc: 0.2,
        }
    }

    /// An even three-way split.
    #[must_use]
    pub fn uniform() -> Self {
        PopulationMix {
            prn: 1.0,
            pra: 1.0,
            prc: 1.0,
        }
    }

    /// Sample one protocol.
    pub fn sample(&self, rng: &mut StdRng) -> ProtocolKind {
        let total = self.prn + self.pra + self.prc;
        assert!(total > 0.0, "population mix must have positive weight");
        let x = rng.random::<f64>() * total;
        if x < self.prn {
            ProtocolKind::PrN
        } else if x < self.prn + self.pra {
            ProtocolKind::PrA
        } else {
            ProtocolKind::PrC
        }
    }

    /// Sample a population of `n` sites.
    pub fn sample_n(&self, rng: &mut StdRng, n: usize) -> Vec<ProtocolKind> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn homogeneous_samples_only_that_protocol() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in ProtocolKind::ALL {
            let pop = PopulationMix::homogeneous(p).sample_n(&mut rng, 50);
            assert!(pop.iter().all(|&x| x == p));
        }
    }

    #[test]
    fn uniform_mix_covers_all_protocols() {
        let mut rng = StdRng::seed_from_u64(2);
        let pop = PopulationMix::uniform().sample_n(&mut rng, 300);
        for p in ProtocolKind::ALL {
            let count = pop.iter().filter(|&&x| x == p).count();
            assert!((50..250).contains(&count), "{p}: {count}");
        }
    }

    #[test]
    fn sampling_is_reproducible() {
        let draw = || {
            let mut rng = StdRng::seed_from_u64(3);
            PopulationMix::mdbs().sample_n(&mut rng, 100)
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weight_mix_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        PopulationMix {
            prn: 0.0,
            pra: 0.0,
            prc: 0.0,
        }
        .sample(&mut rng);
    }
}
