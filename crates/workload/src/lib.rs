//! # acp-workload
//!
//! Workload, population and failure-schedule generation for the
//! experiments: which sites run which protocol (the multidatabase
//! population of §1), what the transactions look like (size, abort
//! rate, read-only fraction), and when sites fail.
//!
//! Everything is generated from a seeded RNG so every experiment run is
//! reproducible from its configuration alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod failure;
pub mod mix;
pub mod population;

pub use failure::FailurePlan;
pub use mix::{TxnMix, TxnPlan};
pub use population::PopulationMix;
