//! # acp-workload
//!
//! Workload, population and failure-schedule generation for the
//! experiments: which sites run which protocol (the multidatabase
//! population of §1), what the transactions look like (size, abort
//! rate, read-only fraction), when sites fail — and, for the overload
//! campaign (experiment E17), the open-loop extreme-traffic engine:
//! Poisson arrivals ([`arrival`]), zipfian key populations
//! ([`keyspace`]), multi-partition shapes fused into one reproducible
//! plan ([`generator`]), retry policies with deterministic jitter
//! ([`retry`]), and per-transaction lifecycle accounting
//! ([`lifecycle`]).
//!
//! Everything is generated from a seeded RNG so every experiment run is
//! reproducible from its configuration alone. The crate stays sans-IO:
//! it emits schedules and accounts outcomes; driving a runtime with
//! them is the experiment binary's job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod failure;
pub mod generator;
pub mod keyspace;
pub mod lifecycle;
pub mod mix;
pub mod population;
pub mod retry;

pub use arrival::OpenLoopArrivals;
pub use failure::FailurePlan;
pub use generator::{OpenLoopPlan, PlannedTxn, TxnShape};
pub use keyspace::ZipfKeyspace;
pub use lifecycle::{AttemptOutcome, LifecycleLedger};
pub use mix::{TxnMix, TxnPlan};
pub use population::PopulationMix;
pub use retry::RetryPolicy;
