//! Retry policies for aborted or shed transactions.
//!
//! Under no-wait 2PL an abort is routine — the protocol's answer to a
//! lock conflict — and under admission control a shed is routine too.
//! What the *client* does next decides whether the system recovers or
//! collapses: immediate retry of every failure re-offers the whole
//! conflict to the lock table and amplifies the abort storm, while a
//! backed-off retry spreads the re-offers out. The policies here are
//! pure functions of `(attempt, salt)` — same deterministic jitter
//! idiom as the runtimes' timer wheels (`jitter_hash`, ±12.5%) — so a
//! campaign run is reproducible from its configuration alone.

use std::time::Duration;

/// Largest backoff any policy will return, matching the runtimes' own
/// backoff ceiling order of magnitude.
const MAX_BACKOFF: Duration = Duration::from_secs(10);

/// Hash-purpose discriminant for retry jitter, distinct from the timer
/// purposes the runtimes feed to the same hash.
const RETRY_PURPOSE: u64 = 0x5752; // "WR"

/// What a generator does after an attempt fails (abort or shed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryPolicy {
    /// Retry instantly, up to `give_up_after` total attempts. The
    /// pathological baseline: every conflict is immediately re-offered.
    Immediate {
        /// Total attempts before the transaction is abandoned.
        give_up_after: u32,
    },
    /// Exponential backoff `base << (attempt-1)` capped at `cap`, with
    /// deterministic ±12.5% jitter, up to `give_up_after` attempts.
    CappedBackoff {
        /// First retry delay.
        base: Duration,
        /// Backoff ceiling.
        cap: Duration,
        /// Total attempts before the transaction is abandoned.
        give_up_after: u32,
    },
    /// Never retry: one attempt, failures are final.
    GiveUp,
}

impl RetryPolicy {
    /// The delay before the next attempt, or `None` when the policy
    /// abandons the transaction. `attempt` counts completed attempts
    /// (so the first failure passes 1); `salt` is a per-transaction
    /// identity that decorrelates jitter across transactions.
    #[must_use]
    pub fn next_delay(&self, attempt: u32, salt: u64) -> Option<Duration> {
        match *self {
            RetryPolicy::Immediate { give_up_after } => {
                (attempt < give_up_after).then_some(Duration::ZERO)
            }
            RetryPolicy::CappedBackoff {
                base,
                cap,
                give_up_after,
            } => {
                if attempt >= give_up_after {
                    return None;
                }
                let shift = attempt.saturating_sub(1).min(31);
                let raw = base
                    .saturating_mul(1u32 << shift)
                    .min(cap)
                    .min(MAX_BACKOFF)
                    .max(base);
                Some(jittered(raw, attempt, salt))
            }
            RetryPolicy::GiveUp => None,
        }
    }

    /// Maximum number of attempts this policy will make (including the
    /// first), saturating at `u32::MAX` for unbounded configurations.
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        match *self {
            RetryPolicy::Immediate { give_up_after }
            | RetryPolicy::CappedBackoff { give_up_after, .. } => give_up_after.max(1),
            RetryPolicy::GiveUp => 1,
        }
    }
}

/// ±12.5% deterministic jitter, the same shape the runtimes apply to
/// their retry timers: `jitter_hash` picks an offset in a span of one
/// quarter of the delay, centred on the nominal value.
fn jittered(d: Duration, attempt: u32, salt: u64) -> Duration {
    let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
    let span = us / 4;
    if span == 0 {
        return d;
    }
    let offset =
        acp_core::harness::jitter_hash(salt, RETRY_PURPOSE, u64::from(attempt)) % (span + 1);
    Duration::from_micros(us - span / 2 + offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_retries_until_budget_then_gives_up() {
        let p = RetryPolicy::Immediate { give_up_after: 3 };
        assert_eq!(p.next_delay(1, 7), Some(Duration::ZERO));
        assert_eq!(p.next_delay(2, 7), Some(Duration::ZERO));
        assert_eq!(p.next_delay(3, 7), None);
        assert_eq!(p.max_attempts(), 3);
    }

    #[test]
    fn capped_backoff_doubles_then_caps() {
        let p = RetryPolicy::CappedBackoff {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(40),
            give_up_after: 10,
        };
        // Jitter is ±12.5%, so test against nominal windows.
        let within = |d: Duration, nominal_ms: u64| {
            let us = d.as_micros() as u64;
            let nominal = nominal_ms * 1000;
            us >= nominal - nominal / 8 && us <= nominal + nominal / 8
        };
        assert!(within(p.next_delay(1, 42).unwrap(), 10));
        assert!(within(p.next_delay(2, 42).unwrap(), 20));
        assert!(within(p.next_delay(3, 42).unwrap(), 40));
        // Capped from here on.
        assert!(within(p.next_delay(6, 42).unwrap(), 40));
        assert_eq!(p.next_delay(10, 42), None);
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_salt_sensitive() {
        let p = RetryPolicy::CappedBackoff {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(1),
            give_up_after: 8,
        };
        assert_eq!(p.next_delay(2, 1), p.next_delay(2, 1));
        // Distinct transactions spread out (not a guarantee for every
        // pair of salts, but these two differ).
        assert_ne!(p.next_delay(2, 1), p.next_delay(2, 2));
    }

    #[test]
    fn give_up_never_retries() {
        assert_eq!(RetryPolicy::GiveUp.next_delay(1, 0), None);
        assert_eq!(RetryPolicy::GiveUp.max_attempts(), 1);
    }
}
