//! A hashed timer wheel for the reactor runtime.
//!
//! The threaded actors keep a per-site `BinaryHeap` of deadlines — fine
//! for a handful of timers, but the reactor multiplexes every site's
//! vote timeouts, ack re-sends and inquiry retries for thousands of
//! concurrent transactions on one thread, where arming and cancelling
//! must be O(1). Classic solution (Varghese & Lauck): a circular array
//! of slots at fixed tick granularity; a timer hashes to
//! `deadline_tick % slots` and entries whose deadline lies laps ahead
//! simply stay in their slot until their tick actually arrives.
//!
//! The wheel is host-agnostic over a key type `K` (the reactor uses
//! `(SiteId, engine token, purpose)`) and deterministic: `advance`
//! yields due timers ordered by (deadline tick, arm order), never by
//! hash-slot accident.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Handle returned by [`TimerWheel::arm`], used to cancel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimerId(u64);

/// Number of wheel slots. One lap at the default granularity covers
/// ~512 ms; longer delays (backed-off retries cap at 5 s) park in
/// their slot for a few laps.
pub const WHEEL_SLOTS: usize = 512;

/// Default tick granularity: 1 ms, matching the resolution the
/// threaded runtime's delays are specified in.
pub const WHEEL_TICK: Duration = Duration::from_millis(1);

#[derive(Clone, Debug)]
struct Entry<K> {
    id: u64,
    fire_tick: u64,
    key: K,
}

/// The wheel. See the module docs.
#[derive(Debug)]
pub struct TimerWheel<K> {
    slots: Vec<Vec<Entry<K>>>,
    /// id → slot index, so `cancel` is a lookup, not a wheel scan.
    index: BTreeMap<u64, usize>,
    tick: Duration,
    /// Wheel epoch: tick 0 is `t0`.
    t0: Instant,
    /// Next tick index `advance` will process.
    cursor: u64,
    next_id: u64,
}

impl<K> TimerWheel<K> {
    /// A wheel with [`WHEEL_SLOTS`] slots of [`WHEEL_TICK`] granularity,
    /// with tick 0 at `t0`.
    #[must_use]
    pub fn new(t0: Instant) -> Self {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            index: BTreeMap::new(),
            tick: WHEEL_TICK,
            t0,
            cursor: 0,
            next_id: 0,
        }
    }

    /// Armed timers not yet fired or cancelled.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Is the wheel empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    fn tick_of(&self, at: Instant) -> u64 {
        // Round up: a timer never fires before its deadline.
        let nanos = at.saturating_duration_since(self.t0).as_nanos();
        let per = self.tick.as_nanos();
        ((nanos + per - 1) / per) as u64
    }

    /// Arm a timer to fire at `fire_at` (clamped to the next tick if in
    /// the past, so due work still surfaces through `advance`).
    pub fn arm(&mut self, fire_at: Instant, key: K) -> TimerId {
        let fire_tick = self.tick_of(fire_at).max(self.cursor);
        let id = self.next_id;
        self.next_id += 1;
        let slot = (fire_tick % WHEEL_SLOTS as u64) as usize;
        self.slots[slot].push(Entry { id, fire_tick, key });
        self.index.insert(id, slot);
        TimerId(id)
    }

    /// Cancel an armed timer. Returns `false` when the id already fired
    /// or was cancelled (cancellation is idempotent).
    pub fn cancel(&mut self, id: TimerId) -> bool {
        let Some(slot) = self.index.remove(&id.0) else {
            return false;
        };
        let bucket = &mut self.slots[slot];
        let pos = bucket
            .iter()
            .position(|e| e.id == id.0)
            .expect("indexed entry present");
        bucket.swap_remove(pos);
        true
    }

    /// Cancel every timer whose key satisfies `pred` (e.g. all timers
    /// of a crashed site). Returns how many were removed.
    pub fn cancel_where(&mut self, mut pred: impl FnMut(&K) -> bool) -> usize {
        let mut removed = 0;
        for slot in &mut self.slots {
            let before = slot.len();
            slot.retain(|e| {
                let hit = pred(&e.key);
                if hit {
                    self.index.remove(&e.id);
                }
                !hit
            });
            removed += before - slot.len();
        }
        removed
    }

    /// Fire everything due at `now`: walk the slots the cursor passes
    /// on its way to `now`'s tick (at most one full lap — entries from
    /// future laps stay put) and return the due (id, key) pairs ordered
    /// by (deadline tick, arm order).
    pub fn advance(&mut self, now: Instant) -> Vec<(TimerId, K)> {
        // `tick_of` rounds deadlines up, so a timer is due once `now`
        // has fully reached its tick: everything with
        // fire_tick <= floor(elapsed / tick) fires.
        let done = {
            let nanos = now.saturating_duration_since(self.t0).as_nanos();
            (nanos / self.tick.as_nanos()) as u64
        };
        if done < self.cursor {
            return Vec::new();
        }
        let mut due: Vec<Entry<K>> = Vec::new();
        let span = (done - self.cursor + 1).min(WHEEL_SLOTS as u64);
        for step in 0..span {
            let slot = ((self.cursor + step) % WHEEL_SLOTS as u64) as usize;
            let bucket = &mut self.slots[slot];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].fire_tick <= done {
                    due.push(bucket.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = done + 1;
        for e in &due {
            self.index.remove(&e.id);
        }
        due.sort_by_key(|e| (e.fire_tick, e.id));
        due.into_iter().map(|e| (TimerId(e.id), e.key)).collect()
    }

    /// Earliest pending deadline, if any (a full-wheel scan — O(slots +
    /// entries), run once per reactor tick to bound the poll sleep).
    #[must_use]
    pub fn next_deadline(&self) -> Option<Instant> {
        self.slots
            .iter()
            .flatten()
            .map(|e| e.fire_tick)
            .min()
            .map(|t| self.t0 + self.tick * u32::try_from(t).unwrap_or(u32::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn fires_in_deadline_order_across_laps() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        // 700 ms is more than one 512-slot lap ahead: it parks in its
        // slot (700 % 512 = 188) and must NOT fire when the cursor first
        // passes slot 188 at ~188 ms.
        wheel.arm(t0 + ms(700), "lap2");
        wheel.arm(t0 + ms(5), "early");
        wheel.arm(t0 + ms(5), "early-second");
        wheel.arm(t0 + ms(200), "mid");
        assert_eq!(wheel.len(), 4);

        let due: Vec<_> = wheel
            .advance(t0 + ms(250))
            .into_iter()
            .map(|(_, k)| k)
            .collect();
        assert_eq!(due, vec!["early", "early-second", "mid"]);
        assert_eq!(wheel.len(), 1);

        assert!(wheel.advance(t0 + ms(699)).is_empty(), "lap-2 entry parked");
        let late: Vec<_> = wheel
            .advance(t0 + ms(701))
            .into_iter()
            .map(|(_, k)| k)
            .collect();
        assert_eq!(late, vec!["lap2"]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        let keep = wheel.arm(t0 + ms(10), 1u32);
        let drop_ = wheel.arm(t0 + ms(10), 2u32);
        assert!(wheel.cancel(drop_));
        assert!(!wheel.cancel(drop_), "cancel is idempotent");
        let due = wheel.advance(t0 + ms(20));
        assert_eq!(due, vec![(keep, 1u32)]);
        assert!(!wheel.cancel(keep), "already fired");
    }

    #[test]
    fn cancel_where_sweeps_a_sites_timers() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.arm(t0 + ms(10), (7u64, "vote"));
        wheel.arm(t0 + ms(300), (7u64, "retry"));
        wheel.arm(t0 + ms(10), (8u64, "vote"));
        assert_eq!(wheel.cancel_where(|(site, _)| *site == 7), 2);
        let due: Vec<_> = wheel
            .advance(t0 + ms(500))
            .into_iter()
            .map(|(_, k)| k)
            .collect();
        assert_eq!(due, vec![(8u64, "vote")]);
    }

    #[test]
    fn past_deadlines_clamp_to_next_advance() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        assert!(wheel.advance(t0 + ms(100)).is_empty());
        // Armed "in the past" relative to the cursor: surfaces on the
        // next advance instead of being lost.
        wheel.arm(t0 + ms(50), "late");
        let due: Vec<_> = wheel
            .advance(t0 + ms(101))
            .into_iter()
            .map(|(_, k)| k)
            .collect();
        assert_eq!(due, vec!["late"]);
    }

    #[test]
    fn next_deadline_tracks_minimum() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        assert_eq!(wheel.next_deadline(), None);
        wheel.arm(t0 + ms(400), ());
        let id = wheel.arm(t0 + ms(30), ());
        let dl = wheel.next_deadline().expect("armed");
        assert_eq!(dl.duration_since(t0), ms(30));
        wheel.cancel(id);
        let dl = wheel.next_deadline().expect("one left");
        assert_eq!(dl.duration_since(t0), ms(400));
    }
}
